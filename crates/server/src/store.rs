//! The shared store: one writer, many snapshot readers, one shipping lane.
//!
//! All mutation funnels through a single **apply worker** thread (the
//! batch *builder*) that owns the [`DurableGraph`]. Sessions enqueue jobs
//! on a bounded channel; the builder drains up to a batch and runs each
//! write through [`DurableGraph::apply_buffered_logged`]. Group commit is
//! **pipelined** across two stages: instead of fsyncing inline, the
//! builder stages the batch's WAL window ([`DurableGraph::stage_flush`])
//! and hands the resulting [`SyncTicket`] to a dedicated *flusher* thread,
//! then immediately goes back to applying the next batch. The flusher
//! fsyncs the ticket, publishes the (now durable) units and sends the
//! acknowledgements — so batch N+1 executes while batch N's fsync and
//! quorum wait are in flight, yet every write is still acknowledged only
//! after its batch's flush: the classic durability-before-acknowledge
//! protocol, one fsync amortized over the batch.
//!
//! Pipeline depth is one staged window. Before staging batch N+1 the
//! builder waits for batch N's fsync outcome and retires it with
//! [`DurableGraph::complete_flush`]. A failed fsync therefore downgrades
//! exactly its own batch (the flusher reports the storage error to every
//! statement whose commit units were rolled off the log together) plus
//! any batch the builder had already applied on top of the doomed window
//! — those statements were never acknowledged, and the builder rolls the
//! in-memory graph back to the durable horizon before touching anything
//! else.
//!
//! Readers never touch the queue in steady state: the flusher bumps an
//! epoch counter after every batch that changed the graph, and sessions
//! read through [`EpochSnapshots`] — at most one `Arc<PropertyGraph>`
//! clone is taken per epoch, at a statement boundary, so a snapshot is
//! always statement-atomic (never a dangling relationship mid-`DELETE`,
//! extending §4.2's guarantee across sessions). When the cached snapshot
//! is stale a session enqueues a [`Job::Snapshot`]; queue FIFO order plus
//! pipeline draining then guarantees read-your-writes: a snapshot (or any
//! other non-batchable job) makes the builder drain the flush stage
//! first, and the flusher bumps the epoch *before* acknowledging a batch,
//! so a session that saw its write acked always observes at least that
//! write's epoch.
//!
//! # Replication
//!
//! The worker is also the **replication source of truth**. Each committed
//! update statement's text rides inside its own WAL commit unit
//! ([`cypher_storage::Record::Stmt`]), so the statement's durability and
//! its shippability are one fsync. Right after a batch's fsync succeeds
//! the flusher hands its units to the [`ReplicationHub`], which fans them
//! out to subscribed replica feeders — a replica can therefore never
//! observe a unit the primary could still lose: the hub only ever sees
//! post-flush units.
//!
//! On a replica the same worker applies [`Job::Replicate`] jobs instead of
//! client writes: it checks the unit's sequence number against
//! `next_txid`, replays the statement through a per-dialect engine, and
//! asserts the resulting txid equals the shipped sequence — any mismatch
//! is divergence and aborts the tail rather than corrupting silently.
//! Writes and replicated units share the same group-commit machinery, so
//! catch-up gets batched fsyncs for free.
//!
//! If a group commit's flush fails, the WAL has rolled back to the durable
//! horizon but the in-memory graph briefly ran ahead; the worker calls
//! [`DurableGraph::reopen`] to rebuild memory from the durable state.
//! This matters for replication: the legacy "checkpoint absorbs sealed
//! memory" path would fold never-shipped mutations into the primary's
//! state and silently diverge every replica. After `reopen`, memory ==
//! durable == shipped, always.
//!
//! The worker also maintains the **commit log** — the texts of
//! successfully committed update statements in apply order — which is the
//! serialization oracle for the differential tests: replaying the log
//! through a single-threaded engine must reproduce the server's graph
//! byte-for-byte. The **mirror** is its replication twin: shipped units
//! since the recovery base, from which late subscribers are back-filled
//! (older subscribers bootstrap from a full snapshot instead). Both live
//! behind a small mutex shared by the two stages: the flusher extends
//! them as batches retire, and the builder reads them for tail jobs only
//! after draining the pipeline, so subscribers still attach gap-free.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cypher_core::{Engine, EngineBuilder, EvalError, QueryResult};
use cypher_graph::{EpochSnapshots, PropertyGraph};
use cypher_ivm::{Delta, Registered, ViewManager, ViewStat, ViewUpdate};
use cypher_parser::Dialect;
use cypher_replication::{
    PeerProgress, QuorumState, QuorumStateCell, ReplicationHub, Role, RoleCell, ShippedUnit,
    Subscription, SyncPolicy,
};
use cypher_storage::{DurableGraph, StorageError, SyncTicket};

/// Stable wire/WAL encoding of a statement's dialect.
pub fn dialect_byte(d: Dialect) -> u8 {
    match d {
        Dialect::Cypher9 => 0,
        Dialect::Revised => 1,
    }
}

/// Inverse of [`dialect_byte`]; unknown bytes fall back to the revised
/// dialect (forward compatibility — a newer primary's dialect is closer
/// to `Revised` than to the legacy semantics).
pub fn dialect_from_byte(b: u8) -> Dialect {
    match b {
        0 => Dialect::Cypher9,
        _ => Dialect::Revised,
    }
}

/// Outcome of a write submitted to the apply queue.
#[derive(Debug)]
pub enum WriteOutcome {
    /// Executed and durable (the batch's fsync succeeded).
    Ok(QueryResult),
    /// The statement itself failed and rolled back; the store is fine.
    Eval(EvalError),
    /// The durability layer failed; the statement is NOT acknowledged.
    Storage(StorageError),
    /// Strict quorum mode: the batch is durable **locally** and was
    /// shipped, but the required replica confirmations did not arrive in
    /// time. The write is refused (retryable) — it may still surface,
    /// so retries must be idempotent.
    Quorum {
        /// Replicas that confirmed durability before the deadline.
        acked: usize,
        /// Confirmations `--sync-replicas` required.
        needed: usize,
        /// How long the group commit waited, in milliseconds.
        waited_ms: u64,
    },
}

/// Outcome of applying one shipped unit on a replica.
#[derive(Debug)]
pub enum ReplicaApply {
    /// Applied and durable; `commit_seq` advanced to the unit's sequence.
    Applied,
    /// The unit's sequence is already applied (duplicate after a
    /// reconnect); skipped without touching the graph.
    Skipped,
    /// The unit skips ahead of the replica's log; the tailer must
    /// re-subscribe from its durable position instead of applying.
    Gap {
        /// The sequence number the replica expected next.
        expected: u64,
    },
    /// The statement did not reproduce the primary's effect here — the
    /// replica's state is suspect and the tail must stop.
    Diverged(String),
    /// The durability layer failed; the unit is not applied (the tailer
    /// retries after the worker re-opened the store).
    Storage(StorageError),
}

/// How a fresh subscriber starts: backlog replay or snapshot bootstrap.
pub enum SubscribeStart {
    /// The subscriber's position is within the retained mirror: these
    /// units (in order) bring it to the primary's head.
    Backlog(Vec<ShippedUnit>),
    /// The subscriber is older than the mirror: it must install this
    /// encoded snapshot (covering sequence `seq`) and tail from there.
    Snapshot { seq: u64, bytes: Vec<u8> },
}

/// A granted subscription: the catch-up payload plus the live feed.
pub struct SubscribeReply {
    /// Catch-up payload handed out atomically with the hub attach: every
    /// unit is either in here or will arrive on `sub`, never neither.
    pub start: SubscribeStart,
    /// The live feed of units committed after the catch-up point.
    pub sub: Subscription,
    /// The primary's commit sequence at attach time (lag baseline).
    pub seq: u64,
}

/// One row-level view delta delivered to a subscribed session, stamped
/// with the reader epoch the change is visible at.
#[derive(Debug)]
pub struct ViewEvent {
    pub update: ViewUpdate,
    pub epoch: u64,
}

/// A granted live-query subscription: the registration outcome (initial
/// rows included), the epoch it is consistent with, and the event feed.
pub struct ViewSubscription {
    pub reg: Registered,
    pub epoch: u64,
    pub events: Receiver<ViewEvent>,
}

/// Per-subscriber event backlog. A session that stops draining for this
/// many statement deltas is cut off (same policy as replica feeds): the
/// store never blocks the flush stage on a slow subscriber.
const VIEW_FEED_DEPTH: usize = 1024;

/// All live-query state of one store: the view manager (shadow graph +
/// registered views) and the per-view delivery channels. One mutex guards
/// both — registration and unsubscription run on arbitrary threads, while
/// the flush stage feeds committed deltas — and every critical section is
/// short except the feed itself, which is exactly the serialization the
/// ordered-delivery guarantee needs.
pub struct ViewHub {
    inner: Mutex<ViewHubState>,
}

#[derive(Default)]
struct ViewHubState {
    /// Lazily created at the first registration, dropped with the last
    /// view — an idle server pays nothing for the subsystem.
    mgr: Option<ViewManager>,
    subs: HashMap<u64, SyncSender<ViewEvent>>,
}

impl ViewHub {
    fn new() -> ViewHub {
        ViewHub {
            inner: Mutex::new(ViewHubState::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ViewHubState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Any views registered? The apply stage skips delta capture entirely
    /// when not — registration is a worker tail job, so it cannot race a
    /// batch into missing its delta.
    fn active(&self) -> bool {
        self.lock().mgr.as_ref().is_some_and(|m| !m.is_empty())
    }

    /// Register a view. Runs on the worker thread after a pipeline drain,
    /// so `committed` (the builder's graph) equals the durable, flushed,
    /// fully-fed state the manager's shadow must start from.
    fn register(
        &self,
        committed: &PropertyGraph,
        seq: u64,
        epoch: u64,
        text: &str,
        engine: &Engine,
    ) -> Result<ViewSubscription, EvalError> {
        let mut state = self.lock();
        let mgr = state
            .mgr
            .get_or_insert_with(|| ViewManager::new(committed, seq));
        let reg = mgr.register(text, engine)?;
        let (tx, rx) = mpsc::sync_channel(VIEW_FEED_DEPTH);
        state.subs.insert(reg.id, tx);
        Ok(ViewSubscription {
            reg,
            epoch,
            events: rx,
        })
    }

    /// Drop one view. Returns `false` for an unknown id.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut state = self.lock();
        state.subs.remove(&id);
        let Some(mgr) = &mut state.mgr else {
            return false;
        };
        let known = mgr.unregister(id);
        if mgr.is_empty() {
            state.mgr = None;
        }
        known
    }

    /// Per-view maintenance counters (for `Stats`).
    pub fn stats(&self) -> Vec<ViewStat> {
        self.lock()
            .mgr
            .as_ref()
            .map(ViewManager::stats)
            .unwrap_or_default()
    }

    /// Drop every view and subscription (snapshot install, fence,
    /// shutdown). Receivers observe the disconnect and end their feeds.
    pub fn reset(&self) {
        let mut state = self.lock();
        state.mgr = None;
        state.subs.clear();
    }

    /// Feed the committed statement deltas of one flushed batch, in commit
    /// order, and route the resulting row deltas to their subscribers.
    /// Called by the flush stage strictly after the batch's fsync (and
    /// after its acknowledgements — notification latency is off the write
    /// path).
    fn feed(&self, deltas: &[(u64, Vec<Delta>)], epoch: u64) {
        let mut state = self.lock();
        // Taken out for disjoint borrows; the lock is held throughout, so
        // no other thread can observe the temporarily absent manager.
        let Some(mut mgr) = state.mgr.take() else {
            return;
        };
        let mut drop_views: Vec<u64> = Vec::new();
        for (seq, ops) in deltas {
            match mgr.apply_statement(*seq, ops) {
                Ok(updates) => {
                    for update in updates {
                        let id = update.view;
                        let gone = match state.subs.get(&id) {
                            Some(tx) => tx.try_send(ViewEvent { update, epoch }).is_err(),
                            None => true,
                        };
                        if gone {
                            // Receiver gone (session died without
                            // unsubscribing) or its backlog overflowed:
                            // cut the subscriber off rather than stall or
                            // buffer unboundedly.
                            drop_views.push(id);
                        }
                    }
                }
                Err(e) => {
                    // The delta stream and the shadow disagree — never
                    // serve another delta from a corrupt shadow. Dropping
                    // the channels ends every subscription visibly.
                    eprintln!("cypher-serve: view maintenance diverged: {e}");
                    state.subs.clear();
                    return;
                }
            }
        }
        for id in drop_views {
            state.subs.remove(&id);
            mgr.unregister(id);
        }
        if !mgr.is_empty() {
            state.mgr = Some(mgr);
        }
    }
}

/// A point-in-time statistics sample, assembled without touching the
/// worker queue (all sources are atomics or lock-free-ish shared state),
/// so `Stats` works even when the apply queue is wedged.
#[derive(Clone, Debug)]
pub struct StoreStats {
    /// Current replication role.
    pub role: Role,
    /// Reader epoch (bumps on every batch that changed the graph).
    pub epoch: u64,
    /// Highest durable (flushed) commit sequence.
    pub commit_seq: u64,
    /// Jobs currently queued for the apply worker.
    pub queue_len: u64,
    /// Replica only: highest sequence received from the primary.
    pub primary_seen: u64,
    /// The replication epoch this server believes is current (bumped by
    /// every failover promotion; a fenced zombie's is stale).
    pub repl_epoch: u64,
    /// Quorum-replication state (async / in-sync / degraded / timed-out).
    pub quorum: QuorumState,
    /// Subscribers disconnected because their feed backlog overflowed.
    pub overflow_drops: u64,
    /// Primary only: per-subscriber shipping and durable-ack progress.
    pub replicas: Vec<PeerProgress>,
    /// Live query views registered on this store, with maintenance
    /// counters.
    pub views: Vec<ViewStat>,
}

/// A unit of work for the apply worker.
pub enum Job {
    /// Run one update statement. The engine rides along because budgets,
    /// dialect and lint policy are per-session.
    Write {
        text: String,
        engine: Engine,
        resp: SyncSender<WriteOutcome>,
    },
    /// Apply one unit shipped from the primary (replica mode).
    Replicate {
        unit: ShippedUnit,
        resp: SyncSender<ReplicaApply>,
    },
    /// Publish a fresh epoch snapshot (only sent when the cache is stale).
    Snapshot {
        resp: SyncSender<Arc<PropertyGraph>>,
    },
    /// Checkpoint the durable store (snapshot + WAL truncate); also the
    /// reconciliation path for a sealed handle.
    Checkpoint {
        resp: SyncSender<Result<(), StorageError>>,
    },
    /// The committed-statement texts, in commit order.
    CommitLog { resp: SyncSender<Vec<String>> },
    /// Attach a replica subscriber; the worker decides backlog vs
    /// snapshot bootstrap atomically with respect to publishing.
    Subscribe {
        label: String,
        from: u64,
        resp: SyncSender<Result<SubscribeReply, StorageError>>,
    },
    /// Replace the store's contents with an encoded snapshot shipped by
    /// the primary (replica bootstrap).
    InstallSnapshot {
        bytes: Vec<u8>,
        resp: SyncSender<Result<u64, StorageError>>,
    },
    /// Register a live query view. A tail job: the worker drains the
    /// flush pipeline first, so the view's initial snapshot is computed on
    /// durable, fully-fed state and the first delta it receives is exactly
    /// the next committed statement.
    SubscribeView {
        text: String,
        engine: Engine,
        resp: SyncSender<Result<ViewSubscription, EvalError>>,
    },
    /// Durably fence this store: it will never acknowledge another write,
    /// even across restarts. `epoch` is the replication epoch the fencer
    /// is acting in; it is persisted in the marker so a restarted zombie
    /// knows how stale it is.
    Fence {
        new_primary: Option<String>,
        epoch: u64,
        resp: SyncSender<Result<(), StorageError>>,
    },
    /// Drain, flush and exit.
    Shutdown,
}

/// Global in-flight statement cap (admission control layer one).
///
/// `try_acquire` never blocks: over the cap means the caller sends the
/// retryable `Busy` error instead of queueing unbounded work.
pub struct Gate {
    inflight: AtomicUsize,
    cap: usize,
}

impl Gate {
    pub fn new(cap: usize) -> Gate {
        Gate {
            inflight: AtomicUsize::new(0),
            cap,
        }
    }

    pub fn try_acquire(self: &Arc<Self>) -> Option<GateGuard> {
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= self.cap {
                return None;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(GateGuard {
                        gate: Arc::clone(self),
                    })
                }
                Err(now) => cur = now,
            }
        }
    }

    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }
}

/// RAII release of one in-flight slot.
pub struct GateGuard {
    gate: Arc<Gate>,
}

impl Drop for GateGuard {
    fn drop(&mut self) {
        self.gate.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Tunables for [`SharedStore::start_with`]. `Default` reproduces the
/// historical asynchronous-replication behaviour of [`SharedStore::start`].
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Apply-queue depth (admission control layer two).
    pub queue_depth: usize,
    /// Group-commit batch bound.
    pub max_batch: usize,
    /// Global in-flight statement cap.
    pub max_inflight: usize,
    /// Configured starting role (a durable fence overrides it).
    pub role: Role,
    /// `--sync-replicas N`: client acknowledgements wait until `N`
    /// replicas confirmed durability of the batch. `0` is asynchronous.
    pub sync_replicas: usize,
    /// How long a group commit waits for quorum before `sync_policy`
    /// decides the batch's fate.
    pub sync_timeout: Duration,
    /// What a timed-out quorum wait does: refuse (strict) or acknowledge
    /// and degrade to async (degrade).
    pub sync_policy: SyncPolicy,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            queue_depth: 64,
            max_batch: 32,
            max_inflight: 64,
            role: Role::Primary,
            sync_replicas: 0,
            sync_timeout: Duration::from_secs(5),
            sync_policy: SyncPolicy::Strict,
        }
    }
}

/// Handle to the apply worker plus the reader-side snapshot cache.
/// Cloneable across sessions; the worker exits when [`shutdown`]
/// (`SharedStore::shutdown`) runs or every handle is dropped.
pub struct SharedStore {
    tx: SyncSender<Job>,
    snaps: Arc<EpochSnapshots>,
    gate: Arc<Gate>,
    max_batch: usize,
    worker: Mutex<Option<JoinHandle<()>>>,
    hub: Arc<ReplicationHub>,
    role: Arc<RoleCell>,
    commit_seq: Arc<AtomicU64>,
    primary_seen: Arc<AtomicU64>,
    queue_len: Arc<AtomicUsize>,
    quorum: Arc<QuorumStateCell>,
    repl_epoch: Arc<AtomicU64>,
    views: Arc<ViewHub>,
}

impl SharedStore {
    /// Spawn the apply worker with asynchronous replication (no quorum
    /// waits). Shorthand for [`SharedStore::start_with`] with default
    /// quorum options.
    pub fn start(
        durable: DurableGraph,
        queue_depth: usize,
        max_batch: usize,
        max_inflight: usize,
        role: Role,
    ) -> Arc<SharedStore> {
        SharedStore::start_with(
            durable,
            StoreOptions {
                queue_depth,
                max_batch,
                max_inflight,
                role,
                ..StoreOptions::default()
            },
        )
    }

    /// Spawn the apply worker over an already-opened durable graph.
    ///
    /// `opts.role` is the configured starting role; a durably fenced
    /// store overrides it to [`Role::Fenced`] — a zombie ex-primary
    /// restarts fenced no matter what its command line says.
    pub fn start_with(mut durable: DurableGraph, opts: StoreOptions) -> Arc<SharedStore> {
        let role = if durable.is_fenced() {
            Role::Fenced {
                new_primary: durable.fence_target().map(str::to_owned),
            }
        } else {
            opts.role
        };
        let commit_seq = Arc::new(AtomicU64::new(durable.next_txid().saturating_sub(1)));
        let primary_seen = Arc::new(AtomicU64::new(0));
        let queue_len = Arc::new(AtomicUsize::new(0));
        let hub = Arc::new(ReplicationHub::new(opts.queue_depth.max(1) * 4));
        let (tx, rx) = mpsc::sync_channel(opts.queue_depth.max(1));
        let snaps = Arc::new(EpochSnapshots::new());
        let batch = opts.max_batch.max(1);
        let quorum = Arc::new(QuorumStateCell::new(if opts.sync_replicas == 0 {
            QuorumState::Async
        } else {
            QuorumState::InSync
        }));
        // Epochs start at 1; a fenced marker carries the epoch the fencer
        // acted in, which is the freshest this zombie has ever seen.
        let repl_epoch = Arc::new(AtomicU64::new(durable.fence_epoch().max(1)));

        let mirror_base = durable.recovered_base();
        let mirror: Vec<ShippedUnit> = durable
            .take_recovered_statements()
            .into_iter()
            .map(|(seq, dialect, text)| ShippedUnit { seq, dialect, text })
            .collect();
        let views = Arc::new(ViewHub::new());
        let flush = Arc::new(FlushCtx {
            snaps: Arc::clone(&snaps),
            hub: Arc::clone(&hub),
            views: Arc::clone(&views),
            commit_seq: Arc::clone(&commit_seq),
            quorum: Arc::clone(&quorum),
            sync_replicas: opts.sync_replicas,
            sync_timeout: opts.sync_timeout,
            sync_policy: opts.sync_policy,
            ship: Mutex::new(ShipState {
                commit_log: Vec::new(),
                mirror,
                mirror_base,
            }),
        });
        let state = WorkerState {
            durable,
            primary_seen: Arc::clone(&primary_seen),
            flush,
            replica_engines: HashMap::new(),
        };
        let worker_queue = Arc::clone(&queue_len);
        let worker = std::thread::Builder::new()
            .name("cypher-apply".to_owned())
            .spawn(move || apply_worker(state, rx, worker_queue, batch))
            .ok();
        Arc::new(SharedStore {
            tx,
            snaps,
            gate: Arc::new(Gate::new(opts.max_inflight.max(1))),
            max_batch: batch,
            worker: Mutex::new(worker),
            hub,
            role: Arc::new(RoleCell::new(role)),
            commit_seq,
            primary_seen,
            queue_len,
            quorum,
            repl_epoch,
            views,
        })
    }

    pub fn gate(&self) -> &Arc<Gate> {
        &self.gate
    }

    /// The store's current replication role (shared with sessions and the
    /// replica tailer).
    pub fn role(&self) -> &Arc<RoleCell> {
        &self.role
    }

    /// Current write epoch (diagnostics; also stamped into `RunOk`).
    pub fn epoch(&self) -> u64 {
        self.snaps.epoch()
    }

    /// Highest durable commit sequence (== the WAL's last flushed txid).
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq.load(Ordering::Acquire)
    }

    /// A statement-atomic snapshot for a reader. Wait-free when the cache
    /// is current; otherwise one `Snapshot` job goes through the queue
    /// (FIFO ⇒ read-your-writes) and the worker publishes a fresh clone.
    /// `None` means the queue refused (full or worker gone) — the caller
    /// reports `Busy`.
    pub fn snapshot(&self) -> Option<Arc<PropertyGraph>> {
        if let Some(g) = self.snaps.cached() {
            return Some(g);
        }
        let (resp, rx) = mpsc::sync_channel(1);
        self.try_submit(Job::Snapshot { resp }).ok()?;
        rx.recv().ok()
    }

    /// Submit a write statement; blocks until the worker has flushed the
    /// batch containing it. `Err` means the queue refused admission.
    pub fn submit_write(&self, text: String, engine: Engine) -> Result<WriteOutcome, Busy> {
        let (resp, rx) = mpsc::sync_channel(1);
        self.try_submit(Job::Write { text, engine, resp })?;
        rx.recv().map_err(|_| Busy("apply worker exited"))
    }

    /// Apply one shipped unit (replica tailer path); blocks until the
    /// containing group commit flushed.
    pub fn replicate(&self, unit: ShippedUnit) -> Result<ReplicaApply, Busy> {
        let (resp, rx) = mpsc::sync_channel(1);
        self.try_submit(Job::Replicate { unit, resp })?;
        rx.recv().map_err(|_| Busy("apply worker exited"))
    }

    /// Checkpoint the durable store (the wire `Commit` frame).
    pub fn checkpoint(&self) -> Result<Result<(), StorageError>, Busy> {
        let (resp, rx) = mpsc::sync_channel(1);
        self.try_submit(Job::Checkpoint { resp })?;
        rx.recv().map_err(|_| Busy("apply worker exited"))
    }

    /// The commit log (differential-test oracle and `CommitLog` frame).
    pub fn commit_log(&self) -> Result<Vec<String>, Busy> {
        let (resp, rx) = mpsc::sync_channel(1);
        self.try_submit(Job::CommitLog { resp })?;
        rx.recv().map_err(|_| Busy("apply worker exited"))
    }

    /// Attach a replica subscriber. The worker performs the attach, so
    /// the handed-out catch-up payload and the live feed are gap-free by
    /// construction (nothing publishes between them).
    pub fn subscribe(
        &self,
        label: String,
        from: u64,
    ) -> Result<Result<SubscribeReply, StorageError>, Busy> {
        let (resp, rx) = mpsc::sync_channel(1);
        self.try_submit(Job::Subscribe { label, from, resp })?;
        rx.recv().map_err(|_| Busy("apply worker exited"))
    }

    /// Register a live query view and return its initial snapshot plus
    /// the committed-delta event feed. Goes through the worker queue (tail
    /// job) so registration lands exactly at a statement boundary of the
    /// durable state.
    pub fn subscribe_view(
        &self,
        text: String,
        engine: Engine,
    ) -> Result<Result<ViewSubscription, EvalError>, Busy> {
        let (resp, rx) = mpsc::sync_channel(1);
        self.try_submit(Job::SubscribeView { text, engine, resp })?;
        rx.recv().map_err(|_| Busy("apply worker exited"))
    }

    /// Drop a live query view (no queue round-trip needed: the hub mutex
    /// serializes against the feed). Returns `false` for an unknown id.
    pub fn unsubscribe_view(&self, id: u64) -> bool {
        self.views.unsubscribe(id)
    }

    /// Replace the store's contents with a snapshot shipped by the
    /// primary (replica bootstrap). Returns the covered sequence.
    pub fn install_snapshot(&self, bytes: Vec<u8>) -> Result<Result<u64, StorageError>, Busy> {
        let (resp, rx) = mpsc::sync_channel(1);
        self.try_submit(Job::InstallSnapshot { bytes, resp })?;
        rx.recv().map_err(|_| Busy("apply worker exited"))
    }

    /// Durably fence this store and drop every subscriber. The role flips
    /// to [`Role::Fenced`] even when persisting the marker failed — the
    /// in-memory fence in the storage layer refuses writes regardless.
    /// `epoch` is the fencer's replication epoch; the marker keeps the
    /// highest epoch ever written.
    pub fn fence(
        &self,
        new_primary: Option<String>,
        epoch: u64,
    ) -> Result<Result<(), StorageError>, Busy> {
        let (resp, rx) = mpsc::sync_channel(1);
        self.try_submit(Job::Fence {
            new_primary: new_primary.clone(),
            epoch,
            resp,
        })?;
        let out = rx.recv().map_err(|_| Busy("apply worker exited"))?;
        self.repl_epoch.fetch_max(epoch, Ordering::AcqRel);
        self.role.set(Role::Fenced { new_primary });
        Ok(out)
    }

    /// Promote this store to primary (manual failover): role flip plus an
    /// epoch bump — the new reign is distinguishable from the old one.
    /// Returns the commit sequence the new primary serves writes from.
    pub fn promote(&self) -> u64 {
        let next = self.repl_epoch().saturating_add(1);
        self.promote_with_epoch(next)
    }

    /// Promote into a specific replication epoch (automatic failover: the
    /// election winner promotes at `old epoch + 1`). The stored epoch
    /// only ever moves forward.
    pub fn promote_with_epoch(&self, epoch: u64) -> u64 {
        self.repl_epoch.fetch_max(epoch, Ordering::AcqRel);
        self.role.set(Role::Primary);
        self.commit_seq()
    }

    /// The replication epoch this server currently believes in.
    pub fn repl_epoch(&self) -> u64 {
        self.repl_epoch.load(Ordering::Acquire)
    }

    /// A replica learned the primary's epoch from a `SubscribeOk` frame.
    /// Epochs only move forward — a stale frame cannot regress it.
    pub fn note_primary_epoch(&self, epoch: u64) {
        self.repl_epoch.fetch_max(epoch, Ordering::AcqRel);
    }

    /// Current quorum-replication state (for `Stats` and the write path).
    pub fn quorum_state(&self) -> QuorumState {
        self.quorum.get()
    }

    /// Note the highest sequence number the tailer has received from the
    /// primary (replica-side lag bookkeeping).
    pub fn note_primary_seen(&self, seq: u64) {
        self.primary_seen.fetch_max(seq, Ordering::AcqRel);
    }

    /// Sample the store's statistics without going through the queue.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            role: self.role.get(),
            epoch: self.epoch(),
            commit_seq: self.commit_seq(),
            queue_len: self.queue_len.load(Ordering::Relaxed) as u64,
            primary_seen: self.primary_seen.load(Ordering::Acquire),
            repl_epoch: self.repl_epoch(),
            quorum: self.quorum.get(),
            overflow_drops: self.hub.overflow_drops(),
            replicas: self.hub.peers(),
            views: self.views.stats(),
        }
    }

    fn try_submit(&self, job: Job) -> Result<(), Busy> {
        match self.tx.try_send(job) {
            Ok(()) => {
                self.queue_len.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(_)) => Err(Busy("apply queue full")),
            Err(TrySendError::Disconnected(_)) => Err(Busy("apply worker exited")),
        }
    }

    /// Stop the worker after it drains everything already queued. Blocking
    /// send: shutdown must not be refused by a momentarily full queue.
    /// Subscribers are disconnected first so their feeder sessions end.
    pub fn shutdown(&self) {
        self.hub.disconnect_all();
        self.views.reset();
        if self.tx.send(Job::Shutdown).is_ok() {
            self.queue_len.fetch_add(1, Ordering::Relaxed);
        }
        if let Ok(mut guard) = self.worker.lock() {
            if let Some(h) = guard.take() {
                let _ = h.join();
            }
        }
    }

    /// The configured group-commit batch size (diagnostics).
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }
}

/// Admission refused; carries the reason for the `Busy` error message.
#[derive(Debug, Clone, Copy)]
pub struct Busy(pub &'static str);

/// Everything the batch-builder stage owns: the durable graph plus the
/// structures that must only ever change on the builder thread, in
/// lockstep with the WAL.
struct WorkerState {
    durable: DurableGraph,
    primary_seen: Arc<AtomicU64>,
    /// State shared with the flush/ack stage.
    flush: Arc<FlushCtx>,
    /// Replica mode: cached per-dialect engines for replaying shipped
    /// statements. No lint, no budgets — the primary already enforced its
    /// session policies before committing, and a replica must apply
    /// whatever the primary committed.
    replica_engines: HashMap<u8, Engine>,
}

/// Shipping bookkeeping shared between the builder and flusher stages.
/// The flusher extends it as batches retire durable; the builder reads it
/// for tail jobs only after draining the pipeline, so those reads observe
/// a quiesced, batch-boundary state.
struct ShipState {
    /// Committed update-statement texts since process start, in commit
    /// order (the differential-replay oracle).
    commit_log: Vec<String>,
    /// Shipped units retained for subscriber catch-up: every committed
    /// unit with `seq > mirror_base`, in order. Seeded at startup from the
    /// WAL replay, so the retention window is "since the last checkpoint
    /// before this process started".
    mirror: Vec<ShippedUnit>,
    /// Sequence the mirror starts after; a subscriber at or beyond this
    /// can catch up from the mirror, an older one needs a snapshot.
    mirror_base: u64,
}

/// Everything the flush/ack stage needs, shared (behind one `Arc`) with
/// the builder thread, which uses the same cells for tail jobs and for
/// rolling back after a failed flush.
struct FlushCtx {
    snaps: Arc<EpochSnapshots>,
    hub: Arc<ReplicationHub>,
    /// Live-query views fed by the flush stage (post-fsync only).
    views: Arc<ViewHub>,
    commit_seq: Arc<AtomicU64>,
    /// Quorum-replication state reported through `Stats`.
    quorum: Arc<QuorumStateCell>,
    /// Replica confirmations each group commit waits for (0 = async).
    sync_replicas: usize,
    /// Quorum wait deadline per group commit.
    sync_timeout: Duration,
    /// Refuse or degrade when the wait times out.
    sync_policy: SyncPolicy,
    ship: Mutex<ShipState>,
}

impl FlushCtx {
    fn ship(&self) -> MutexGuard<'_, ShipState> {
        // Both stages only ever append or swap whole values under this
        // lock; a poisoned guard still holds consistent data.
        self.ship.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One staged group commit travelling from the builder to the flusher:
/// the WAL window's sync ticket (`None` when the batch appended nothing),
/// the per-item acknowledgements it gates, and the units to ship once
/// durable.
struct FlushBatch {
    ticket: Option<SyncTicket>,
    acks: Vec<PendingAck>,
    units: Vec<ShippedUnit>,
    /// Per-committed-statement graph deltas for view maintenance, in
    /// commit order. Captured only while views are registered; empty
    /// otherwise.
    deltas: Vec<(u64, Vec<Delta>)>,
    /// Highest txid applied when the batch was staged (the batch's commit
    /// sequence once durable). Meaningless when `units` is empty.
    head_seq: u64,
}

/// The builder's handle to the flush stage: the job channel, the fsync
/// outcomes coming back, and whether a staged window is still in flight.
struct Pipeline {
    /// `None` when the flusher thread could not be spawned — the builder
    /// then degrades to serial (in-line) group commits.
    tx: Option<SyncSender<FlushBatch>>,
    done_rx: Receiver<std::io::Result<()>>,
    /// A batch has been handed to the flusher and its outcome not yet
    /// consumed. At most one, matching the WAL's single staged window.
    outstanding: bool,
    flusher: Option<JoinHandle<()>>,
}

impl Pipeline {
    fn spawn(ctx: Arc<FlushCtx>) -> Pipeline {
        let (tx, rx) = mpsc::sync_channel::<FlushBatch>(1);
        let (done_tx, done_rx) = mpsc::sync_channel::<std::io::Result<()>>(1);
        let flusher = std::thread::Builder::new()
            .name("cypher-flush".to_owned())
            .spawn(move || flush_worker(ctx, rx, done_tx))
            .ok();
        Pipeline {
            tx: flusher.is_some().then_some(tx),
            done_rx,
            outstanding: false,
            flusher,
        }
    }

    /// Disconnect the job channel and wait for the flusher to exit. The
    /// caller must have drained the pipeline first.
    fn join(mut self) {
        self.tx = None;
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
    }
}

/// The flush/ack stage: fsync each staged batch, publish + acknowledge
/// it, then report the fsync outcome to the builder. Because the outcome
/// is sent only after the batch fully retired (acks included), consuming
/// it doubles as a pipeline drain barrier: once the builder has received
/// it, the flusher is idle and the ship state is quiesced.
fn flush_worker(
    ctx: Arc<FlushCtx>,
    rx: Receiver<FlushBatch>,
    done: SyncSender<std::io::Result<()>>,
) {
    while let Ok(batch) = rx.recv() {
        let outcome = run_flush(&ctx, batch);
        if done.send(outcome).is_err() {
            return;
        }
    }
}

/// One batched unit of group-committed work: a client write or a shipped
/// unit. Both run through `apply_buffered_logged` and share the batch's
/// single fsync.
enum BatchItem {
    Write {
        text: String,
        engine: Engine,
        resp: SyncSender<WriteOutcome>,
    },
    Replicate {
        unit: ShippedUnit,
        resp: SyncSender<ReplicaApply>,
    },
}

/// Per-item result held until the batch's flush decides its fate.
enum PendingAck {
    Write(SyncSender<WriteOutcome>, WriteOutcome),
    Replicate(SyncSender<ReplicaApply>, ReplicaApply),
}

fn apply_worker(
    mut state: WorkerState,
    rx: Receiver<Job>,
    queue_len: Arc<AtomicUsize>,
    max_batch: usize,
) {
    let mut pipe = Pipeline::spawn(Arc::clone(&state.flush));
    loop {
        // Block for the first job, then opportunistically drain more up to
        // the batch bound. Only writes and replicated units extend a
        // batch: the first other job closes it (it must observe the
        // flushed, epoch-bumped state).
        let Ok(first) = rx.recv() else {
            // Every SharedStore handle dropped: drain, flush and exit.
            drain_pipeline(&mut state, &mut pipe);
            let _ = state.durable.flush();
            pipe.join();
            return;
        };
        queue_len.fetch_sub(1, Ordering::Relaxed);
        let mut items: Vec<BatchItem> = Vec::new();
        let mut tail: Option<Job> = None;
        match as_batch_item(first) {
            Ok(item) => items.push(item),
            Err(other) => tail = Some(*other),
        }
        while tail.is_none() && items.len() < max_batch {
            match rx.try_recv() {
                Ok(job) => {
                    queue_len.fetch_sub(1, Ordering::Relaxed);
                    match as_batch_item(job) {
                        Ok(item) => items.push(item),
                        Err(other) => tail = Some(*other),
                    }
                }
                Err(_) => break,
            }
        }

        if !items.is_empty() {
            dispatch_batch(&mut state, &mut pipe, items);
        }

        let Some(tail) = tail else { continue };
        // Non-batchable jobs must observe flushed, epoch-bumped,
        // fully-acknowledged state: drain the flush stage first. (Failure
        // recovery, if the in-flight batch's fsync failed, also happens
        // here, inside drain_pipeline.)
        drain_pipeline(&mut state, &mut pipe);
        match tail {
            Job::Snapshot { resp } => {
                let _ = resp.send(state.flush.snaps.publish(state.durable.graph()));
            }
            Job::Checkpoint { resp } => {
                let _ = resp.send(run_checkpoint(&mut state));
            }
            Job::CommitLog { resp } => {
                let _ = resp.send(state.flush.ship().commit_log.clone());
            }
            Job::Subscribe { label, from, resp } => {
                let _ = resp.send(run_subscribe(&mut state, &label, from));
            }
            Job::SubscribeView { text, engine, resp } => {
                let seq = state.durable.next_txid().saturating_sub(1);
                let epoch = state.flush.snaps.epoch();
                let _ = resp.send(state.flush.views.register(
                    state.durable.graph(),
                    seq,
                    epoch,
                    &text,
                    &engine,
                ));
            }
            Job::InstallSnapshot { bytes, resp } => {
                let _ = resp.send(run_install_snapshot(&mut state, &bytes));
            }
            Job::Fence {
                new_primary,
                epoch,
                resp,
            } => {
                // Disconnect first: a fenced store must not ship another
                // unit, even one already committed, on a live feed that a
                // replica might mistake for primary liveness.
                state.flush.hub.disconnect_all();
                // A fenced store commits nothing more; end live query
                // feeds too rather than leaving them to idle forever.
                state.flush.views.reset();
                let _ = resp.send(state.durable.fence(new_primary.as_deref(), epoch));
            }
            Job::Shutdown => {
                let _ = state.durable.flush();
                pipe.join();
                return;
            }
            Job::Write { .. } | Job::Replicate { .. } => {
                unreachable!("batchable jobs never land in tail")
            }
        }
    }
}

/// Run one batch through the two-stage pipeline: apply every item (batch
/// N+1's applies overlap batch N's fsync/quorum wait on the flusher),
/// retire the previous staged window, then stage this batch's window and
/// hand it to the flusher.
fn dispatch_batch(state: &mut WorkerState, pipe: &mut Pipeline, items: Vec<BatchItem>) {
    let Some(tx) = pipe.tx.clone() else {
        // No flusher thread (spawn failed at startup): serial group commit.
        run_batch(state, items);
        return;
    };
    let (acks, units, deltas, head_seq) = apply_batch(state, items);
    if drain_pipeline(state, pipe) {
        // The in-flight predecessor batch's fsync failed while this batch
        // was applied on top of it; drain_pipeline already rolled the
        // graph (and this batch's never-staged WAL bytes) back to the
        // durable horizon. Nothing here was acknowledged — downgrade it
        // all, exactly like the predecessor's own items.
        let msg =
            "group commit failed: a preceding batch's fsync failed and rolled this batch back";
        for ack in acks {
            send_ack(ack, Some(msg));
        }
        return;
    }
    match state.durable.stage_flush() {
        Ok(ticket) => match tx.send(FlushBatch {
            ticket,
            acks,
            units,
            deltas,
            head_seq,
        }) {
            Ok(()) => pipe.outstanding = true,
            Err(mpsc::SendError(batch)) => {
                // Flusher gone mid-run (it only exits on teardown or
                // panic): fall back to completing this commit in-line so
                // the durability protocol still holds, and stay serial.
                pipe.tx = None;
                finish_flush_inline(state, batch);
            }
        },
        Err(e) => {
            // Sealed (a mid-batch append failure already rolled the
            // window back) or the sync handle could not be acquired:
            // nothing in this batch is durable.
            let msg = format!("group commit failed: {e}");
            recover_after_failed_flush(state);
            for ack in acks {
                send_ack(ack, Some(&msg));
            }
        }
    }
}

/// Consume the outstanding flush outcome, if any, retiring the staged WAL
/// window. Returns `true` when that flush failed — the durable graph has
/// then already been rolled back to the durable horizon and reader caches
/// invalidated.
fn drain_pipeline(state: &mut WorkerState, pipe: &mut Pipeline) -> bool {
    if !pipe.outstanding {
        return false;
    }
    pipe.outstanding = false;
    let outcome = pipe
        .done_rx
        .recv()
        .unwrap_or_else(|_| Err(std::io::Error::other("flush stage exited")));
    if state.durable.complete_flush(outcome).is_err() {
        recover_after_failed_flush(state);
        true
    } else {
        false
    }
}

/// Roll back after a failed group commit. The WAL already rolled back to
/// the durable horizon: nothing in the failed window is durable, nothing
/// was acknowledged as committed and nothing was shipped. Reopen so the
/// in-memory graph matches the durable (== shipped) state — the legacy
/// "sealed memory runs ahead until a checkpoint absorbs it" semantic
/// would diverge every replica. The epoch bumps so no reader keeps a
/// cache from the rolled-back window.
fn recover_after_failed_flush(state: &mut WorkerState) {
    if let Err(reopen_err) = state.durable.reopen() {
        // Could not rebuild from disk either; the handle stays sealed and
        // every later write reports it.
        eprintln!("cypher-serve: reopen after failed flush also failed: {reopen_err}");
    }
    state.flush.snaps.bump();
    state.flush.commit_seq.store(
        state.durable.next_txid().saturating_sub(1),
        Ordering::Release,
    );
}

/// Complete a staged commit on the builder thread (flusher unavailable):
/// same protocol, no overlap.
fn finish_flush_inline(state: &mut WorkerState, batch: FlushBatch) {
    let ctx = Arc::clone(&state.flush);
    let outcome = run_flush(&ctx, batch);
    if state.durable.complete_flush(outcome).is_err() {
        recover_after_failed_flush(state);
    }
}

fn as_batch_item(job: Job) -> Result<BatchItem, Box<Job>> {
    match job {
        Job::Write { text, engine, resp } => Ok(BatchItem::Write { text, engine, resp }),
        Job::Replicate { unit, resp } => Ok(BatchItem::Replicate { unit, resp }),
        other => Err(Box::new(other)),
    }
}

/// Checkpoint, reconciling a sealed handle the replication-safe way: a
/// seal means the in-memory graph may be ahead of the durable (and
/// therefore shipped) horizon, so absorb **nothing** — reopen from the
/// durable state, then checkpoint that.
fn run_checkpoint(state: &mut WorkerState) -> Result<(), StorageError> {
    if state.durable.is_sealed() {
        state.durable.reopen()?;
        // Memory rolled back: invalidate reader caches and re-truth the
        // published sequence.
        state.flush.snaps.bump();
        state.flush.commit_seq.store(
            state.durable.next_txid().saturating_sub(1),
            Ordering::Release,
        );
    }
    state.durable.checkpoint()
}

/// Grant a subscription. Runs on the worker so nothing can publish
/// between assembling the catch-up payload and attaching the live feed.
fn run_subscribe(
    state: &mut WorkerState,
    label: &str,
    from: u64,
) -> Result<SubscribeReply, StorageError> {
    let head = state.durable.next_txid().saturating_sub(1);
    let ship = state.flush.ship();
    if from >= ship.mirror_base {
        // The mirror covers the subscriber's position: hand out the tail
        // it is missing and attach at the head.
        let backlog: Vec<ShippedUnit> = ship
            .mirror
            .iter()
            .filter(|u| u.seq > from)
            .cloned()
            .collect();
        drop(ship);
        let sub = state.flush.hub.attach(label, head);
        Ok(SubscribeReply {
            start: SubscribeStart::Backlog(backlog),
            sub,
            seq: head,
        })
    } else {
        drop(ship);
        // Too far behind (a checkpoint truncated its window before this
        // process started): bootstrap from a full snapshot.
        let (covered, bytes) = state.durable.encode_snapshot_bytes()?;
        let sub = state.flush.hub.attach(label, covered);
        Ok(SubscribeReply {
            start: SubscribeStart::Snapshot {
                seq: covered,
                bytes,
            },
            sub,
            seq: head,
        })
    }
}

/// Install a shipped snapshot: the replica's entire state is replaced and
/// its replication bookkeeping rebased onto the covered sequence.
fn run_install_snapshot(state: &mut WorkerState, bytes: &[u8]) -> Result<u64, StorageError> {
    let covered = state.durable.install_snapshot(bytes)?;
    // The entire graph was replaced: every view's shadow is now wrong.
    // Reset rather than resync — subscribers observe the disconnect and
    // re-register against the new state.
    state.flush.views.reset();
    {
        let mut ship = state.flush.ship();
        ship.mirror.clear();
        ship.mirror_base = covered;
        ship.commit_log.clear();
    }
    state.flush.commit_seq.store(covered, Ordering::Release);
    state.primary_seen.fetch_max(covered, Ordering::AcqRel);
    state.flush.snaps.bump();
    Ok(covered)
}

/// What `apply_batch` hands the flush stage: pending acknowledgements,
/// the units to ship once durable, the per-statement committed deltas
/// (seq, ops) for the view hub, and the batch's head txid.
type AppliedBatch = (
    Vec<PendingAck>,
    Vec<ShippedUnit>,
    Vec<(u64, Vec<Delta>)>,
    u64,
);

/// The apply half of a group commit: run each item through
/// `apply_buffered_logged` so its commit unit joins the un-synced WAL
/// window. Returns the pending acknowledgements, the units to ship once
/// durable, and the batch's head txid. No item is acknowledged here —
/// that is the flush stage's job, after the window is durable.
fn apply_batch(state: &mut WorkerState, items: Vec<BatchItem>) -> AppliedBatch {
    let mut acks: Vec<PendingAck> = Vec::new();
    let mut batch_units: Vec<ShippedUnit> = Vec::new();
    let mut batch_deltas: Vec<(u64, Vec<Delta>)> = Vec::new();
    // Sampled once per batch: registration is a tail job, so it cannot
    // land between two items of the same batch.
    let capture = state.flush.views.active();

    for item in items {
        match item {
            BatchItem::Write { text, engine, resp } => {
                let dialect = dialect_byte(engine.dialect);
                let applied = state
                    .durable
                    .apply_buffered_logged(Some((dialect, &text)), |g| engine.run(g, &text));
                match applied {
                    Ok((Ok(result), Some(seq))) => {
                        if capture {
                            let ops = state.durable.take_last_delta();
                            batch_deltas.push((seq, Delta::from_ops(&ops, state.durable.graph())));
                        }
                        batch_units.push(ShippedUnit { seq, dialect, text });
                        acks.push(PendingAck::Write(resp, WriteOutcome::Ok(result)));
                    }
                    Ok((Ok(result), None)) => {
                        // No graph delta: nothing logged, nothing shipped.
                        acks.push(PendingAck::Write(resp, WriteOutcome::Ok(result)));
                    }
                    Ok((Err(e), _)) => acks.push(PendingAck::Write(resp, WriteOutcome::Eval(e))),
                    Err(e) => {
                        // Append failure seals the handle; later items of
                        // the batch see Sealed from their own apply, and
                        // the stage attempt afterwards reports Sealed too,
                        // downgrading every earlier Ok (their units were
                        // rolled off the log).
                        acks.push(PendingAck::Write(resp, WriteOutcome::Storage(e)));
                    }
                }
            }
            BatchItem::Replicate { unit, resp } => {
                state.primary_seen.fetch_max(unit.seq, Ordering::AcqRel);
                let outcome = apply_shipped(state, &unit);
                if matches!(outcome, ReplicaApply::Applied) {
                    if capture {
                        let ops = state.durable.take_last_delta();
                        batch_deltas.push((unit.seq, Delta::from_ops(&ops, state.durable.graph())));
                    }
                    batch_units.push(unit);
                }
                acks.push(PendingAck::Replicate(resp, outcome));
            }
        }
    }

    let head_seq = state.durable.next_txid().saturating_sub(1);
    (acks, batch_units, batch_deltas, head_seq)
}

/// The flush/ack half of a group commit: fsync the staged window, then —
/// and only then — publish the units, wait for quorum and acknowledge
/// every item. On an fsync failure every item of the batch (even ones
/// that executed cleanly) reports the storage error: none of them was
/// ever acknowledged, so none of them is lost *silently*. The builder
/// learns the outcome through the returned `Result` and rolls the
/// in-memory graph back, so memory never runs ahead of what replicas
/// were shipped.
fn run_flush(ctx: &FlushCtx, batch: FlushBatch) -> std::io::Result<()> {
    let FlushBatch {
        ticket,
        acks,
        units,
        deltas,
        head_seq,
    } = batch;
    let synced = match ticket {
        Some(mut t) => t.sync(),
        None => Ok(()),
    };
    if let Err(e) = synced {
        let msg = format!("group commit failed: {e}");
        for ack in acks {
            send_ack(ack, Some(&msg));
        }
        return Err(e);
    }

    let mut quorum_fail: Option<(usize, usize, u64)> = None;
    if !units.is_empty() {
        // New statement-boundary state: re-truth the published sequence,
        // invalidate reader caches, extend the oracle log and the
        // catch-up mirror, ship the (now durable) units to every
        // subscriber. The epoch bumps *before* the acks go out, so an
        // acknowledged writer's next read always misses the stale cache.
        ctx.commit_seq.store(head_seq, Ordering::Release);
        ctx.snaps.bump();
        {
            let mut ship = ctx.ship();
            ship.commit_log.extend(units.iter().map(|u| u.text.clone()));
            ship.mirror.extend(units.iter().cloned());
        }
        let dropped = ctx.hub.publish(&units);
        for label in dropped {
            eprintln!("cypher-serve: replica {label} dropped (feed backlog full)");
        }

        // Quorum gate: the batch is locally durable and shipped; hold the
        // client acknowledgements until enough replicas confirmed their
        // own fsync of every unit in it.
        if ctx.sync_replicas > 0 {
            let waited = Instant::now();
            let deadline = waited + ctx.sync_timeout;
            if ctx.hub.wait_durable(head_seq, ctx.sync_replicas, deadline) {
                ctx.quorum.set(QuorumState::InSync);
            } else {
                let acked = ctx.hub.durable_count(head_seq);
                let waited_ms = waited.elapsed().as_millis() as u64;
                match ctx.sync_policy {
                    SyncPolicy::Strict => {
                        ctx.quorum.set(QuorumState::TimedOut);
                        quorum_fail = Some((acked, ctx.sync_replicas, waited_ms));
                    }
                    SyncPolicy::Degrade => ctx.quorum.set(QuorumState::Degraded),
                }
            }
        }
    }
    for ack in acks {
        match quorum_fail {
            Some((acked, needed, waited_ms)) => send_quorum_refusal(ack, acked, needed, waited_ms),
            None => send_ack(ack, None),
        }
    }
    // Feed the view subsystem last: the batch is durable (fsync above),
    // its epoch is published, and the acknowledgements are out — live
    // query notification latency never sits on the write path. Quorum
    // refusal does not gate this: the batch is durable locally and
    // visible to readers (the epoch bumped before the quorum wait), so
    // subscribers must see it too.
    if !deltas.is_empty() {
        ctx.views.feed(&deltas, ctx.snaps.epoch());
    }
    Ok(())
}

/// Serial group commit: apply, stage, fsync and acknowledge a batch on
/// the calling thread. The degraded path when no flusher thread exists,
/// and the reference implementation the pipelined path must match.
fn run_batch(state: &mut WorkerState, items: Vec<BatchItem>) {
    let (acks, units, deltas, head_seq) = apply_batch(state, items);
    match state.durable.stage_flush() {
        Ok(ticket) => finish_flush_inline(
            state,
            FlushBatch {
                ticket,
                acks,
                units,
                deltas,
                head_seq,
            },
        ),
        Err(e) => {
            let msg = format!("group commit failed: {e}");
            recover_after_failed_flush(state);
            for ack in acks {
                send_ack(ack, Some(&msg));
            }
        }
    }
}

/// Acknowledge one batch item. `downgrade` carries the group-commit
/// failure message when the batch's flush failed: positive outcomes turn
/// into storage errors (the work is gone), negatives pass through.
fn send_ack(ack: PendingAck, downgrade: Option<&str>) {
    match ack {
        PendingAck::Write(resp, outcome) => {
            let outcome = match (downgrade, outcome) {
                (Some(msg), WriteOutcome::Ok(_)) => {
                    WriteOutcome::Storage(StorageError::Io(std::io::Error::other(msg.to_owned())))
                }
                (_, other) => other,
            };
            let _ = resp.send(outcome);
        }
        PendingAck::Replicate(resp, outcome) => {
            let outcome = match (downgrade, outcome) {
                (Some(msg), ReplicaApply::Applied) => {
                    ReplicaApply::Storage(StorageError::Io(std::io::Error::other(msg.to_owned())))
                }
                (_, other) => other,
            };
            let _ = resp.send(outcome);
        }
    }
}

/// Acknowledge one batch item after a timed-out strict quorum wait:
/// positive write outcomes become the retryable [`WriteOutcome::Quorum`]
/// refusal (the work is durable locally but unconfirmed), negatives pass
/// through unchanged. Replicated units keep their outcome — a replica's
/// own apply does not wait on other replicas.
fn send_quorum_refusal(ack: PendingAck, acked: usize, needed: usize, waited_ms: u64) {
    match ack {
        PendingAck::Write(resp, outcome) => {
            let outcome = match outcome {
                WriteOutcome::Ok(_) => WriteOutcome::Quorum {
                    acked,
                    needed,
                    waited_ms,
                },
                other => other,
            };
            let _ = resp.send(outcome);
        }
        PendingAck::Replicate(resp, outcome) => {
            let _ = resp.send(outcome);
        }
    }
}

/// Replay one shipped unit against the replica's graph, enforcing the
/// sequence discipline: apply exactly at `next_txid`, skip duplicates,
/// refuse gaps, and treat any execution difference as divergence.
fn apply_shipped(state: &mut WorkerState, unit: &ShippedUnit) -> ReplicaApply {
    let expected = state.durable.next_txid();
    if unit.seq < expected {
        return ReplicaApply::Skipped;
    }
    if unit.seq > expected {
        return ReplicaApply::Gap { expected };
    }
    let engine = state
        .replica_engines
        .entry(unit.dialect)
        .or_insert_with(|| EngineBuilder::new(dialect_from_byte(unit.dialect)).build())
        .clone();
    match state
        .durable
        .apply_buffered_logged(Some((unit.dialect, &unit.text)), |g| {
            engine.run(g, &unit.text)
        }) {
        Ok((Ok(_), Some(seq))) if seq == unit.seq => ReplicaApply::Applied,
        Ok((Ok(_), Some(seq))) => {
            ReplicaApply::Diverged(format!("unit {} landed at local txid {seq}", unit.seq))
        }
        Ok((Ok(_), None)) => ReplicaApply::Diverged(format!(
            "unit {} changed nothing here but committed a delta on the primary",
            unit.seq
        )),
        Ok((Err(e), _)) => {
            ReplicaApply::Diverged(format!("unit {} failed on the replica: {e}", unit.seq))
        }
        Err(e) => ReplicaApply::Storage(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_core::graph_to_cypher;

    fn temp_store(name: &str, queue: usize, batch: usize, inflight: usize) -> Arc<SharedStore> {
        let dir =
            std::env::temp_dir().join(format!("cypher-server-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let durable = DurableGraph::open(&dir).unwrap();
        SharedStore::start(durable, queue, batch, inflight, Role::Primary)
    }

    fn worker_state(durable: DurableGraph) -> WorkerState {
        WorkerState {
            durable,
            primary_seen: Arc::new(AtomicU64::new(0)),
            flush: Arc::new(FlushCtx {
                snaps: Arc::new(EpochSnapshots::new()),
                hub: Arc::new(ReplicationHub::new(8)),
                views: Arc::new(ViewHub::new()),
                commit_seq: Arc::new(AtomicU64::new(0)),
                quorum: Arc::new(QuorumStateCell::new(QuorumState::Async)),
                sync_replicas: 0,
                sync_timeout: Duration::from_secs(5),
                sync_policy: SyncPolicy::Strict,
                ship: Mutex::new(ShipState {
                    commit_log: Vec::new(),
                    mirror: Vec::new(),
                    mirror_base: 0,
                }),
            }),
            replica_engines: HashMap::new(),
        }
    }

    fn temp_store_quorum(
        name: &str,
        sync_replicas: usize,
        sync_timeout: Duration,
        sync_policy: SyncPolicy,
    ) -> Arc<SharedStore> {
        let dir =
            std::env::temp_dir().join(format!("cypher-server-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let durable = DurableGraph::open(&dir).unwrap();
        SharedStore::start_with(
            durable,
            StoreOptions {
                queue_depth: 16,
                max_batch: 8,
                max_inflight: 8,
                role: Role::Primary,
                sync_replicas,
                sync_timeout,
                sync_policy,
            },
        )
    }

    #[test]
    fn writes_commit_and_readers_see_them() {
        let store = temp_store("rw", 16, 8, 8);
        let engine = Engine::revised();
        match store
            .submit_write("CREATE (:A {id: 1})".into(), engine.clone())
            .unwrap()
        {
            WriteOutcome::Ok(res) => assert_eq!(res.stats.nodes_created, 1),
            other => panic!("{other:?}"),
        }
        let snap = store.snapshot().unwrap();
        assert_eq!(snap.node_count(), 1);
        // Same epoch: second snapshot is the cached Arc, not a new clone.
        let again = store.snapshot().unwrap();
        assert!(Arc::ptr_eq(&snap, &again));
        assert_eq!(store.commit_seq(), 1);
        store.shutdown();
    }

    /// Live query subscription end-to-end at the store level: register a
    /// view, commit writes, and verify (a) every committed change arrives
    /// as an ordered row delta, (b) replaying the deltas over the initial
    /// snapshot reproduces a fresh evaluation on the final state, and
    /// (c) unsubscribing stops the feed.
    #[test]
    fn view_subscription_delivers_replayable_deltas() {
        let store = temp_store("views", 16, 8, 8);
        let engine = Engine::revised();
        match store
            .submit_write("CREATE (:P {name: 'a'})".into(), engine.clone())
            .unwrap()
        {
            WriteOutcome::Ok(_) => {}
            other => panic!("{other:?}"),
        }
        let sub = store
            .subscribe_view("MATCH (n:P) RETURN n.name".into(), engine.clone())
            .unwrap()
            .unwrap();
        assert!(!sub.reg.fallback);
        assert_eq!(sub.reg.columns, vec!["n.name".to_owned()]);
        assert_eq!(sub.reg.rows.len(), 1);
        let mut rows: HashMap<String, (Vec<cypher_graph::Value>, u64)> = sub
            .reg
            .rows
            .iter()
            .map(|(r, n)| (format!("{r:?}"), (r.clone(), *n)))
            .collect();
        for stmt in [
            "CREATE (:P {name: 'b'})",
            "MATCH (n:P {name: 'a'}) SET n.name = 'c'",
            "MATCH (n:P {name: 'b'}) DETACH DELETE n",
        ] {
            match store.submit_write(stmt.into(), engine.clone()).unwrap() {
                WriteOutcome::Ok(_) => {}
                other => panic!("{other:?}"),
            }
            let ev = sub
                .events
                .recv_timeout(Duration::from_secs(5))
                .expect("a delta per committed statement");
            assert!(ev.epoch > 0);
            for (row, n) in &ev.update.removes {
                let key = format!("{row:?}");
                let e = rows.get_mut(&key).expect("remove of a present row");
                assert!(e.1 >= *n);
                e.1 -= *n;
                if e.1 == 0 {
                    rows.remove(&key);
                }
            }
            for (row, n) in &ev.update.adds {
                let e = rows
                    .entry(format!("{row:?}"))
                    .or_insert_with(|| (row.clone(), 0));
                e.1 += *n;
            }
        }
        let snap = store.snapshot().unwrap();
        let fresh = engine.run_read(&snap, "MATCH (n:P) RETURN n.name").unwrap();
        let mut expected: Vec<String> = fresh.rows.iter().map(|r| format!("{r:?}")).collect();
        expected.sort();
        let mut replayed: Vec<String> = rows
            .values()
            .flat_map(|(r, n)| std::iter::repeat_n(format!("{r:?}"), *n as usize))
            .collect();
        replayed.sort();
        assert_eq!(replayed, expected, "replayed deltas != final state");
        assert_eq!(store.stats().views.len(), 1);

        assert!(store.unsubscribe_view(sub.reg.id));
        assert!(!store.unsubscribe_view(sub.reg.id));
        match store
            .submit_write("CREATE (:P {name: 'z'})".into(), engine.clone())
            .unwrap()
        {
            WriteOutcome::Ok(_) => {}
            other => panic!("{other:?}"),
        }
        // The channel is disconnected once the hub dropped the sender.
        match sub.events.recv_timeout(Duration::from_millis(500)) {
            Err(_) => {}
            Ok(ev) => panic!("unsubscribed view still produced {ev:?}"),
        }
        store.shutdown();
    }

    #[test]
    fn commit_log_replay_reproduces_the_graph() {
        let store = temp_store("log", 16, 8, 8);
        let engine = Engine::revised();
        for stmt in [
            "CREATE (:A {id: 1})",
            "CREATE (:B {id: 2})",
            "MATCH (a:A), (b:B) CREATE (a)-[:R]->(b)",
        ] {
            match store.submit_write(stmt.into(), engine.clone()).unwrap() {
                WriteOutcome::Ok(_) => {}
                other => panic!("{other:?}"),
            }
        }
        // A failed statement must not enter the log.
        match store
            .submit_write("MATCH (a:A) DELETE a".into(), engine.clone())
            .unwrap()
        {
            WriteOutcome::Eval(EvalError::DeleteWouldDangle { .. }) => {}
            other => panic!("{other:?}"),
        }
        let log = store.commit_log().unwrap();
        assert_eq!(log.len(), 3);
        let snap = store.snapshot().unwrap();
        let mut replay = cypher_graph::PropertyGraph::new();
        for stmt in &log {
            engine.run(&mut replay, stmt).unwrap();
        }
        assert_eq!(graph_to_cypher(&replay), graph_to_cypher(&snap));
        store.shutdown();
    }

    /// A mid-batch WAL append failure rolls back every pending unit of the
    /// batch, so statements that executed *earlier* in the same batch must
    /// not be acknowledged as `Ok` — their units are gone. Every statement
    /// of the batch reports a storage error and the commit log stays empty.
    /// The worker reopens the store, so the in-memory graph rolls back to
    /// the durable horizon instead of running ahead of it.
    #[test]
    fn midbatch_append_failure_downgrades_earlier_acks() {
        use cypher_storage::{FaultFs, FaultKind, OpKind};
        let dir = std::env::temp_dir().join(format!(
            "cypher-server-store-midbatch-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Write 0 is the WAL header; write 1 is the first statement's
        // commit unit; write 2 (the second statement's unit) fails and
        // rolls the file back to the durable horizon, taking write 1 too.
        let fault = FaultFs::fail_on(OpKind::Write, 2, FaultKind::ShortWrite);
        let durable = DurableGraph::open_with(fault.arc(), &dir).unwrap();
        let mut state = worker_state(durable);
        let engine = Engine::revised();
        let (tx_a, rx_a) = mpsc::sync_channel(1);
        let (tx_b, rx_b) = mpsc::sync_channel(1);
        run_batch(
            &mut state,
            vec![
                BatchItem::Write {
                    text: "CREATE (:A)".to_owned(),
                    engine: engine.clone(),
                    resp: tx_a,
                },
                BatchItem::Write {
                    text: "CREATE (:B)".to_owned(),
                    engine,
                    resp: tx_b,
                },
            ],
        );
        match rx_a.recv().unwrap() {
            WriteOutcome::Storage(_) => {}
            other => panic!("first statement must not be acked after the rollback: {other:?}"),
        }
        match rx_b.recv().unwrap() {
            WriteOutcome::Storage(_) => {}
            other => panic!("{other:?}"),
        }
        assert!(
            state.flush.ship().commit_log.is_empty(),
            "nothing durable, nothing logged"
        );
        assert!(
            state.flush.ship().mirror.is_empty(),
            "nothing durable, nothing shipped"
        );
        // The reopen rolled memory back to the durable horizon: the
        // store's graph is empty again and accepts new writes.
        assert_eq!(state.durable.graph().node_count(), 0);
        assert!(!state.durable.is_sealed());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// FIFO read-your-writes across the two-stage pipeline: after a write
    /// is acknowledged, the writer's next snapshot must contain it. The
    /// flusher bumps the epoch before acking, and a snapshot job drains
    /// the flush stage before publishing, so this holds for every write
    /// even while earlier batches are still in flight.
    #[test]
    fn acked_write_is_visible_to_the_writers_next_read() {
        let store = temp_store("ryw", 32, 4, 16);
        let engine = Engine::revised();
        for i in 0..25u32 {
            match store
                .submit_write(format!("CREATE (:N {{id: {i}}})"), engine.clone())
                .unwrap()
            {
                WriteOutcome::Ok(_) => {}
                other => panic!("{other:?}"),
            }
            let snap = store.snapshot().unwrap();
            assert_eq!(
                snap.node_count(),
                (i + 1) as usize,
                "write {i} was acked but its epoch is not visible"
            );
            assert_eq!(store.commit_seq(), (i + 1) as u64);
        }
        store.shutdown();
    }

    /// Pipelined-commit torture: fail the N-th fsync for every N while a
    /// successor batch is mid-apply on the builder. Scripted against the
    /// stage internals so the interleaving is exact: batch A is staged,
    /// batch B applies one item, A's fsync resolves (possibly faulted), B
    /// applies its second item, then A retires and B stages. Invariants:
    /// a batch whose fsync failed reports storage errors to *its own*
    /// sessions, a successor applied on top of the doomed window is never
    /// falsely acked, and recovery replays exactly the durable horizon.
    #[test]
    fn pipelined_torture_every_fsync_index() {
        use cypher_storage::{recover, FaultFs, FaultKind, OpKind};

        let scenario = |fault: &FaultFs, dir: &std::path::Path| -> Option<Vec<(String, bool)>> {
            // (label, acked-ok) per statement, in submission order.
            let durable = DurableGraph::open_with(fault.arc(), dir).ok()?;
            let mut state = worker_state(durable);
            let ctx = Arc::clone(&state.flush);
            let engine = Engine::revised();
            let w = |label: &str| {
                let (tx, rx) = mpsc::sync_channel(1);
                (
                    BatchItem::Write {
                        text: format!("CREATE (:{label})"),
                        engine: engine.clone(),
                        resp: tx,
                    },
                    rx,
                )
            };
            let (a1, rx_a1) = w("A1");
            let (a2, rx_a2) = w("A2");
            let (b1, rx_b1) = w("B1");
            let (b2, rx_b2) = w("B2");

            // Batch A: apply + stage its WAL window.
            let (acks_a, units_a, _, head_a) = apply_batch(&mut state, vec![a1, a2]);
            let staged_a = match state.durable.stage_flush() {
                Ok(t) => t,
                Err(e) => panic!("appends are not faulted in this sweep: {e}"),
            };
            // Batch B starts applying while A's fsync is in flight...
            let (mut acks_b, mut units_b, _, _) = apply_batch(&mut state, vec![b1]);
            // ...the flusher resolves A's fsync (this is where the fault
            // fires when the sweep index points at A's sync)...
            let outcome_a = run_flush(
                &ctx,
                FlushBatch {
                    ticket: staged_a,
                    acks: acks_a,
                    units: units_a,
                    deltas: Vec::new(),
                    head_seq: head_a,
                },
            );
            // ...and B finishes applying before the builder retires A.
            let (acks_b2, units_b2, _, head_b) = apply_batch(&mut state, vec![b2]);
            acks_b.extend(acks_b2);
            units_b.extend(units_b2);

            if state.durable.complete_flush(outcome_a).is_err() {
                // A's window is gone and B executed on top of it: the
                // builder rolls back and downgrades all of B un-staged.
                recover_after_failed_flush(&mut state);
                for ack in acks_b {
                    send_ack(ack, Some("group commit failed: predecessor fsync failed"));
                }
            } else {
                // A retired; stage and flush B normally (its own fsync
                // may be the faulted one).
                match state.durable.stage_flush() {
                    Ok(ticket) => {
                        let outcome_b = run_flush(
                            &ctx,
                            FlushBatch {
                                ticket,
                                acks: acks_b,
                                units: units_b,
                                deltas: Vec::new(),
                                head_seq: head_b,
                            },
                        );
                        if state.durable.complete_flush(outcome_b).is_err() {
                            recover_after_failed_flush(&mut state);
                        }
                    }
                    Err(e) => {
                        recover_after_failed_flush(&mut state);
                        let msg = format!("group commit failed: {e}");
                        for ack in acks_b {
                            send_ack(ack, Some(&msg));
                        }
                    }
                }
            }

            let mut out = Vec::new();
            for (label, rx) in [("A1", rx_a1), ("A2", rx_a2), ("B1", rx_b1), ("B2", rx_b2)] {
                let ok = match rx.recv().unwrap() {
                    WriteOutcome::Ok(_) => true,
                    WriteOutcome::Storage(_) => false,
                    other => panic!("{label}: unexpected outcome {other:?}"),
                };
                out.push((label.to_owned(), ok));
            }
            Some(out)
        };

        // Counting pass: how many syncs does the healthy run perform?
        let base = std::env::temp_dir().join(format!(
            "cypher-server-store-torture-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let counting = FaultFs::counting();
        let healthy = scenario(&counting, &base).unwrap();
        assert!(
            healthy.iter().all(|(_, ok)| *ok),
            "healthy run acks everything: {healthy:?}"
        );
        let total_syncs = counting.ops_of(OpKind::Sync);
        assert!(total_syncs >= 2, "sweep needs at least two batch fsyncs");

        for n in 0..total_syncs {
            let dir = base.join(format!("sweep-{n}"));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let fault = FaultFs::fail_on(OpKind::Sync, n, FaultKind::SyncFailure);
            let Some(acked) = scenario(&fault, &dir) else {
                // The faulted sync was part of opening the store; nothing
                // was ever acknowledged, nothing to check.
                continue;
            };
            assert!(fault.triggered(), "sweep index {n} never fired");

            // The golden invariant: acked ⟺ durable, for every statement.
            let recovered = recover(&dir).unwrap();
            let rendered = graph_to_cypher(&recovered.graph);
            for (label, ok) in &acked {
                assert_eq!(
                    rendered.contains(&format!(":{label}")),
                    *ok,
                    "sync fault at index {n}: {label} acked={ok} but durable state is {rendered:?}"
                );
            }
            // A fault on A's fsync must not falsely ack B (B rode on the
            // doomed window), and A's own sessions must see the error.
            if !acked[0].1 {
                assert!(
                    acked.iter().all(|(_, ok)| !ok),
                    "batch B falsely acked over a failed predecessor: {acked:?}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    /// End-to-end pipelined failure through the real two-thread store: a
    /// one-shot fsync fault downgrades exactly the writes whose batches
    /// rode the doomed window, later writes succeed again, and the
    /// recovered graph contains precisely the acknowledged statements.
    #[test]
    fn e2e_fsync_fault_acks_match_durable_state() {
        use cypher_storage::{recover, FaultFs, FaultKind, OpKind};
        let dir = std::env::temp_dir().join(format!(
            "cypher-server-store-e2e-fault-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let fault = FaultFs::fail_on(OpKind::Sync, 1, FaultKind::SyncFailure);
        let durable = DurableGraph::open_with(fault.arc(), &dir).unwrap();
        let store = SharedStore::start(durable, 16, 4, 8, Role::Primary);
        let engine = Engine::revised();

        let mut acked = Vec::new();
        let mut storage_errors = 0;
        for i in 0..6u32 {
            let label = format!("E{i}");
            match store
                .submit_write(format!("CREATE (:{label})"), engine.clone())
                .unwrap()
            {
                WriteOutcome::Ok(_) => acked.push((label, true)),
                WriteOutcome::Storage(_) => {
                    storage_errors += 1;
                    acked.push((label, false));
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(fault.triggered());
        assert!(storage_errors >= 1, "the faulted batch must be downgraded");
        // Read-your-writes still holds after recovery: the snapshot shows
        // exactly the acknowledged writes.
        let snap = store.snapshot().unwrap();
        assert_eq!(
            snap.node_count(),
            acked.iter().filter(|(_, ok)| *ok).count()
        );
        store.shutdown();

        let recovered = recover(&dir).unwrap();
        let rendered = graph_to_cypher(&recovered.graph);
        for (label, ok) in &acked {
            assert_eq!(
                rendered.contains(&format!(":{label}")),
                *ok,
                "{label} acked={ok}, durable: {rendered:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The replica path: shipped units apply in sequence; duplicates are
    /// skipped, gaps refused, and the commit sequence tracks the tail.
    #[test]
    fn shipped_units_apply_in_sequence_with_skip_and_gap() {
        let dir = std::env::temp_dir().join(format!(
            "cypher-server-store-replica-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let durable = DurableGraph::open(&dir).unwrap();
        let store = SharedStore::start(
            durable,
            16,
            8,
            8,
            Role::Replica {
                primary: "127.0.0.1:1".into(),
            },
        );
        let unit = |seq: u64, text: &str| ShippedUnit {
            seq,
            dialect: 1,
            text: text.to_owned(),
        };
        assert!(matches!(
            store.replicate(unit(1, "CREATE (:A {id: 1})")).unwrap(),
            ReplicaApply::Applied
        ));
        // A duplicate (reconnect overlap) is skipped, not re-applied.
        assert!(matches!(
            store.replicate(unit(1, "CREATE (:A {id: 1})")).unwrap(),
            ReplicaApply::Skipped
        ));
        // A gap is refused before touching the graph.
        assert!(matches!(
            store.replicate(unit(5, "CREATE (:Z)")).unwrap(),
            ReplicaApply::Gap { expected: 2 }
        ));
        assert!(matches!(
            store.replicate(unit(2, "CREATE (:B {id: 2})")).unwrap(),
            ReplicaApply::Applied
        ));
        assert_eq!(store.commit_seq(), 2);
        assert_eq!(store.stats().primary_seen, 5);
        let snap = store.snapshot().unwrap();
        assert_eq!(snap.node_count(), 2);
        store.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Subscribe hands out a gap-free backlog + live feed: units committed
    /// before the subscribe arrive in the backlog, units after arrive on
    /// the subscription channel, none arrive twice.
    #[test]
    fn subscribe_backlog_and_live_feed_are_gap_free() {
        let store = temp_store("sub", 16, 8, 8);
        let engine = Engine::revised();
        store
            .submit_write("CREATE (:A {id: 1})".into(), engine.clone())
            .unwrap();
        store
            .submit_write("CREATE (:B {id: 2})".into(), engine.clone())
            .unwrap();
        let reply = store.subscribe("test-replica".into(), 0).unwrap().unwrap();
        let SubscribeStart::Backlog(backlog) = reply.start else {
            panic!("fresh store must serve catch-up from the mirror")
        };
        assert_eq!(
            backlog.iter().map(|u| u.seq).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(reply.seq, 2);
        store
            .submit_write("CREATE (:C {id: 3})".into(), engine)
            .unwrap();
        let live = reply.sub.rx.recv().unwrap();
        assert_eq!(live.seq, 3);
        assert_eq!(live.text, "CREATE (:C {id: 3})");
        let stats = store.stats();
        assert_eq!(stats.replicas.len(), 1);
        assert_eq!(stats.replicas[0].label, "test-replica");
        assert_eq!(stats.replicas[0].sent, 3);
        assert_eq!(stats.replicas[0].acked, 0, "no Ack frames were sent");
        store.shutdown();
    }

    /// A subscriber behind the mirror window gets a snapshot bootstrap,
    /// and installing that snapshot on a fresh store reproduces the
    /// primary's graph and sequence position.
    #[test]
    fn snapshot_bootstrap_rebases_a_fresh_replica() {
        let primary = temp_store("boot-p", 16, 8, 8);
        let engine = Engine::revised();
        primary
            .submit_write("CREATE (:A {id: 1})".into(), engine.clone())
            .unwrap();
        primary
            .submit_write("CREATE (:B {id: 2})".into(), engine.clone())
            .unwrap();
        // Checkpoint, then restart the store: the new process's mirror
        // starts at the checkpoint, so a from-zero subscriber is behind it.
        primary.checkpoint().unwrap().unwrap();
        primary
            .submit_write("CREATE (:C {id: 3})".into(), engine.clone())
            .unwrap();
        primary.shutdown();
        let dir =
            std::env::temp_dir().join(format!("cypher-server-store-boot-p-{}", std::process::id()));
        let durable = DurableGraph::open(&dir).unwrap();
        let primary = SharedStore::start(durable, 16, 8, 8, Role::Primary);

        let reply = primary.subscribe("newborn".into(), 0).unwrap().unwrap();
        let SubscribeStart::Snapshot { seq, bytes } = reply.start else {
            panic!("a from-zero subscriber is behind the restarted mirror")
        };
        assert_eq!(seq, 3);

        let replica = temp_store("boot-r", 16, 8, 8);
        assert_eq!(replica.install_snapshot(bytes).unwrap().unwrap(), 3);
        assert_eq!(replica.commit_seq(), 3);
        let p = primary.snapshot().unwrap();
        let r = replica.snapshot().unwrap();
        assert_eq!(graph_to_cypher(&p), graph_to_cypher(&r));
        // The rebased replica tails from seq 4.
        primary
            .submit_write("CREATE (:D {id: 4})".into(), engine)
            .unwrap();
        let live = reply.sub.rx.recv().unwrap();
        assert_eq!(live.seq, 4);
        assert!(matches!(
            replica.replicate(live).unwrap(),
            ReplicaApply::Applied
        ));
        primary.shutdown();
        replica.shutdown();
    }

    /// Fencing flips the role durably: the store refuses writes with the
    /// typed fence error, and a restart comes back fenced no matter what
    /// role the command line asks for.
    #[test]
    fn fence_refuses_writes_and_survives_restart() {
        let store = temp_store("fence", 16, 8, 8);
        let engine = Engine::revised();
        store
            .submit_write("CREATE (:A)".into(), engine.clone())
            .unwrap();
        store
            .fence(Some("10.0.0.9:7878".into()), 7)
            .unwrap()
            .unwrap();
        assert_eq!(store.role().get().as_u8(), 2);
        assert_eq!(store.repl_epoch(), 7);
        match store
            .submit_write("CREATE (:B)".into(), engine.clone())
            .unwrap()
        {
            WriteOutcome::Storage(e) => assert!(e.is_fenced(), "{e}"),
            other => panic!("fenced store must refuse writes: {other:?}"),
        }
        store.shutdown();
        let dir =
            std::env::temp_dir().join(format!("cypher-server-store-fence-{}", std::process::id()));
        let durable = DurableGraph::open(&dir).unwrap();
        // Ask for Primary; the durable fence wins.
        let store = SharedStore::start(durable, 16, 8, 8, Role::Primary);
        let role = store.role().get();
        assert_eq!(role.as_u8(), 2);
        assert_eq!(role.redirect(), Some("10.0.0.9:7878"));
        assert_eq!(
            store.repl_epoch(),
            7,
            "the fence marker's epoch survives restart"
        );
        match store.submit_write("CREATE (:C)".into(), engine).unwrap() {
            WriteOutcome::Storage(e) => assert!(e.is_fenced(), "{e}"),
            other => panic!("restarted zombie must stay fenced: {other:?}"),
        }
        store.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Strict quorum with no replica attached: the write is refused with
    /// the typed quorum outcome, yet it IS locally durable (at-least-once
    /// semantics — the retry must be idempotent).
    #[test]
    fn strict_quorum_times_out_without_replicas() {
        let store = temp_store_quorum(
            "quorum-strict",
            1,
            Duration::from_millis(50),
            SyncPolicy::Strict,
        );
        match store
            .submit_write("CREATE (:A)".into(), Engine::revised())
            .unwrap()
        {
            WriteOutcome::Quorum {
                acked: 0,
                needed: 1,
                ..
            } => {}
            other => panic!("expected a quorum refusal: {other:?}"),
        }
        let stats = store.stats();
        assert_eq!(stats.quorum, QuorumState::TimedOut);
        assert_eq!(
            store.commit_seq(),
            1,
            "a refused write is still locally durable"
        );
        store.shutdown();
    }

    /// The degrade policy acknowledges the write anyway and surfaces the
    /// degradation through `Stats` instead of failing the write path.
    #[test]
    fn degrade_policy_acks_and_reports_degraded() {
        let store = temp_store_quorum(
            "quorum-degrade",
            1,
            Duration::from_millis(50),
            SyncPolicy::Degrade,
        );
        match store
            .submit_write("CREATE (:A)".into(), Engine::revised())
            .unwrap()
        {
            WriteOutcome::Ok(_) => {}
            other => panic!("degrade must acknowledge: {other:?}"),
        }
        assert_eq!(store.stats().quorum, QuorumState::Degraded);
        store.shutdown();
    }

    /// With a subscriber that confirms durability, a strict quorum write
    /// succeeds and the per-replica acked sequence shows up in stats.
    #[test]
    fn strict_quorum_succeeds_when_replica_acks() {
        let store = temp_store_quorum("quorum-ok", 1, Duration::from_secs(10), SyncPolicy::Strict);
        let reply = store.subscribe("r1".into(), 0).unwrap().unwrap();
        let ack = reply.sub.ack.clone();
        let rx = reply.sub.rx;
        let feeder = std::thread::spawn(move || {
            // Play the replica: receive the unit, pretend to fsync it,
            // confirm durability.
            let unit = rx.recv().unwrap();
            ack.note(unit.seq);
            unit.seq
        });
        match store
            .submit_write("CREATE (:A)".into(), Engine::revised())
            .unwrap()
        {
            WriteOutcome::Ok(_) => {}
            other => panic!("quorum of 1 with one acking replica: {other:?}"),
        }
        assert_eq!(feeder.join().unwrap(), 1);
        let stats = store.stats();
        assert_eq!(stats.quorum, QuorumState::InSync);
        assert_eq!(stats.replicas[0].acked, 1);
        store.shutdown();
    }

    #[test]
    fn promote_bumps_the_replication_epoch() {
        let store = temp_store("promote-epoch", 16, 8, 8);
        assert_eq!(store.repl_epoch(), 1);
        store.promote();
        assert_eq!(store.repl_epoch(), 2);
        // An election winner promotes into a specific epoch; stale calls
        // cannot regress it.
        store.promote_with_epoch(9);
        assert_eq!(store.repl_epoch(), 9);
        store.promote_with_epoch(4);
        assert_eq!(store.repl_epoch(), 9);
        store.shutdown();
    }

    #[test]
    fn gate_refuses_over_cap_and_releases() {
        let gate = Arc::new(Gate::new(2));
        let a = gate.try_acquire().unwrap();
        let _b = gate.try_acquire().unwrap();
        assert!(gate.try_acquire().is_none());
        drop(a);
        assert!(gate.try_acquire().is_some());
    }

    #[test]
    fn full_queue_reports_busy() {
        // Queue depth 1 with a worker kept busy is racy to arrange; use the
        // cheaper invariant instead: after shutdown the channel disconnects
        // and submission reports Busy rather than panicking.
        let store = temp_store("busy", 1, 1, 1);
        store.shutdown();
        assert!(store
            .submit_write("CREATE (:A)".into(), Engine::revised())
            .is_err());
        assert!(store.commit_log().is_err());
    }
}
