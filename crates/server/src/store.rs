//! The shared store: one writer, many snapshot readers.
//!
//! All mutation funnels through a single **apply worker** thread that owns
//! the [`DurableGraph`]. Sessions enqueue jobs on a bounded channel; the
//! worker drains up to a batch, runs each write through
//! [`DurableGraph::apply_buffered`] and then **group-commits** the batch
//! with one [`DurableGraph::flush`] (one fsync amortized over the batch).
//! A write is acknowledged to its session only after that flush — the
//! classic durability-before-acknowledge protocol — so a failed batch
//! fsync reports a storage error to *every* statement of the batch, whose
//! commit units were all rolled off the log together.
//!
//! Readers never touch the queue in steady state: the worker bumps an
//! epoch counter after every batch that changed the graph, and sessions
//! read through [`EpochSnapshots`] — at most one `Arc<PropertyGraph>`
//! clone is taken per epoch, at a statement boundary, so a snapshot is
//! always statement-atomic (never a dangling relationship mid-`DELETE`,
//! extending §4.2's guarantee across sessions). When the cached snapshot
//! is stale a session enqueues a [`Job::Snapshot`]; queue FIFO order then
//! guarantees read-your-writes: the snapshot job runs after every write
//! the same session already had acknowledged.
//!
//! The worker also maintains the **commit log** — the texts of
//! successfully committed update statements in apply order — which is the
//! serialization oracle for the differential tests: replaying the log
//! through a single-threaded engine must reproduce the server's graph
//! byte-for-byte.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use cypher_core::{Engine, EvalError, QueryResult};
use cypher_graph::{EpochSnapshots, PropertyGraph};
use cypher_storage::{DurableGraph, StorageError};

/// Outcome of a write submitted to the apply queue.
#[derive(Debug)]
pub enum WriteOutcome {
    /// Executed and durable (the batch's fsync succeeded).
    Ok(QueryResult),
    /// The statement itself failed and rolled back; the store is fine.
    Eval(EvalError),
    /// The durability layer failed; the statement is NOT acknowledged.
    Storage(StorageError),
}

/// A unit of work for the apply worker.
pub enum Job {
    /// Run one update statement. The engine rides along because budgets,
    /// dialect and lint policy are per-session.
    Write {
        text: String,
        engine: Engine,
        resp: SyncSender<WriteOutcome>,
    },
    /// Publish a fresh epoch snapshot (only sent when the cache is stale).
    Snapshot {
        resp: SyncSender<Arc<PropertyGraph>>,
    },
    /// Checkpoint the durable store (snapshot + WAL truncate); also the
    /// reconciliation path for a sealed handle.
    Checkpoint {
        resp: SyncSender<Result<(), StorageError>>,
    },
    /// The committed-statement texts, in commit order.
    CommitLog { resp: SyncSender<Vec<String>> },
    /// Drain, flush and exit.
    Shutdown,
}

/// Global in-flight statement cap (admission control layer one).
///
/// `try_acquire` never blocks: over the cap means the caller sends the
/// retryable `Busy` error instead of queueing unbounded work.
pub struct Gate {
    inflight: AtomicUsize,
    cap: usize,
}

impl Gate {
    pub fn new(cap: usize) -> Gate {
        Gate {
            inflight: AtomicUsize::new(0),
            cap,
        }
    }

    pub fn try_acquire(self: &Arc<Self>) -> Option<GateGuard> {
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= self.cap {
                return None;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(GateGuard {
                        gate: Arc::clone(self),
                    })
                }
                Err(now) => cur = now,
            }
        }
    }

    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }
}

/// RAII release of one in-flight slot.
pub struct GateGuard {
    gate: Arc<Gate>,
}

impl Drop for GateGuard {
    fn drop(&mut self) {
        self.gate.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Handle to the apply worker plus the reader-side snapshot cache.
/// Cloneable across sessions; the worker exits when [`shutdown`]
/// (`SharedStore::shutdown`) runs or every handle is dropped.
pub struct SharedStore {
    tx: SyncSender<Job>,
    snaps: Arc<EpochSnapshots>,
    gate: Arc<Gate>,
    max_batch: usize,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl SharedStore {
    /// Spawn the apply worker over an already-opened durable graph.
    pub fn start(
        durable: DurableGraph,
        queue_depth: usize,
        max_batch: usize,
        max_inflight: usize,
    ) -> Arc<SharedStore> {
        let (tx, rx) = mpsc::sync_channel(queue_depth.max(1));
        let snaps = Arc::new(EpochSnapshots::new());
        let worker_snaps = Arc::clone(&snaps);
        let batch = max_batch.max(1);
        let worker = std::thread::Builder::new()
            .name("cypher-apply".to_owned())
            .spawn(move || apply_worker(durable, rx, worker_snaps, batch))
            .ok();
        Arc::new(SharedStore {
            tx,
            snaps,
            gate: Arc::new(Gate::new(max_inflight.max(1))),
            max_batch: batch,
            worker: Mutex::new(worker),
        })
    }

    pub fn gate(&self) -> &Arc<Gate> {
        &self.gate
    }

    /// Current write epoch (diagnostics; also stamped into `RunOk`).
    pub fn epoch(&self) -> u64 {
        self.snaps.epoch()
    }

    /// A statement-atomic snapshot for a reader. Wait-free when the cache
    /// is current; otherwise one `Snapshot` job goes through the queue
    /// (FIFO ⇒ read-your-writes) and the worker publishes a fresh clone.
    /// `None` means the queue refused (full or worker gone) — the caller
    /// reports `Busy`.
    pub fn snapshot(&self) -> Option<Arc<PropertyGraph>> {
        if let Some(g) = self.snaps.cached() {
            return Some(g);
        }
        let (resp, rx) = mpsc::sync_channel(1);
        self.try_submit(Job::Snapshot { resp }).ok()?;
        rx.recv().ok()
    }

    /// Submit a write statement; blocks until the worker has flushed the
    /// batch containing it. `Err` means the queue refused admission.
    pub fn submit_write(&self, text: String, engine: Engine) -> Result<WriteOutcome, Busy> {
        let (resp, rx) = mpsc::sync_channel(1);
        self.try_submit(Job::Write { text, engine, resp })?;
        rx.recv().map_err(|_| Busy("apply worker exited"))
    }

    /// Checkpoint the durable store (the wire `Commit` frame).
    pub fn checkpoint(&self) -> Result<Result<(), StorageError>, Busy> {
        let (resp, rx) = mpsc::sync_channel(1);
        self.try_submit(Job::Checkpoint { resp })?;
        rx.recv().map_err(|_| Busy("apply worker exited"))
    }

    /// The commit log (differential-test oracle and `CommitLog` frame).
    pub fn commit_log(&self) -> Result<Vec<String>, Busy> {
        let (resp, rx) = mpsc::sync_channel(1);
        self.try_submit(Job::CommitLog { resp })?;
        rx.recv().map_err(|_| Busy("apply worker exited"))
    }

    fn try_submit(&self, job: Job) -> Result<(), Busy> {
        match self.tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(Busy("apply queue full")),
            Err(TrySendError::Disconnected(_)) => Err(Busy("apply worker exited")),
        }
    }

    /// Stop the worker after it drains everything already queued. Blocking
    /// send: shutdown must not be refused by a momentarily full queue.
    pub fn shutdown(&self) {
        let _ = self.tx.send(Job::Shutdown);
        if let Ok(mut guard) = self.worker.lock() {
            if let Some(h) = guard.take() {
                let _ = h.join();
            }
        }
    }

    /// The configured group-commit batch size (diagnostics).
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }
}

/// Admission refused; carries the reason for the `Busy` error message.
#[derive(Debug, Clone, Copy)]
pub struct Busy(pub &'static str);

fn apply_worker(
    mut durable: DurableGraph,
    rx: Receiver<Job>,
    snaps: Arc<EpochSnapshots>,
    max_batch: usize,
) {
    let mut commit_log: Vec<String> = Vec::new();
    loop {
        // Block for the first job, then opportunistically drain more up to
        // the batch bound. Only writes extend a batch: the first non-write
        // job closes it (it must observe the flushed, epoch-bumped state).
        let Ok(first) = rx.recv() else {
            // Every SharedStore handle dropped: flush and exit.
            let _ = durable.flush();
            return;
        };
        let mut writes: Vec<(String, Engine, SyncSender<WriteOutcome>)> = Vec::new();
        let mut tail: Option<Job> = None;
        match first {
            Job::Write { text, engine, resp } => writes.push((text, engine, resp)),
            other => tail = Some(other),
        }
        while tail.is_none() && writes.len() < max_batch {
            match rx.try_recv() {
                Ok(Job::Write { text, engine, resp }) => writes.push((text, engine, resp)),
                Ok(other) => tail = Some(other),
                Err(_) => break,
            }
        }

        if !writes.is_empty() {
            run_write_batch(&mut durable, &snaps, &mut commit_log, writes);
        }

        match tail {
            None => {}
            Some(Job::Snapshot { resp }) => {
                let _ = resp.send(snaps.publish(durable.graph()));
            }
            Some(Job::Checkpoint { resp }) => {
                let _ = resp.send(durable.checkpoint());
            }
            Some(Job::CommitLog { resp }) => {
                let _ = resp.send(commit_log.clone());
            }
            Some(Job::Shutdown) => {
                let _ = durable.flush();
                return;
            }
            Some(Job::Write { .. }) => unreachable!("writes never land in tail"),
        }
    }
}

/// Execute a batch of update statements under one group commit.
///
/// Each statement runs through `apply_buffered`; its commit unit joins the
/// un-synced WAL window. One `flush` then makes the whole batch durable —
/// only after that are the per-statement outcomes acknowledged. If the
/// flush fails — including the mid-batch-append case, where the WAL
/// rollback already discarded every pending unit and sealed the handle so
/// `flush` reports `Sealed` — every statement of the batch (even ones
/// that executed cleanly before the failure) reports the storage error:
/// none of them was ever acknowledged, so none of them is lost *silently*.
fn run_write_batch(
    durable: &mut DurableGraph,
    snaps: &EpochSnapshots,
    commit_log: &mut Vec<String>,
    writes: Vec<(String, Engine, SyncSender<WriteOutcome>)>,
) {
    let mut outcomes: Vec<(SyncSender<WriteOutcome>, WriteOutcome)> = Vec::new();
    let mut batch_updates = false;
    let mut batch_log: Vec<String> = Vec::new();
    let mut flush_err: Option<StorageError> = None;

    for (text, engine, resp) in writes {
        let applied = durable.apply_buffered(|g| engine.run(g, &text));
        match applied {
            Ok(Ok(result)) => {
                if result.stats.contains_updates() {
                    batch_updates = true;
                    batch_log.push(text);
                }
                outcomes.push((resp, WriteOutcome::Ok(result)));
            }
            Ok(Err(e)) => outcomes.push((resp, WriteOutcome::Eval(e))),
            Err(e) => {
                // Append failure seals the handle; later statements of the
                // batch see Sealed from their own apply_buffered, and the
                // batch flush below reports Sealed too, downgrading every
                // earlier Ok (their units were rolled off the log).
                outcomes.push((resp, WriteOutcome::Storage(e)));
            }
        }
    }

    if let Err(e) = durable.flush() {
        flush_err = Some(e);
    }

    match flush_err {
        None => {
            if batch_updates {
                // New statement-boundary state: invalidate reader caches.
                snaps.bump();
                commit_log.extend(batch_log);
            }
            for (resp, outcome) in outcomes {
                let _ = resp.send(outcome);
            }
        }
        Some(e) => {
            // The WAL rolled back to the durable horizon: nothing in this
            // batch is durable, nothing is acknowledged as committed.
            // Memory is ahead of the log until a checkpoint reconciles;
            // readers may still observe the batch's effects, which is the
            // documented sealed-state semantic (same as the embedded
            // DurableGraph). The epoch still bumps so no reader keeps a
            // pre-batch cache while the in-memory graph moved on.
            if batch_updates {
                snaps.bump();
            }
            for (resp, outcome) in outcomes {
                let downgraded = match outcome {
                    WriteOutcome::Ok(_) => WriteOutcome::Storage(StorageError::Io(
                        std::io::Error::other(format!("group commit failed: {e}")),
                    )),
                    other => other,
                };
                let _ = resp.send(downgraded);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_core::graph_to_cypher;

    fn temp_store(name: &str, queue: usize, batch: usize, inflight: usize) -> Arc<SharedStore> {
        let dir =
            std::env::temp_dir().join(format!("cypher-server-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let durable = DurableGraph::open(&dir).unwrap();
        SharedStore::start(durable, queue, batch, inflight)
    }

    #[test]
    fn writes_commit_and_readers_see_them() {
        let store = temp_store("rw", 16, 8, 8);
        let engine = Engine::revised();
        match store
            .submit_write("CREATE (:A {id: 1})".into(), engine.clone())
            .unwrap()
        {
            WriteOutcome::Ok(res) => assert_eq!(res.stats.nodes_created, 1),
            other => panic!("{other:?}"),
        }
        let snap = store.snapshot().unwrap();
        assert_eq!(snap.node_count(), 1);
        // Same epoch: second snapshot is the cached Arc, not a new clone.
        let again = store.snapshot().unwrap();
        assert!(Arc::ptr_eq(&snap, &again));
        store.shutdown();
    }

    #[test]
    fn commit_log_replay_reproduces_the_graph() {
        let store = temp_store("log", 16, 8, 8);
        let engine = Engine::revised();
        for stmt in [
            "CREATE (:A {id: 1})",
            "CREATE (:B {id: 2})",
            "MATCH (a:A), (b:B) CREATE (a)-[:R]->(b)",
        ] {
            match store.submit_write(stmt.into(), engine.clone()).unwrap() {
                WriteOutcome::Ok(_) => {}
                other => panic!("{other:?}"),
            }
        }
        // A failed statement must not enter the log.
        match store
            .submit_write("MATCH (a:A) DELETE a".into(), engine.clone())
            .unwrap()
        {
            WriteOutcome::Eval(EvalError::DeleteWouldDangle { .. }) => {}
            other => panic!("{other:?}"),
        }
        let log = store.commit_log().unwrap();
        assert_eq!(log.len(), 3);
        let snap = store.snapshot().unwrap();
        let mut replay = cypher_graph::PropertyGraph::new();
        for stmt in &log {
            engine.run(&mut replay, stmt).unwrap();
        }
        assert_eq!(graph_to_cypher(&replay), graph_to_cypher(&snap));
        store.shutdown();
    }

    /// A mid-batch WAL append failure rolls back every pending unit of the
    /// batch, so statements that executed *earlier* in the same batch must
    /// not be acknowledged as `Ok` — their units are gone. Every statement
    /// of the batch reports a storage error and the commit log stays empty.
    #[test]
    fn midbatch_append_failure_downgrades_earlier_acks() {
        use cypher_storage::{FaultFs, FaultKind, OpKind};
        let dir = std::env::temp_dir().join(format!(
            "cypher-server-store-midbatch-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Write 0 is the WAL header; write 1 is the first statement's
        // commit unit; write 2 (the second statement's unit) fails and
        // rolls the file back to the durable horizon, taking write 1 too.
        let fault = FaultFs::fail_on(OpKind::Write, 2, FaultKind::ShortWrite);
        let mut durable = DurableGraph::open_with(fault.arc(), &dir).unwrap();
        let snaps = EpochSnapshots::new();
        let mut commit_log = Vec::new();
        let engine = Engine::revised();
        let (tx_a, rx_a) = mpsc::sync_channel(1);
        let (tx_b, rx_b) = mpsc::sync_channel(1);
        run_write_batch(
            &mut durable,
            &snaps,
            &mut commit_log,
            vec![
                ("CREATE (:A)".to_owned(), engine.clone(), tx_a),
                ("CREATE (:B)".to_owned(), engine, tx_b),
            ],
        );
        match rx_a.recv().unwrap() {
            WriteOutcome::Storage(_) => {}
            other => panic!("first statement must not be acked after the rollback: {other:?}"),
        }
        match rx_b.recv().unwrap() {
            WriteOutcome::Storage(_) => {}
            other => panic!("{other:?}"),
        }
        assert!(commit_log.is_empty(), "nothing durable, nothing logged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gate_refuses_over_cap_and_releases() {
        let gate = Arc::new(Gate::new(2));
        let a = gate.try_acquire().unwrap();
        let _b = gate.try_acquire().unwrap();
        assert!(gate.try_acquire().is_none());
        drop(a);
        assert!(gate.try_acquire().is_some());
    }

    #[test]
    fn full_queue_reports_busy() {
        // Queue depth 1 with a worker kept busy is racy to arrange; use the
        // cheaper invariant instead: after shutdown the channel disconnects
        // and submission reports Busy rather than panicking.
        let store = temp_store("busy", 1, 1, 1);
        store.shutdown();
        assert!(store
            .submit_write("CREATE (:A)".into(), Engine::revised())
            .is_err());
        assert!(store.commit_log().is_err());
    }
}
