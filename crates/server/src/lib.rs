//! Multi-session network front end for the Cypher engine.
//!
//! The paper defines one statement as the unit of atomicity (§4.2, §8); a
//! server must extend that guarantee *across sessions*: no client may ever
//! observe another client's statement half-applied — in particular, never a
//! dangling relationship mid-`DELETE`. This crate does so with a strict
//! single-writer design:
//!
//! * [`wire`] — the length-prefixed, CRC-framed binary protocol: a
//!   versioned handshake, `Run`/`Pull` statement execution, admin frames
//!   for checkpointing and introspection, and a typed error frame carrying
//!   the engine's [`EvalError`](cypher_core::EvalError) /
//!   [`StorageError`](cypher_storage::StorageError) taxonomy.
//! * [`error`] — the wire-level error codes and the mapping from engine
//!   and storage errors onto them (including which are retryable).
//! * [`store`] — [`SharedStore`]: all writers serialize through one apply
//!   queue owned by a single worker thread holding the
//!   [`DurableGraph`](cypher_storage::DurableGraph). The worker batches
//!   queued statements and **group-commits** them with one fsync
//!   (`apply_buffered` + `flush`), acknowledging only after the flush.
//!   Readers never enter the queue when the epoch is unchanged: they run
//!   against cheap [`EpochSnapshots`](cypher_graph::EpochSnapshots) —
//!   `Arc` clones taken at statement boundaries — so a reader never blocks
//!   a writer and always sees a statement-atomic graph.
//! * [`session`] — one blocking session loop per connection: handshake,
//!   statement classification (read statements go to snapshots, updates to
//!   the queue), result streaming, per-session
//!   [`ExecLimits`](cypher_core::ExecLimits) budgets.
//! * [`server`] — the TCP listener/accept loop and clean shutdown.
//! * [`replica`] — the replica-side tailer thread: subscribes to a
//!   primary's commit-log stream, applies shipped units through the same
//!   apply queue, sends durable `Ack` frames back up the stream (the raw
//!   material of `--sync-replicas` quorum), and reconnects/catches up
//!   after any fault.
//! * [`failover`] — the lease monitor: when the primary goes silent past
//!   the configured TTL, runs a deterministic election over the peer set,
//!   promotes the winner into a fresh epoch and durably fences the old
//!   primary.
//! * [`net`] — the outbound transport abstraction ([`NetFabric`]): real
//!   TCP in production, [`FaultNet`] in tests to inject drops, delays,
//!   duplicated frames and partitions at a deterministic operation index.
//! * [`client`] — a blocking client library used by the `cypher-client`
//!   binary, the integration tests and the load generator. Its
//!   `run_routed` follows typed `NotPrimary` redirects after a failover.
//!
//! Admission control is two-layered: a global in-flight statement cap
//! (try-acquire; over cap → the retryable `Busy` error) and a bounded
//! apply queue (full → `Busy` as well). Backpressure is therefore always a
//! *typed, retryable* refusal, never an unbounded stall.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod config;
pub mod error;
pub mod failover;
pub mod net;
pub mod replica;
pub mod server;
pub mod session;
pub mod store;
pub mod wire;

pub use client::{
    Client, ClientError, HelloOptions, RunOutcome, StatsOutcome, ViewDeltaBatch, ViewSubscribed,
};
pub use config::ServerConfig;
pub use error::ErrorCode;
pub use net::{FaultNet, NetFabric, NetFault, NetStream, RealNet};
pub use server::{serve, serve_with, ServerHandle};
pub use store::{
    ReplicaApply, SharedStore, StoreOptions, StoreStats, ViewEvent, ViewSubscription, WriteOutcome,
};
