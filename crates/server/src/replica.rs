//! The replica-side tailer: subscribe, catch up, apply, acknowledge.
//!
//! One background thread per replica server. It dials the primary (every
//! cycle re-reads the address from the role cell, so a failover repoint
//! takes effect on the next reconnect), does the normal protocol
//! handshake, then sends `Subscribe` with its own durable commit sequence
//! — the primary answers with either the backlog of missed units or a
//! full snapshot bootstrap, followed by the live stream. Every unit goes
//! through the same single-writer apply queue as client writes would, so
//! replica reads keep the exact statement-boundary atomicity guarantees
//! of the primary.
//!
//! After each unit's apply returns — which only happens once the unit's
//! group commit has **fsynced here** — the tailer sends a durable
//! `Ack(seq, epoch)` back up the same stream. Those acks are what the
//! primary's `--sync-replicas` quorum gate counts; the epoch stamp keeps
//! a stale reign's confirmations from ever satisfying a new primary.
//!
//! Every frame received also renews the primary-liveness [`Lease`]: the
//! feeder's 100 ms `SubscribeOk` keepalive doubles as the failover
//! heartbeat, and a lease that expires (primary dead or partitioned) is
//! what triggers the election in [`failover`](crate::failover).
//!
//! The tailer is deliberately dumb about failures: **any** trouble — a
//! killed stream, a truncated frame, a sequence gap, a storage hiccup —
//! tears the connection down and reconnects from the replica's durable
//! position after a short backoff. Catch-up is idempotent (duplicates are
//! skipped by sequence), so reconnecting is always safe. The only fatal
//! outcome is divergence: a unit that does not reproduce the primary's
//! effect stops the tail for good rather than serving wrong answers that
//! look fresh.

use std::io::{BufReader, BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cypher_replication::{Lease, Role, ShippedUnit};

use crate::net::NetFabric;
use crate::store::{ReplicaApply, SharedStore};
use crate::wire::{read_frame, write_frame, Request, Response, PROTOCOL_VERSION};

/// Dead-stream detector: the primary's feeder sends a keepalive every
/// 100 ms, so a healthy stream never goes this long without a frame. When
/// it does, the connection is abandoned (never resumed mid-frame — a
/// timeout could have split a frame) and re-established.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Backoff between reconnect attempts.
const RETRY_DELAY: Duration = Duration::from_millis(200);

/// Bound on dialing the primary; a partitioned peer must not hang the
/// tail loop past the lease.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Spawn the tailer thread. It exits when `stop` flips, when the role
/// leaves `Replica` (promotion), or on divergence. `lease` is renewed on
/// every frame received from the primary — the failover monitor watches
/// it expire.
pub fn spawn_tailer(
    store: Arc<SharedStore>,
    fabric: Arc<dyn NetFabric>,
    lease: Arc<Lease>,
    stop: Arc<AtomicBool>,
) -> Option<JoinHandle<()>> {
    std::thread::Builder::new()
        .name("cypher-tail".to_owned())
        .spawn(move || tail_loop(&store, &fabric, &lease, &stop))
        .ok()
}

fn should_run(store: &SharedStore, stop: &AtomicBool) -> bool {
    !stop.load(Ordering::Acquire) && matches!(store.role().get(), Role::Replica { .. })
}

fn tail_loop(
    store: &Arc<SharedStore>,
    fabric: &Arc<dyn NetFabric>,
    lease: &Arc<Lease>,
    stop: &Arc<AtomicBool>,
) {
    loop {
        // Re-read the primary address every cycle: a failover repoint
        // (role cell rewritten by the monitor) takes effect here.
        let Role::Replica { primary } = store.role().get() else {
            return;
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        match tail_once(store, fabric, lease, &primary, stop) {
            TailEnd::Retry(reason) => {
                if should_run(store, stop) {
                    eprintln!("cypher-tail: stream to {primary} ended ({reason}); reconnecting");
                    std::thread::sleep(RETRY_DELAY);
                }
            }
            TailEnd::Stop(reason) => {
                eprintln!("cypher-tail: stopping: {reason}");
                return;
            }
        }
    }
}

enum TailEnd {
    /// Transient: reconnect and catch up from the durable position.
    Retry(String),
    /// Terminal: shutdown, promotion, or divergence.
    Stop(String),
}

/// One connect-subscribe-apply cycle; returns why the stream ended.
fn tail_once(
    store: &Arc<SharedStore>,
    fabric: &Arc<dyn NetFabric>,
    lease: &Arc<Lease>,
    primary: &str,
    stop: &Arc<AtomicBool>,
) -> TailEnd {
    let stream = match fabric.connect(primary, Some(CONNECT_TIMEOUT)) {
        Ok(s) => s,
        Err(e) => return TailEnd::Retry(format!("connect: {e}")),
    };
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return TailEnd::Retry("set_read_timeout failed".to_owned());
    }
    let Ok(read_half) = stream.try_clone_stream() else {
        return TailEnd::Retry("stream clone failed".to_owned());
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    // Handshake with server defaults; the tailer never runs statements
    // through the session path, so budgets are irrelevant.
    let hello = Request::Hello {
        version: PROTOCOL_VERSION,
        dialect: 0xFF,
        lint: 0xFF,
        max_rows: u64::MAX,
        max_writes: u64::MAX,
        timeout_ms: u64::MAX,
    };
    if write_frame(&mut writer, &hello.encode()).is_err() {
        return TailEnd::Retry("handshake send failed".to_owned());
    }
    match read_response(&mut reader) {
        Ok(Response::HelloOk { .. }) => {}
        Ok(other) => return TailEnd::Retry(format!("handshake: unexpected {other:?}")),
        Err(e) => return TailEnd::Retry(format!("handshake: {e}")),
    }

    let from = store.commit_seq();
    let subscribe = Request::Subscribe { from };
    if write_frame(&mut writer, &subscribe.encode()).is_err() {
        return TailEnd::Retry("subscribe send failed".to_owned());
    }

    loop {
        if !should_run(store, stop) {
            return TailEnd::Stop("shutdown or role change".to_owned());
        }
        let frame = match read_response(&mut reader) {
            Ok(f) => f,
            Err(e) => return TailEnd::Retry(e),
        };
        // Every frame is proof of primary liveness — including the error
        // frames it sends while refusing us, which still mean it's there.
        lease.renew();
        match frame {
            Response::SubscribeOk { seq, epoch } => {
                // Initial ack and periodic keepalive/lag beacon; also the
                // epoch channel (so our acks are stamped with the reign
                // they confirm).
                store.note_primary_seen(seq);
                store.note_primary_epoch(epoch);
            }
            Response::Snapshot { seq, bytes } => {
                // Bootstrap: our position predates the primary's retained
                // window. Replace everything with the shipped snapshot.
                match store.install_snapshot(bytes) {
                    Ok(Ok(covered)) => {
                        eprintln!("cypher-tail: installed bootstrap snapshot at seq {covered}");
                        debug_assert_eq!(covered, seq);
                        if let Err(e) = send_ack(&mut writer, store, covered) {
                            return TailEnd::Retry(e);
                        }
                    }
                    Ok(Err(e)) => return TailEnd::Retry(format!("snapshot install: {e}")),
                    Err(b) => return TailEnd::Retry(format!("snapshot install refused: {}", b.0)),
                }
            }
            Response::Unit { seq, dialect, text } => {
                let unit = ShippedUnit { seq, dialect, text };
                match store.replicate(unit) {
                    Ok(ReplicaApply::Applied) | Ok(ReplicaApply::Skipped) => {
                        // replicate() returns only after the unit's group
                        // commit fsynced here (or, for Skipped, after an
                        // earlier one did) — so this Ack is a *durable*
                        // confirmation, exactly what quorum counts.
                        if let Err(e) = send_ack(&mut writer, store, store.commit_seq()) {
                            return TailEnd::Retry(e);
                        }
                    }
                    Ok(ReplicaApply::Gap { expected }) => {
                        return TailEnd::Retry(format!(
                            "sequence gap: got {seq}, expected {expected}"
                        ))
                    }
                    Ok(ReplicaApply::Diverged(why)) => {
                        return TailEnd::Stop(format!(
                            "DIVERGED from primary: {why}; refusing to serve unverifiable state \
                             (wipe the data directory and re-bootstrap to rejoin)"
                        ))
                    }
                    Ok(ReplicaApply::Storage(e)) => {
                        return TailEnd::Retry(format!("apply failed: {e}"))
                    }
                    Err(b) => return TailEnd::Retry(format!("apply refused: {}", b.0)),
                }
            }
            Response::Error { code, message, .. } => {
                // A fenced ex-primary refuses Subscribe with NotPrimary;
                // anything else is equally non-actionable here. Keep
                // retrying — the operator repoints or promotes us.
                return TailEnd::Retry(format!("primary refused: [{code}] {message}"));
            }
            other => return TailEnd::Retry(format!("unexpected frame: {other:?}")),
        }
    }
}

/// Send one durable `Ack` up the subscribe stream, stamped with the
/// epoch we believe the primary reigns in.
fn send_ack(w: &mut impl Write, store: &SharedStore, seq: u64) -> Result<(), String> {
    let ack = Request::Ack {
        seq,
        epoch: store.repl_epoch(),
    };
    write_frame(w, &ack.encode()).map_err(|e| format!("ack send failed: {e}"))
}

/// Read and decode one response frame; errors render as strings because
/// every failure (timeout included) has the same consequence — drop the
/// connection and reconnect.
fn read_response(r: &mut impl std::io::Read) -> Result<Response, String> {
    let payload = read_frame(r).map_err(|e| e.to_string())?;
    Response::decode(&payload).map_err(|e| e.to_string())
}
