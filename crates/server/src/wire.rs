//! The binary wire protocol.
//!
//! Every message travels in one **frame**:
//!
//! ```text
//! [u32 payload length][u32 CRC-32 of payload][payload bytes]
//! ```
//!
//! All integers are little-endian. The CRC is the same IEEE polynomial the
//! storage layer uses for WAL records, so a corrupted or torn frame is
//! detected before any field is parsed. Payloads start with a one-byte
//! message tag (client tags `0x01..=0x10`, server tags `0x81..=0x91`)
//! followed by tag-specific fields.
//!
//! | tag    | message     | direction | fields |
//! |--------|-------------|-----------|--------|
//! | `0x01` | Hello       | C→S | `u16` protocol version, `u8` dialect, `u8` lint mode, 3×`u64` budgets (`u64::MAX` = server value; others clamped to the server's ceilings) |
//! | `0x02` | Run         | C→S | statement text |
//! | `0x03` | Pull        | C→S | `u32` max rows |
//! | `0x04` | Commit      | C→S | — (checkpoint the durable store) |
//! | `0x05` | Reset       | C→S | — (discard any pending result) |
//! | `0x06` | Goodbye     | C→S | — |
//! | `0x07` | Shutdown    | C→S | — (admin; refused unless enabled) |
//! | `0x08` | DumpGraph   | C→S | — (canonical `CREATE` script of the graph) |
//! | `0x09` | CommitLog   | C→S | — (committed statements, in commit order) |
//! | `0x0A` | Subscribe   | C→S | `u64` from-sequence (replica tailer; terminal — the session becomes a unit stream) |
//! | `0x0B` | Promote     | C→S | — (admin; replica → primary failover) |
//! | `0x0C` | Stats       | C→S | — (role, epoch, sequence, queue depth, per-replica lag) |
//! | `0x0D` | Fence       | C→S | new-primary address, `u64` epoch (admin; permanently write-fence this server) |
//! | `0x0E` | Ack         | C→S | 2×`u64` (durably applied sequence, replica's view of the primary epoch) — sent by a replica tailer on its subscribe stream |
//! | `0x0F` | SubscribeQuery | C→S | query text (register a live view; terminal — the session becomes a delta stream) |
//! | `0x10` | UnsubscribeQuery | C→S | `u64` view id — sent on the delta stream to end it cleanly |
//! | `0x81` | HelloOk     | S→C | `u16` version, `u64` session id, effective-limits string |
//! | `0x82` | RunOk       | S→C | `u8` read-only flag, `u64` epoch, column names |
//! | `0x83` | Rows        | S→C | row block, `u8` has-more flag, 7×`u64` update stats (nodes created, rels created, nodes deleted, rels deleted, props set, labels added, labels removed) |
//! | `0x84` | CommitOk    | S→C | — |
//! | `0x85` | ResetOk     | S→C | — |
//! | `0x86` | Bye         | S→C | — (also acknowledges Shutdown) |
//! | `0x87` | DumpOk      | S→C | script text |
//! | `0x88` | LogOk       | S→C | statement list |
//! | `0x89` | Unit        | S→C | `u64` sequence, `u8` dialect, statement text (one shipped commit unit) |
//! | `0x8A` | Snapshot    | S→C | `u64` sequence, snapshot-file bytes (replica bootstrap) |
//! | `0x8B` | SubscribeOk | S→C | 2×`u64` (current commit sequence, primary epoch) — re-sent periodically as the keepalive/heartbeat |
//! | `0x8C` | StatsOk     | S→C | `u8` role, redirect addr, 4×`u64` (epoch, commit seq, queue depth, primary-seen seq), `u64` replication epoch, `u8` quorum state, `u64` overflow drops, per-replica (addr, sent-seq, acked-seq) list, per-view (id, query, flags, rows, deltas, fallbacks) list |
//! | `0x8D` | PromoteOk   | S→C | `u64` sequence the new primary starts from |
//! | `0x8E` | FenceOk     | S→C | — |
//! | `0x8F` | Error       | S→C | `u16` code, `u8` retryable, message, detail |
//! | `0x90` | SubscribeQueryOk | S→C | `u64` view id, `u64` epoch, `u8` fallback flag, column names — the initial rows follow as the first `ViewDelta` |
//! | `0x91` | ViewDelta   | S→C | 3×`u64` (view id, statement sequence, epoch), add then remove row bags (row, `u64` multiplicity); an empty batch is the idle keepalive |
//!
//! Values use a tagged encoding covering the full
//! [`Value`](cypher_graph::Value) enum; nodes, relationships and paths
//! travel as their numeric ids (the graph vocabulary is server-side).

use std::io::{self, Read, Write};

use cypher_graph::{PathValue, Value};
use cypher_ivm::ViewStat;
use cypher_storage::crc::crc32;

use crate::error::ErrorCode;

/// Protocol version spoken by this build. A client whose `Hello` carries a
/// different version is refused with [`ErrorCode::Version`].
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a frame payload; anything larger is a protocol error
/// (protects the peer from a corrupted length prefix).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Hello {
        version: u16,
        /// 0 = legacy Cypher 9, 1 = revised (§7).
        dialect: u8,
        /// 0 = off, 1 = warn, 2 = deny.
        lint: u8,
        /// Session budgets; `u64::MAX` means "use the server value".
        /// Anything else is clamped to the server-configured budget (the
        /// operator's flags are ceilings, not defaults) — the `HelloOk`
        /// reports the effective limits.
        max_rows: u64,
        max_writes: u64,
        timeout_ms: u64,
    },
    Run {
        text: String,
    },
    Pull {
        max: u32,
    },
    Commit,
    Reset,
    Goodbye,
    Shutdown,
    DumpGraph,
    CommitLog,
    /// Replica tailer handshake: stream committed units with sequence
    /// numbers greater than `from`. Terminal — after `SubscribeOk` the
    /// session speaks only `Snapshot`/`Unit`/`SubscribeOk` frames until the
    /// connection closes.
    Subscribe {
        from: u64,
    },
    /// Admin (gated): turn this replica into a primary.
    Promote,
    /// Observability: role, epoch, commit sequence, queue depth, lag.
    Stats,
    /// Admin (gated): permanently write-fence this server. `new_primary`
    /// (may be empty) and `epoch` (the election epoch the fencer rules in;
    /// 0 = unknown) are recorded in the durable fence marker.
    Fence {
        new_primary: String,
        epoch: u64,
    },
    /// Replica → primary on the subscribe stream: everything up to and
    /// including `seq` is fsynced on the replica. `epoch` is the replica's
    /// view of the primary epoch — a quorum-counting primary ignores acks
    /// from a different epoch.
    Ack {
        seq: u64,
        epoch: u64,
    },
    /// Register a live view over `text` in the session's dialect and lint
    /// mode. Terminal — after `SubscribeQueryOk` the session speaks only
    /// `ViewDelta` frames until the client sends `UnsubscribeQuery` or
    /// `Goodbye` (or drops the connection).
    SubscribeQuery {
        text: String,
    },
    /// Sent on the delta stream: tear down view `view` and end the stream
    /// with a clean `Bye`.
    UnsubscribeQuery {
        view: u64,
    },
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    HelloOk {
        version: u16,
        session: u64,
        /// The session's effective budgets, rendered by
        /// `ExecLimits`'s `Display` (same string the shell's `:limits`
        /// prints).
        limits: String,
    },
    RunOk {
        read_only: bool,
        /// Snapshot epoch the statement observed (diagnostics).
        epoch: u64,
        columns: Vec<String>,
    },
    Rows {
        rows: Vec<Vec<Value>>,
        has_more: bool,
        /// nodes created, rels created, nodes deleted, rels deleted,
        /// props set, labels added, labels removed — zero until the
        /// final block.
        stats: [u64; 7],
    },
    CommitOk,
    ResetOk,
    Bye,
    DumpOk {
        script: String,
    },
    LogOk {
        statements: Vec<String>,
    },
    /// One shipped commit unit (replication stream).
    Unit {
        seq: u64,
        dialect: u8,
        text: String,
    },
    /// Replica bootstrap payload: complete snapshot-file bytes covering
    /// every unit up to and including `seq`; tailing resumes after it.
    Snapshot {
        seq: u64,
        bytes: Vec<u8>,
    },
    /// Subscribe accepted; `seq` is the primary's current commit sequence
    /// and `epoch` its replication epoch. Re-sent periodically on an idle
    /// stream as a keepalive, so a replica can measure lag — and renew its
    /// liveness lease on the primary — even when no units flow.
    SubscribeOk {
        seq: u64,
        epoch: u64,
    },
    StatsOk {
        /// 0 = primary, 1 = replica, 2 = fenced.
        role: u8,
        /// Where writes should go instead (replica/fenced); empty on a
        /// primary.
        redirect: String,
        epoch: u64,
        /// Highest committed (durable) sequence number.
        commit_seq: u64,
        /// Apply-queue depth (jobs submitted but not yet finished).
        queue_len: u64,
        /// Replica only: the primary's commit sequence as last observed on
        /// the tail stream — `primary_seen - commit_seq` is applied lag.
        primary_seen: u64,
        /// The replication epoch this server rules (primary) or last
        /// observed from its primary (replica); on a fenced server, the
        /// epoch it was fenced in.
        repl_epoch: u64,
        /// Quorum state: 0 async, 1 in-sync, 2 degraded, 3 timed-out.
        quorum: u8,
        /// Cumulative subscribers dropped for feed-backlog overflow.
        overflow_drops: u64,
        /// Primary only: per-subscriber (address, highest sequence
        /// enqueued, highest sequence durably acknowledged) —
        /// `commit_seq - sent` is ship lag, `commit_seq - acked` is
        /// durability lag.
        replicas: Vec<(String, u64, u64)>,
        /// Registered live views and their maintenance counters.
        views: Vec<ViewStat>,
    },
    PromoteOk {
        /// Commit sequence the promoted primary starts accepting writes at.
        seq: u64,
    },
    FenceOk,
    Error {
        code: ErrorCode,
        retryable: bool,
        message: String,
        /// Structured payload for some codes (JSON-lines diagnostics for
        /// `Lint`); empty otherwise.
        detail: String,
    },
    /// Live-view registration accepted. The view's current rows arrive as
    /// the first `ViewDelta` (all adds), so the client replay starts from
    /// the registration snapshot.
    SubscribeQueryOk {
        view: u64,
        /// Snapshot epoch the registration observed.
        epoch: u64,
        /// `true` when the query re-evaluates in full at every commit
        /// instead of being incrementally maintained.
        fallback: bool,
        columns: Vec<String>,
    },
    /// One ordered delta batch for a registered view: rows to add and rows
    /// to retract, each with a multiplicity. An empty batch (no adds, no
    /// removes) is the idle keepalive.
    ViewDelta {
        view: u64,
        /// Commit sequence of the statement that produced the batch; 0 for
        /// the initial-snapshot batch and keepalives.
        seq: u64,
        epoch: u64,
        adds: Vec<(Vec<Value>, u64)>,
        removes: Vec<(Vec<Value>, u64)>,
    },
}

/// Why a frame or payload failed to decode.
#[derive(Debug)]
pub enum WireError {
    Io(io::Error),
    /// CRC mismatch, truncated payload, unknown tag, bad UTF-8, oversize
    /// frame: the connection is beyond recovery and should close.
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    fn protocol(msg: impl Into<String>) -> WireError {
        WireError::Protocol(msg.into())
    }

    /// Did the peer just close the socket cleanly (EOF before any byte of
    /// a frame)? Sessions treat this as a silent Goodbye.
    pub fn is_clean_eof(&self) -> bool {
        matches!(self, WireError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof)
    }
}

pub type WireResult<T> = std::result::Result<T, WireError>;

/// Write one frame: length, CRC, payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> WireResult<()> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(WireError::protocol(format!(
            "outgoing frame of {} bytes exceeds MAX_FRAME",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame, verifying length bound and CRC.
pub fn read_frame(r: &mut impl Read) -> WireResult<Vec<u8>> {
    let mut head = [0u8; 8];
    r.read_exact(&mut head)?;
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
    let crc = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if len > MAX_FRAME {
        return Err(WireError::protocol(format!(
            "frame length {len} exceeds MAX_FRAME ({MAX_FRAME})"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(WireError::protocol("frame CRC mismatch"));
    }
    Ok(payload)
}

// ---------------------------------------------------------------- encoding

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_str_list(out: &mut Vec<u8>, items: &[String]) {
    put_u32(out, items.len() as u32);
    for s in items {
        put_str(out, s);
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// View-delta row bags travel as (row, `u64` multiplicity) pairs.
fn put_row_bag(out: &mut Vec<u8>, bag: &[(Vec<Value>, u64)]) {
    put_u32(out, bag.len() as u32);
    for (row, n) in bag {
        put_u32(out, row.len() as u32);
        for v in row {
            put_value(out, v);
        }
        put_u64(out, *n);
    }
}

/// Value tags (`0x00..=0x09`).
fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(out, 0x00),
        Value::Bool(b) => {
            put_u8(out, 0x01);
            put_u8(out, u8::from(*b));
        }
        Value::Int(i) => {
            put_u8(out, 0x02);
            put_u64(out, *i as u64);
        }
        Value::Float(x) => {
            put_u8(out, 0x03);
            put_u64(out, x.to_bits());
        }
        Value::Str(s) => {
            put_u8(out, 0x04);
            put_str(out, s);
        }
        Value::List(items) => {
            put_u8(out, 0x05);
            put_u32(out, items.len() as u32);
            for item in items {
                put_value(out, item);
            }
        }
        Value::Map(entries) => {
            put_u8(out, 0x06);
            put_u32(out, entries.len() as u32);
            for (k, item) in entries {
                put_str(out, k);
                put_value(out, item);
            }
        }
        Value::Node(id) => {
            put_u8(out, 0x07);
            put_u64(out, id.0);
        }
        Value::Rel(id) => {
            put_u8(out, 0x08);
            put_u64(out, id.0);
        }
        Value::Path(p) => {
            put_u8(out, 0x09);
            put_u32(out, p.nodes.len() as u32);
            for n in &p.nodes {
                put_u64(out, n.0);
            }
            put_u32(out, p.rels.len() as u32);
            for r in &p.rels {
                put_u64(out, r.0);
            }
        }
    }
}

// ---------------------------------------------------------------- decoding

/// Cursor over a frame payload with bounds-checked reads.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError::protocol("truncated payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> WireResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> WireResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> WireResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> WireResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::protocol("string field is not UTF-8"))
    }

    fn bytes(&mut self) -> WireResult<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn row_bag(&mut self) -> WireResult<Vec<(Vec<Value>, u64)>> {
        let n = self.u32()? as usize;
        let mut bag = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let w = self.u32()? as usize;
            let mut row = Vec::with_capacity(w.min(4096));
            for _ in 0..w {
                row.push(self.value()?);
            }
            bag.push((row, self.u64()?));
        }
        Ok(bag)
    }

    fn str_list(&mut self) -> WireResult<Vec<String>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(self.str()?);
        }
        Ok(out)
    }

    fn value(&mut self) -> WireResult<Value> {
        Ok(match self.u8()? {
            0x00 => Value::Null,
            0x01 => Value::Bool(self.u8()? != 0),
            0x02 => Value::Int(self.u64()? as i64),
            0x03 => Value::Float(f64::from_bits(self.u64()?)),
            0x04 => Value::Str(self.str()?),
            0x05 => {
                let n = self.u32()? as usize;
                let mut items = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Value::List(items)
            }
            0x06 => {
                let n = self.u32()? as usize;
                let mut entries = std::collections::BTreeMap::new();
                for _ in 0..n {
                    let k = self.str()?;
                    entries.insert(k, self.value()?);
                }
                Value::Map(entries)
            }
            0x07 => Value::Node(cypher_graph::NodeId(self.u64()?)),
            0x08 => Value::Rel(cypher_graph::RelId(self.u64()?)),
            0x09 => {
                let n = self.u32()? as usize;
                let mut nodes = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    nodes.push(cypher_graph::NodeId(self.u64()?));
                }
                let m = self.u32()? as usize;
                let mut rels = Vec::with_capacity(m.min(4096));
                for _ in 0..m {
                    rels.push(cypher_graph::RelId(self.u64()?));
                }
                Value::Path(PathValue { nodes, rels })
            }
            tag => return Err(WireError::protocol(format!("unknown value tag {tag:#04x}"))),
        })
    }

    fn finish(self) -> WireResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::protocol(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello {
                version,
                dialect,
                lint,
                max_rows,
                max_writes,
                timeout_ms,
            } => {
                put_u8(&mut out, 0x01);
                put_u16(&mut out, *version);
                put_u8(&mut out, *dialect);
                put_u8(&mut out, *lint);
                put_u64(&mut out, *max_rows);
                put_u64(&mut out, *max_writes);
                put_u64(&mut out, *timeout_ms);
            }
            Request::Run { text } => {
                put_u8(&mut out, 0x02);
                put_str(&mut out, text);
            }
            Request::Pull { max } => {
                put_u8(&mut out, 0x03);
                put_u32(&mut out, *max);
            }
            Request::Commit => put_u8(&mut out, 0x04),
            Request::Reset => put_u8(&mut out, 0x05),
            Request::Goodbye => put_u8(&mut out, 0x06),
            Request::Shutdown => put_u8(&mut out, 0x07),
            Request::DumpGraph => put_u8(&mut out, 0x08),
            Request::CommitLog => put_u8(&mut out, 0x09),
            Request::Subscribe { from } => {
                put_u8(&mut out, 0x0A);
                put_u64(&mut out, *from);
            }
            Request::Promote => put_u8(&mut out, 0x0B),
            Request::Stats => put_u8(&mut out, 0x0C),
            Request::Fence { new_primary, epoch } => {
                put_u8(&mut out, 0x0D);
                put_str(&mut out, new_primary);
                put_u64(&mut out, *epoch);
            }
            Request::Ack { seq, epoch } => {
                put_u8(&mut out, 0x0E);
                put_u64(&mut out, *seq);
                put_u64(&mut out, *epoch);
            }
            Request::SubscribeQuery { text } => {
                put_u8(&mut out, 0x0F);
                put_str(&mut out, text);
            }
            Request::UnsubscribeQuery { view } => {
                put_u8(&mut out, 0x10);
                put_u64(&mut out, *view);
            }
        }
        out
    }

    pub fn decode(payload: &[u8]) -> WireResult<Request> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            0x01 => Request::Hello {
                version: r.u16()?,
                dialect: r.u8()?,
                lint: r.u8()?,
                max_rows: r.u64()?,
                max_writes: r.u64()?,
                timeout_ms: r.u64()?,
            },
            0x02 => Request::Run { text: r.str()? },
            0x03 => Request::Pull { max: r.u32()? },
            0x04 => Request::Commit,
            0x05 => Request::Reset,
            0x06 => Request::Goodbye,
            0x07 => Request::Shutdown,
            0x08 => Request::DumpGraph,
            0x09 => Request::CommitLog,
            0x0A => Request::Subscribe { from: r.u64()? },
            0x0B => Request::Promote,
            0x0C => Request::Stats,
            0x0D => Request::Fence {
                new_primary: r.str()?,
                epoch: r.u64()?,
            },
            0x0E => Request::Ack {
                seq: r.u64()?,
                epoch: r.u64()?,
            },
            0x0F => Request::SubscribeQuery { text: r.str()? },
            0x10 => Request::UnsubscribeQuery { view: r.u64()? },
            tag => {
                return Err(WireError::protocol(format!(
                    "unknown request tag {tag:#04x}"
                )))
            }
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::HelloOk {
                version,
                session,
                limits,
            } => {
                put_u8(&mut out, 0x81);
                put_u16(&mut out, *version);
                put_u64(&mut out, *session);
                put_str(&mut out, limits);
            }
            Response::RunOk {
                read_only,
                epoch,
                columns,
            } => {
                put_u8(&mut out, 0x82);
                put_u8(&mut out, u8::from(*read_only));
                put_u64(&mut out, *epoch);
                put_str_list(&mut out, columns);
            }
            Response::Rows {
                rows,
                has_more,
                stats,
            } => {
                put_u8(&mut out, 0x83);
                put_u32(&mut out, rows.len() as u32);
                for row in rows {
                    put_u32(&mut out, row.len() as u32);
                    for v in row {
                        put_value(&mut out, v);
                    }
                }
                put_u8(&mut out, u8::from(*has_more));
                for s in stats {
                    put_u64(&mut out, *s);
                }
            }
            Response::CommitOk => put_u8(&mut out, 0x84),
            Response::ResetOk => put_u8(&mut out, 0x85),
            Response::Bye => put_u8(&mut out, 0x86),
            Response::DumpOk { script } => {
                put_u8(&mut out, 0x87);
                put_str(&mut out, script);
            }
            Response::LogOk { statements } => {
                put_u8(&mut out, 0x88);
                put_str_list(&mut out, statements);
            }
            Response::Unit { seq, dialect, text } => {
                put_u8(&mut out, 0x89);
                put_u64(&mut out, *seq);
                put_u8(&mut out, *dialect);
                put_str(&mut out, text);
            }
            Response::Snapshot { seq, bytes } => {
                put_u8(&mut out, 0x8A);
                put_u64(&mut out, *seq);
                put_bytes(&mut out, bytes);
            }
            Response::SubscribeOk { seq, epoch } => {
                put_u8(&mut out, 0x8B);
                put_u64(&mut out, *seq);
                put_u64(&mut out, *epoch);
            }
            Response::StatsOk {
                role,
                redirect,
                epoch,
                commit_seq,
                queue_len,
                primary_seen,
                repl_epoch,
                quorum,
                overflow_drops,
                replicas,
                views,
            } => {
                put_u8(&mut out, 0x8C);
                put_u8(&mut out, *role);
                put_str(&mut out, redirect);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *commit_seq);
                put_u64(&mut out, *queue_len);
                put_u64(&mut out, *primary_seen);
                put_u64(&mut out, *repl_epoch);
                put_u8(&mut out, *quorum);
                put_u64(&mut out, *overflow_drops);
                put_u32(&mut out, replicas.len() as u32);
                for (addr, sent, acked) in replicas {
                    put_str(&mut out, addr);
                    put_u64(&mut out, *sent);
                    put_u64(&mut out, *acked);
                }
                put_u32(&mut out, views.len() as u32);
                for v in views {
                    put_u64(&mut out, v.id);
                    put_str(&mut out, &v.query);
                    // bit 0 = incremental, bit 1 = broken.
                    let flags = u8::from(v.incremental) | (u8::from(v.broken) << 1);
                    put_u8(&mut out, flags);
                    put_u64(&mut out, v.rows);
                    put_u64(&mut out, v.deltas);
                    put_u64(&mut out, v.fallbacks);
                }
            }
            Response::PromoteOk { seq } => {
                put_u8(&mut out, 0x8D);
                put_u64(&mut out, *seq);
            }
            Response::FenceOk => put_u8(&mut out, 0x8E),
            Response::Error {
                code,
                retryable,
                message,
                detail,
            } => {
                put_u8(&mut out, 0x8F);
                put_u16(&mut out, *code as u16);
                put_u8(&mut out, u8::from(*retryable));
                put_str(&mut out, message);
                put_str(&mut out, detail);
            }
            Response::SubscribeQueryOk {
                view,
                epoch,
                fallback,
                columns,
            } => {
                put_u8(&mut out, 0x90);
                put_u64(&mut out, *view);
                put_u64(&mut out, *epoch);
                put_u8(&mut out, u8::from(*fallback));
                put_str_list(&mut out, columns);
            }
            Response::ViewDelta {
                view,
                seq,
                epoch,
                adds,
                removes,
            } => {
                put_u8(&mut out, 0x91);
                put_u64(&mut out, *view);
                put_u64(&mut out, *seq);
                put_u64(&mut out, *epoch);
                put_row_bag(&mut out, adds);
                put_row_bag(&mut out, removes);
            }
        }
        out
    }

    pub fn decode(payload: &[u8]) -> WireResult<Response> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            0x81 => Response::HelloOk {
                version: r.u16()?,
                session: r.u64()?,
                limits: r.str()?,
            },
            0x82 => Response::RunOk {
                read_only: r.u8()? != 0,
                epoch: r.u64()?,
                columns: r.str_list()?,
            },
            0x83 => {
                let n = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let w = r.u32()? as usize;
                    let mut row = Vec::with_capacity(w.min(4096));
                    for _ in 0..w {
                        row.push(r.value()?);
                    }
                    rows.push(row);
                }
                let has_more = r.u8()? != 0;
                let mut stats = [0u64; 7];
                for s in &mut stats {
                    *s = r.u64()?;
                }
                Response::Rows {
                    rows,
                    has_more,
                    stats,
                }
            }
            0x84 => Response::CommitOk,
            0x85 => Response::ResetOk,
            0x86 => Response::Bye,
            0x87 => Response::DumpOk { script: r.str()? },
            0x88 => Response::LogOk {
                statements: r.str_list()?,
            },
            0x89 => Response::Unit {
                seq: r.u64()?,
                dialect: r.u8()?,
                text: r.str()?,
            },
            0x8A => Response::Snapshot {
                seq: r.u64()?,
                bytes: r.bytes()?,
            },
            0x8B => Response::SubscribeOk {
                seq: r.u64()?,
                epoch: r.u64()?,
            },
            0x8C => {
                let role = r.u8()?;
                let redirect = r.str()?;
                let epoch = r.u64()?;
                let commit_seq = r.u64()?;
                let queue_len = r.u64()?;
                let primary_seen = r.u64()?;
                let repl_epoch = r.u64()?;
                let quorum = r.u8()?;
                let overflow_drops = r.u64()?;
                let n = r.u32()? as usize;
                let mut replicas = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let addr = r.str()?;
                    let sent = r.u64()?;
                    replicas.push((addr, sent, r.u64()?));
                }
                let m = r.u32()? as usize;
                let mut views = Vec::with_capacity(m.min(4096));
                for _ in 0..m {
                    let id = r.u64()?;
                    let query = r.str()?;
                    let flags = r.u8()?;
                    views.push(ViewStat {
                        id,
                        query,
                        incremental: flags & 1 != 0,
                        broken: flags & 2 != 0,
                        rows: r.u64()?,
                        deltas: r.u64()?,
                        fallbacks: r.u64()?,
                    });
                }
                Response::StatsOk {
                    role,
                    redirect,
                    epoch,
                    commit_seq,
                    queue_len,
                    primary_seen,
                    repl_epoch,
                    quorum,
                    overflow_drops,
                    replicas,
                    views,
                }
            }
            0x8D => Response::PromoteOk { seq: r.u64()? },
            0x8E => Response::FenceOk,
            0x8F => Response::Error {
                code: ErrorCode::from_u16(r.u16()?),
                retryable: r.u8()? != 0,
                message: r.str()?,
                detail: r.str()?,
            },
            0x90 => Response::SubscribeQueryOk {
                view: r.u64()?,
                epoch: r.u64()?,
                fallback: r.u8()? != 0,
                columns: r.str_list()?,
            },
            0x91 => Response::ViewDelta {
                view: r.u64()?,
                seq: r.u64()?,
                epoch: r.u64()?,
                adds: r.row_bag()?,
                removes: r.row_bag()?,
            },
            tag => {
                return Err(WireError::protocol(format!(
                    "unknown response tag {tag:#04x}"
                )))
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_graph::{NodeId, RelId};

    fn roundtrip_req(req: Request) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &req.encode()).unwrap();
        let payload = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &resp.encode()).unwrap();
        let payload = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello {
            version: PROTOCOL_VERSION,
            dialect: 1,
            lint: 2,
            max_rows: u64::MAX,
            max_writes: 10,
            timeout_ms: 250,
        });
        roundtrip_req(Request::Run {
            text: "MATCH (n) RETURN n.name AS déjà — 'vu'".into(),
        });
        roundtrip_req(Request::Pull { max: 1000 });
        for req in [
            Request::Commit,
            Request::Reset,
            Request::Goodbye,
            Request::Shutdown,
            Request::DumpGraph,
            Request::CommitLog,
            Request::Subscribe { from: 42 },
            Request::Promote,
            Request::Stats,
            Request::Fence {
                new_primary: "127.0.0.1:7879".into(),
                epoch: 4,
            },
            Request::Fence {
                new_primary: String::new(),
                epoch: 0,
            },
            Request::Ack { seq: 77, epoch: 2 },
            Request::SubscribeQuery {
                text: "MATCH (n:Person) RETURN n.name".into(),
            },
            Request::UnsubscribeQuery { view: 3 },
        ] {
            roundtrip_req(req);
        }
    }

    #[test]
    fn replication_responses_roundtrip() {
        roundtrip_resp(Response::Unit {
            seq: 9,
            dialect: 1,
            text: "CREATE (:N)".into(),
        });
        roundtrip_resp(Response::Snapshot {
            seq: 17,
            bytes: vec![0xCA, 0xFE, 0x00, 0x42],
        });
        roundtrip_resp(Response::SubscribeOk { seq: 0, epoch: 1 });
        roundtrip_resp(Response::StatsOk {
            role: 1,
            redirect: "10.0.0.1:7878".into(),
            epoch: 3,
            commit_seq: 120,
            queue_len: 2,
            primary_seen: 125,
            repl_epoch: 2,
            quorum: 1,
            overflow_drops: 4,
            replicas: vec![("10.0.0.2:51234".into(), 118, 117)],
            views: vec![
                ViewStat {
                    id: 1,
                    query: "MATCH (n:Person) RETURN n.name".into(),
                    incremental: true,
                    rows: 12,
                    deltas: 30,
                    fallbacks: 0,
                    broken: false,
                },
                ViewStat {
                    id: 2,
                    query: "MATCH (n) RETURN n.x ORDER BY n.x".into(),
                    incremental: false,
                    rows: 3,
                    deltas: 5,
                    fallbacks: 40,
                    broken: true,
                },
            ],
        });
        roundtrip_resp(Response::StatsOk {
            role: 0,
            redirect: String::new(),
            epoch: 0,
            commit_seq: 0,
            queue_len: 0,
            primary_seen: 0,
            repl_epoch: 0,
            quorum: 0,
            overflow_drops: 0,
            replicas: vec![],
            views: vec![],
        });
        roundtrip_resp(Response::PromoteOk { seq: 121 });
        roundtrip_resp(Response::FenceOk);
    }

    #[test]
    fn live_view_responses_roundtrip() {
        roundtrip_resp(Response::SubscribeQueryOk {
            view: 7,
            epoch: 3,
            fallback: false,
            columns: vec!["n.name".into(), "count(*)".into()],
        });
        roundtrip_resp(Response::ViewDelta {
            view: 7,
            seq: 42,
            epoch: 3,
            adds: vec![
                (vec![Value::str("a"), Value::Int(2)], 1),
                (vec![Value::Null, Value::Float(1.5)], 3),
            ],
            removes: vec![(vec![Value::str("b"), Value::Int(1)], 1)],
        });
        // Empty batch doubles as the keepalive frame.
        roundtrip_resp(Response::ViewDelta {
            view: 7,
            seq: 0,
            epoch: 3,
            adds: vec![],
            removes: vec![],
        });
    }

    #[test]
    fn responses_roundtrip_with_every_value_kind() {
        roundtrip_resp(Response::HelloOk {
            version: 1,
            session: 42,
            limits: "limits: rows 100, time 250 ms".into(),
        });
        roundtrip_resp(Response::RunOk {
            read_only: true,
            epoch: 7,
            columns: vec!["a".into(), "b".into()],
        });
        let deep = Value::List(vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-5),
            Value::Float(2.5),
            Value::str("hi"),
            Value::Map([("k".to_string(), Value::Int(1))].into_iter().collect()),
            Value::Node(NodeId(9)),
            Value::Rel(RelId(3)),
            Value::Path(PathValue {
                nodes: vec![NodeId(1), NodeId(2)],
                rels: vec![RelId(8)],
            }),
        ]);
        roundtrip_resp(Response::Rows {
            rows: vec![vec![deep, Value::Int(1)], vec![Value::Null, Value::Null]],
            has_more: false,
            stats: [1, 2, 3, 4, 5, 6, 7],
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::Busy,
            retryable: true,
            message: "server at capacity".into(),
            detail: String::new(),
        });
        for resp in [Response::CommitOk, Response::ResetOk, Response::Bye] {
            roundtrip_resp(resp);
        }
        roundtrip_resp(Response::DumpOk {
            script: "CREATE (:A);".into(),
        });
        roundtrip_resp(Response::LogOk {
            statements: vec!["CREATE (:A)".into(), "CREATE (:B)".into()],
        });
    }

    #[test]
    fn corrupted_frame_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Commit.encode()).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::Protocol(m) if m.contains("CRC")));
    }

    #[test]
    fn oversize_frame_is_refused_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::Protocol(m) if m.contains("MAX_FRAME")));
    }

    #[test]
    fn trailing_bytes_are_a_protocol_error() {
        let mut payload = Request::Commit.encode();
        payload.push(0);
        assert!(Request::decode(&payload).is_err());
    }
}
