//! `cypher-serve` — serve a durable graph over the wire protocol.
//!
//! ```text
//! $ cypher-serve --data ./graphdb --addr 127.0.0.1:7878
//! $ cypher-serve --data ./graphdb --addr 127.0.0.1:0 --allow-shutdown \
//!       --dialect revised --lint deny --rows 100000 --time 5000
//! ```
//!
//! Prints `listening on <addr>` on stdout once bound (port `0` resolves to
//! the ephemeral port, so scripts can parse the line), then serves until a
//! client sends `Shutdown` (only honored with `--allow-shutdown`), SIGTERM
//! or SIGINT arrives (both trigger the same clean flush + checkpoint
//! shutdown as the frame), or the process is killed outright. All mutation
//! is WAL-durable before acknowledgement; even a hard kill loses nothing
//! that was acknowledged.
//!
//! Replication: `--replica-of HOST:PORT` starts this server as a read
//! replica tailing that primary — client writes are refused with the
//! typed `NotPrimary` error carrying the primary's address. `--allow-admin`
//! enables the `Promote` and `Fence` frames (manual failover).
//!
//! Quorum: `--sync-replicas N` withholds client write acknowledgements
//! until `N` replicas confirm durable application; `--sync-timeout-ms`
//! bounds the wait and `--sync-policy strict|degrade` picks between the
//! retryable `ReplicationTimeout` refusal and degrading to async.
//!
//! Automatic failover: on a replica, `--lease-ms N` presumes the primary
//! dead after `N` ms of silence (clamped to at least three feeder
//! keepalive intervals, and double-checked with a direct probe before
//! anyone is usurped) and runs a deterministic election over
//! `--peers HOST:PORT,HOST:PORT,...` (highest durable sequence wins, ties
//! by address); the winner promotes itself into a fresh epoch and fences
//! the old primary. `--lease-ms 0` (default) disables failover.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use cypher_core::{Dialect, ExecLimits, LintMode};
use cypher_server::{serve, ServerConfig};

const USAGE: &str = "usage: cypher-serve --data DIR [--addr HOST:PORT] \
[--dialect legacy|revised] [--lint off|warn|deny] \
[--rows N] [--writes N] [--time MS] \
[--max-inflight N] [--queue-depth N] [--max-batch N] [--read-workers N] \
[--allow-shutdown] \
[--replica-of HOST:PORT] [--advertise HOST:PORT] [--allow-admin] \
[--sync-replicas N] [--sync-timeout-ms MS] [--sync-policy strict|degrade] \
[--lease-ms MS] [--peers HOST:PORT,...]";

fn parse_config() -> Result<ServerConfig, String> {
    let mut data: Option<String> = None;
    let mut config = ServerConfig::new("");
    let mut args = std::env::args().skip(1);
    let next_u64 = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| format!("{flag} takes a number"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--data" => data = args.next(),
            "--addr" => {
                config.addr = args.next().ok_or("--addr takes HOST:PORT")?;
            }
            "--dialect" => match args.next().as_deref() {
                Some("legacy") | Some("cypher9") => config.dialect = Dialect::Cypher9,
                Some("revised") => config.dialect = Dialect::Revised,
                _ => return Err("--dialect takes `legacy` or `revised`".to_owned()),
            },
            "--lint" => match args.next().as_deref() {
                Some("off") => config.lint = LintMode::Off,
                Some("warn") => config.lint = LintMode::Warn,
                Some("deny") => config.lint = LintMode::Deny,
                _ => return Err("--lint takes off|warn|deny".to_owned()),
            },
            "--rows" => config.limits.max_rows = Some(next_u64(&mut args, "--rows")?),
            "--writes" => config.limits.max_writes = Some(next_u64(&mut args, "--writes")?),
            "--time" => {
                config.limits.timeout = Some(Duration::from_millis(next_u64(&mut args, "--time")?))
            }
            "--max-inflight" => {
                config.max_inflight = next_u64(&mut args, "--max-inflight")? as usize
            }
            "--queue-depth" => config.queue_depth = next_u64(&mut args, "--queue-depth")? as usize,
            "--max-batch" => config.max_batch = next_u64(&mut args, "--max-batch")? as usize,
            // 0 = auto (machine parallelism, the config default);
            // 1 = serial reads; N pins the pool size.
            "--read-workers" => match next_u64(&mut args, "--read-workers")? as usize {
                0 => {}
                n => config.read_workers = n,
            },
            "--allow-shutdown" => config.allow_shutdown = true,
            "--allow-admin" => config.allow_admin = true,
            "--replica-of" => {
                config.replica_of = Some(args.next().ok_or("--replica-of takes HOST:PORT")?)
            }
            "--advertise" => {
                config.advertise_addr = Some(args.next().ok_or("--advertise takes HOST:PORT")?)
            }
            "--sync-replicas" => {
                config.sync_replicas = next_u64(&mut args, "--sync-replicas")? as usize
            }
            "--sync-timeout-ms" => {
                config.sync_timeout =
                    Duration::from_millis(next_u64(&mut args, "--sync-timeout-ms")?)
            }
            "--sync-policy" => {
                let v = args.next().ok_or("--sync-policy takes strict|degrade")?;
                config.sync_policy = cypher_replication::SyncPolicy::parse(&v)
                    .ok_or("--sync-policy takes strict|degrade")?
            }
            "--lease-ms" => config.lease_ms = next_u64(&mut args, "--lease-ms")?,
            "--peers" => {
                let list = args.next().ok_or("--peers takes HOST:PORT,...")?;
                config.peers = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let data = data.ok_or("--data DIR is required")?;
    config.data_dir = data.into();
    Ok(config)
}

/// Flipped by SIGTERM/SIGINT; polled by the main loop. Storing an atomic
/// is async-signal-safe, which is all the handler does.
static SIGNALED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() -> ExitCode {
    let config = match parse_config() {
        Ok(c) => c,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let limits: ExecLimits = config.limits;
    let handle = match serve(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            return ExitCode::from(2);
        }
    };
    println!("listening on {}", handle.addr());
    eprintln!("session budget ceilings: {limits}");
    install_signal_handlers();
    // Serve until a Shutdown frame flips the stopping flag or a signal
    // lands; both take the same clean path (flush, checkpoint, exit).
    while !handle.is_stopping() && !SIGNALED.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    if SIGNALED.load(Ordering::SeqCst) {
        eprintln!("signal received; shutting down");
    }
    handle.stop();
    eprintln!("server stopped");
    ExitCode::SUCCESS
}
