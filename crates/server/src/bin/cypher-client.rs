//! `cypher-client` — scripted client and load generator for `cypher-serve`.
//!
//! Scripted mode runs actions in command-line order:
//!
//! ```text
//! $ cypher-client --addr 127.0.0.1:7878 \
//!       --run "CREATE (:User {id: 1})" \
//!       --run "MATCH (u:User) RETURN u.id" \
//!       --expect-error "UNWIND range(1, 1000000) AS x RETURN x" \
//!       --dump --commit-log --checkpoint --shutdown
//! ```
//!
//! `--expect-error` succeeds only if the statement FAILS server-side (used
//! by verify.sh to prove budget refusals travel the wire as typed errors).
//!
//! Load mode opens `--threads` concurrent sessions, each running `--load`
//! statements (a write/read mix), retries `Busy` refusals, and writes
//! throughput + latency percentiles to `--out` (default `BENCH_5.json`):
//!
//! ```text
//! $ cypher-client --addr 127.0.0.1:7878 --load 500 --threads 8 --out BENCH_5.json
//! ```
//!
//! With `--read-addr` the load generator exercises a replication pair:
//! writes go to `--addr` (the primary), reads go to `--read-addr` (a
//! replica), a monitor thread samples both servers' `Stats` to record the
//! maximum replication lag, and the run ends by waiting for the replica
//! to converge on the primary's final sequence (default out:
//! `BENCH_6.json`).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use cypher_graph::Value;
use cypher_server::{Client, HelloOptions};

const USAGE: &str = "usage: cypher-client --addr HOST:PORT \
[--dialect legacy|revised] [--lint off|warn|deny] [--rows N] [--writes N] [--time MS] \
[--format text|json] \
( [--run STMT | --run-routed STMT | --expect-error STMT | --dump | --commit-log | --checkpoint \
| --stats | --promote | --epoch N --fence ADDR]... \
[--goodbye] [--shutdown] \
| --subscribe-query STMT [--deltas N] [--watch] \
| --load N --threads T [--read-addr HOST:PORT] [--label NAME] [--out FILE] )";

enum Action {
    Run(String),
    /// Like `Run`, but follows typed `NotPrimary` redirects to the
    /// current primary (post-failover write path).
    RunRouted(String),
    ExpectError(String),
    Dump,
    CommitLog,
    Checkpoint,
    Stats,
    Promote,
    Fence(String, u64),
    Goodbye,
    Shutdown,
    /// Terminal: register a live view and stream its delta batches.
    SubscribeQuery(String),
}

struct Options {
    addr: String,
    hello: HelloOptions,
    actions: Vec<Action>,
    load: Option<(u64, u64, String)>,
    read_addr: Option<String>,
    label: Option<String>,
    /// `--stats` output as one JSON object instead of text lines.
    json: bool,
    /// `--subscribe-query`: exit after this many data batches (0 = exit
    /// right after the registration snapshot).
    deltas: u64,
    /// `--subscribe-query`: re-print the full maintained table after
    /// every applied batch instead of the raw delta lines.
    watch: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        addr: String::new(),
        hello: HelloOptions::server_defaults(),
        actions: Vec::new(),
        load: None,
        read_addr: None,
        label: None,
        json: false,
        deltas: 0,
        watch: false,
    };
    let mut load_n: Option<u64> = None;
    let mut threads: u64 = 4;
    let mut out: Option<String> = None;
    let mut epoch: u64 = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| args.next().ok_or(format!("{flag} takes a value"));
        match arg.as_str() {
            "--addr" => opts.addr = next("--addr")?,
            "--dialect" => match next("--dialect")?.as_str() {
                "legacy" | "cypher9" => opts.hello.dialect = 0,
                "revised" => opts.hello.dialect = 1,
                _ => return Err("--dialect takes `legacy` or `revised`".to_owned()),
            },
            "--lint" => match next("--lint")?.as_str() {
                "off" => opts.hello.lint = 0,
                "warn" => opts.hello.lint = 1,
                "deny" => opts.hello.lint = 2,
                _ => return Err("--lint takes off|warn|deny".to_owned()),
            },
            "--rows" => opts.hello.max_rows = parse_u64(&next("--rows")?)?,
            "--writes" => opts.hello.max_writes = parse_u64(&next("--writes")?)?,
            "--time" => opts.hello.timeout_ms = parse_u64(&next("--time")?)?,
            "--run" => opts.actions.push(Action::Run(next("--run")?)),
            "--run-routed" => opts.actions.push(Action::RunRouted(next("--run-routed")?)),
            "--expect-error" => opts
                .actions
                .push(Action::ExpectError(next("--expect-error")?)),
            "--dump" => opts.actions.push(Action::Dump),
            "--commit-log" => opts.actions.push(Action::CommitLog),
            "--checkpoint" => opts.actions.push(Action::Checkpoint),
            "--stats" => opts.actions.push(Action::Stats),
            "--promote" => opts.actions.push(Action::Promote),
            "--epoch" => epoch = parse_u64(&next("--epoch")?)?.ok_or("--epoch takes a number")?,
            "--fence" => opts.actions.push(Action::Fence(next("--fence")?, epoch)),
            "--label" => opts.label = Some(next("--label")?),
            "--goodbye" => opts.actions.push(Action::Goodbye),
            "--shutdown" => opts.actions.push(Action::Shutdown),
            "--subscribe-query" => opts
                .actions
                .push(Action::SubscribeQuery(next("--subscribe-query")?)),
            "--deltas" => {
                opts.deltas = parse_u64(&next("--deltas")?)?.ok_or("--deltas takes a number")?
            }
            "--watch" => opts.watch = true,
            "--format" => match next("--format")?.as_str() {
                "text" => opts.json = false,
                "json" => opts.json = true,
                _ => return Err("--format takes `text` or `json`".to_owned()),
            },
            "--load" => load_n = parse_u64(&next("--load")?)?,
            "--threads" => {
                threads = parse_u64(&next("--threads")?)?.ok_or("--threads takes a number")?
            }
            "--out" => out = Some(next("--out")?),
            "--read-addr" => opts.read_addr = Some(next("--read-addr")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.addr.is_empty() {
        return Err("--addr HOST:PORT is required".to_owned());
    }
    if let Some(n) = load_n {
        let default_out = if opts.read_addr.is_some() {
            "BENCH_6.json"
        } else {
            "BENCH_5.json"
        };
        opts.load = Some((
            n,
            threads.max(1),
            out.unwrap_or_else(|| default_out.to_owned()),
        ));
    }
    if opts.actions.is_empty() && opts.load.is_none() {
        return Err("nothing to do: give --run/--dump/... actions or --load".to_owned());
    }
    Ok(opts)
}

fn parse_u64(s: &str) -> Result<Option<u64>, String> {
    s.parse::<u64>()
        .map(Some)
        .map_err(|_| format!("`{s}` is not a number"))
}

fn scripted(opts: Options) -> ExitCode {
    let mut client = match Client::connect(&opts.addr, &opts.hello) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: connect {}: {e}", opts.addr);
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "connected: session {} ({})",
        client.session_id(),
        client.limits()
    );
    for action in &opts.actions {
        let failed = match action {
            Action::Run(text) => match client.run_with_retry(text, 10) {
                Ok(outcome) => {
                    print_outcome(text, &outcome);
                    false
                }
                Err(e) => {
                    eprintln!("error: {text}: {e}");
                    true
                }
            },
            Action::RunRouted(text) => match client.run_routed(text) {
                Ok(outcome) => {
                    print_outcome(text, &outcome);
                    if client.connected_addr() != opts.addr {
                        eprintln!("(routed to {})", client.connected_addr());
                    }
                    false
                }
                Err(e) => {
                    eprintln!("error: {text}: {e}");
                    true
                }
            },
            Action::ExpectError(text) => match client.run_with_retry(text, 10) {
                Ok(_) => {
                    eprintln!("error: `{text}` unexpectedly succeeded");
                    true
                }
                Err(e) => {
                    println!("expected error: {e}");
                    false
                }
            },
            Action::Dump => match client.dump_graph() {
                Ok(script) => {
                    print!("{script}");
                    false
                }
                Err(e) => {
                    eprintln!("error: dump: {e}");
                    true
                }
            },
            Action::CommitLog => match client.commit_log() {
                Ok(stmts) => {
                    for s in &stmts {
                        println!("{s}");
                    }
                    false
                }
                Err(e) => {
                    eprintln!("error: commit-log: {e}");
                    true
                }
            },
            Action::Checkpoint => match client.commit() {
                Ok(()) => {
                    println!("checkpointed");
                    false
                }
                Err(e) => {
                    eprintln!("error: checkpoint: {e}");
                    true
                }
            },
            Action::Stats => match client.stats() {
                Ok(s) => {
                    if opts.json {
                        print_stats_json(&s);
                    } else {
                        print_stats(&s);
                    }
                    false
                }
                Err(e) => {
                    eprintln!("error: stats: {e}");
                    true
                }
            },
            Action::Promote => match client.promote() {
                Ok(seq) => {
                    println!("promoted to primary at seq {seq}");
                    false
                }
                Err(e) => {
                    eprintln!("error: promote: {e}");
                    true
                }
            },
            Action::Fence(new_primary, epoch) => match client.fence(new_primary, *epoch) {
                Ok(()) => {
                    println!("fenced at epoch {epoch} (writes redirect to `{new_primary}`)");
                    false
                }
                Err(e) => {
                    eprintln!("error: fence: {e}");
                    true
                }
            },
            Action::Goodbye => {
                let r = client.goodbye();
                if let Err(e) = r {
                    eprintln!("error: goodbye: {e}");
                    return ExitCode::from(1);
                }
                return ExitCode::SUCCESS;
            }
            Action::Shutdown => {
                let r = client.shutdown_server();
                if let Err(e) = r {
                    eprintln!("error: shutdown: {e}");
                    return ExitCode::from(1);
                }
                println!("server shutting down");
                return ExitCode::SUCCESS;
            }
            Action::SubscribeQuery(text) => {
                // Terminal: the session becomes a delta stream.
                return subscribe_stream(client, text, opts.deltas, opts.watch);
            }
        };
        if failed {
            return ExitCode::from(1);
        }
    }
    let _ = client.goodbye();
    ExitCode::SUCCESS
}

fn print_stats(s: &cypher_server::StatsOutcome) {
    let role = match s.role {
        0 => "primary",
        1 => "replica",
        2 => "fenced",
        _ => "unknown",
    };
    println!("role: {role}");
    if !s.redirect.is_empty() {
        println!("writes-go-to: {}", s.redirect);
    }
    println!("epoch: {}", s.epoch);
    println!("repl-epoch: {}", s.repl_epoch);
    println!("commit-seq: {}", s.commit_seq);
    println!("queue-len: {}", s.queue_len);
    let quorum = match s.quorum {
        0 => "async",
        1 => "in-sync",
        2 => "degraded",
        3 => "timed-out",
        _ => "unknown",
    };
    println!("quorum: {quorum}");
    println!("overflow-drops: {}", s.overflow_drops);
    if s.role == 1 {
        println!("primary-seen: {}", s.primary_seen);
        println!("apply-lag: {}", s.primary_seen.saturating_sub(s.commit_seq));
    }
    for (addr, sent, acked) in &s.replicas {
        println!(
            "replica {addr}: sent-seq {sent} acked-seq {acked} (send-lag {}, durable-lag {})",
            s.commit_seq.saturating_sub(*sent),
            s.commit_seq.saturating_sub(*acked),
        );
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// `--stats --format json`: one JSON object, stable key order (scripts
/// diff this output — never reorder or rename keys).
fn print_stats_json(s: &cypher_server::StatsOutcome) {
    let role = match s.role {
        0 => "primary",
        1 => "replica",
        2 => "fenced",
        _ => "unknown",
    };
    let quorum = match s.quorum {
        0 => "async",
        1 => "in-sync",
        2 => "degraded",
        3 => "timed-out",
        _ => "unknown",
    };
    let replicas: Vec<String> = s
        .replicas
        .iter()
        .map(|(addr, sent, acked)| {
            format!(
                "{{ \"addr\": \"{}\", \"sent_seq\": {sent}, \"acked_seq\": {acked} }}",
                json_escape(addr)
            )
        })
        .collect();
    let views: Vec<String> = s
        .views
        .iter()
        .map(|v| {
            format!(
                "{{ \"id\": {}, \"query\": \"{}\", \"mode\": \"{}\", \"rows\": {}, \
                 \"deltas\": {}, \"fallbacks\": {}, \"broken\": {} }}",
                v.id,
                json_escape(&v.query),
                if v.incremental {
                    "incremental"
                } else {
                    "fallback"
                },
                v.rows,
                v.deltas,
                v.fallbacks,
                v.broken,
            )
        })
        .collect();
    println!(
        "{{\n  \"role\": \"{role}\",\n  \"redirect\": \"{}\",\n  \"epoch\": {},\n  \
         \"repl_epoch\": {},\n  \"commit_seq\": {},\n  \"queue_len\": {},\n  \
         \"quorum\": \"{quorum}\",\n  \"overflow_drops\": {},\n  \"primary_seen\": {},\n  \
         \"view_count\": {},\n  \"replicas\": [{}],\n  \"views\": [{}]\n}}",
        json_escape(&s.redirect),
        s.epoch,
        s.repl_epoch,
        s.commit_seq,
        s.queue_len,
        s.overflow_drops,
        s.primary_seen,
        s.views.len(),
        replicas.join(", "),
        views.join(", "),
    );
}

fn render_row(row: &[Value]) -> String {
    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
    cells.join(" | ")
}

/// `--subscribe-query`: register the view, stream its delta batches to
/// stdout, and exit after `wanted` data batches (statement-produced, i.e.
/// seq > 0) with a clean unsubscribe. The final `final:` lines are the
/// client-side replay of every received delta — scripts diff them against
/// a fresh evaluation of the same query to prove the stream converged.
fn subscribe_stream(mut client: Client, text: &str, wanted: u64, watch: bool) -> ExitCode {
    let reg = match client.subscribe_query(text) {
        Ok(reg) => reg,
        Err(e) => {
            eprintln!("error: subscribe-query: {e}");
            return ExitCode::from(1);
        }
    };
    let mode = if reg.fallback {
        "fallback"
    } else {
        "incremental"
    };
    // One line, flushed immediately, so scripts can sequence on it.
    println!(
        "subscribed view={} epoch={} mode={mode} columns={}",
        reg.view,
        reg.epoch,
        reg.columns.join(",")
    );
    let _ = std::io::stdout().flush();

    // Replay bag: row debug-key -> (row, multiplicity).
    let mut replay: BTreeMap<String, (Vec<Value>, u64)> = BTreeMap::new();
    let mut seen = 0u64;
    let mut snapshot = true;
    loop {
        let batch = match client.next_view_delta() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: view stream: {e}");
                return ExitCode::from(1);
            }
        };
        // The first frame is always the registration snapshot (possibly
        // empty); after it, empty seq-0 batches are idle keepalives.
        if !snapshot && batch.is_keepalive() && batch.seq == 0 {
            continue;
        }
        for (row, n) in &batch.removes {
            let key = format!("{row:?}");
            match replay.get_mut(&key) {
                Some(e) if e.1 >= *n => {
                    e.1 -= *n;
                    if e.1 == 0 {
                        replay.remove(&key);
                    }
                }
                _ => {
                    eprintln!("error: view stream retracted a row the replay does not hold");
                    return ExitCode::from(1);
                }
            }
        }
        for (row, n) in &batch.adds {
            let e = replay
                .entry(format!("{row:?}"))
                .or_insert_with(|| (row.clone(), 0));
            e.1 += *n;
        }
        if watch {
            let total: u64 = replay.values().map(|(_, n)| *n).sum();
            println!(
                "-- {} @seq {} ({total} rows)",
                reg.columns.join(" | "),
                batch.seq
            );
            for (row, n) in replay.values() {
                for _ in 0..*n {
                    println!("   {}", render_row(row));
                }
            }
            let _ = std::io::stdout().flush();
        } else if !snapshot || !batch.is_keepalive() {
            println!(
                "delta view={} seq={} +{} -{}",
                batch.view,
                batch.seq,
                batch.adds.len(),
                batch.removes.len()
            );
            for (row, n) in &batch.removes {
                println!("  - {} x{n}", render_row(row));
            }
            for (row, n) in &batch.adds {
                println!("  + {} x{n}", render_row(row));
            }
            let _ = std::io::stdout().flush();
        }
        snapshot = false;
        if batch.seq > 0 {
            seen += 1;
        }
        if seen >= wanted {
            break;
        }
    }
    for (row, n) in replay.values() {
        for _ in 0..*n {
            println!("final: {}", render_row(row));
        }
    }
    match client.unsubscribe_query(reg.view) {
        Ok(()) => {
            println!("unsubscribed (bye)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: unsubscribe: {e}");
            ExitCode::from(1)
        }
    }
}

fn print_outcome(text: &str, outcome: &cypher_server::RunOutcome) {
    let kind = if outcome.read_only { "read" } else { "write" };
    println!(
        "ok ({kind}, epoch {}, {} row{}): {text}",
        outcome.epoch,
        outcome.rows.len(),
        if outcome.rows.len() == 1 { "" } else { "s" }
    );
    for row in &outcome.rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  {}", cells.join(" | "));
    }
}

/// The load generator: `threads` sessions × `n` statements each, 50/50
/// write/read mix, Busy retried. Latencies are recorded per statement.
fn load_test(
    addr: &str,
    hello: &HelloOptions,
    n: u64,
    threads: u64,
    out: &str,
    label: &str,
) -> ExitCode {
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let addr = addr.to_owned();
            let hello = hello.clone();
            std::thread::spawn(move || -> Result<(Vec<u64>, Vec<u64>), String> {
                let mut client =
                    Client::connect(&addr, &hello).map_err(|e| format!("connect: {e}"))?;
                let mut write_us = Vec::with_capacity((n / 2 + 1) as usize);
                let mut read_us = Vec::with_capacity((n / 2 + 1) as usize);
                for i in 0..n {
                    let (text, lat) = if i % 2 == 0 {
                        (
                            format!("CREATE (:Load {{thread: {t}, seq: {i}}})"),
                            &mut write_us,
                        )
                    } else {
                        (
                            format!(
                                "MATCH (x:Load {{thread: {t}, seq: {}}}) RETURN x.seq",
                                i - 1
                            ),
                            &mut read_us,
                        )
                    };
                    let t0 = Instant::now();
                    client
                        .run_with_retry(&text, 1000)
                        .map_err(|e| format!("statement {i}: {e}"))?;
                    lat.push(t0.elapsed().as_micros() as u64);
                }
                client.goodbye().map_err(|e| format!("goodbye: {e}"))?;
                Ok((write_us, read_us))
            })
        })
        .collect();

    let mut write_us = Vec::new();
    let mut read_us = Vec::new();
    for h in handles {
        match h.join() {
            Ok(Ok((w, r))) => {
                write_us.extend(w);
                read_us.extend(r);
            }
            Ok(Err(e)) => {
                eprintln!("error: load thread: {e}");
                return ExitCode::from(1);
            }
            Err(_) => {
                eprintln!("error: load thread panicked");
                return ExitCode::from(1);
            }
        }
    }
    let elapsed = started.elapsed();
    let total = write_us.len() + read_us.len();
    let throughput = total as f64 / elapsed.as_secs_f64();

    let report = format!(
        "{{\n  \"benchmark\": \"{label}\",\n  \"threads\": {threads},\n  \
         \"statements_per_session\": {n},\n  \"total_statements\": {total},\n  \
         \"elapsed_ms\": {},\n  \"throughput_stmts_per_s\": {:.1},\n  \
         \"write\": {},\n  \"read\": {}\n}}\n",
        elapsed.as_millis(),
        throughput,
        percentiles_json(&mut write_us),
        percentiles_json(&mut read_us),
    );
    print!("{report}");
    match std::fs::File::create(out).and_then(|mut f| f.write_all(report.as_bytes())) {
        Ok(()) => {
            eprintln!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            ExitCode::from(1)
        }
    }
}

/// The replication load generator: writes stream to the primary while
/// reads hit the replica, a monitor samples both `Stats` frames for the
/// maximum replication lag (primary commit seq − replica commit seq), and
/// the run ends by waiting for full convergence.
fn replica_load_test(
    addr: &str,
    read_addr: &str,
    hello: &HelloOptions,
    n: u64,
    threads: u64,
    out: &str,
    label: &str,
) -> ExitCode {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    let started = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let max_lag = Arc::new(AtomicU64::new(0));

    // Monitor: sample both servers' commit sequences and keep the worst
    // spread seen. Uses its own sessions so it never queues behind load.
    let monitor = {
        let (addr, read_addr, hello) = (addr.to_owned(), read_addr.to_owned(), hello.clone());
        let (stop, max_lag) = (Arc::clone(&stop), Arc::clone(&max_lag));
        std::thread::spawn(move || {
            let Ok(mut primary) = Client::connect(&addr, &hello) else {
                return;
            };
            let Ok(mut replica) = Client::connect(&read_addr, &hello) else {
                return;
            };
            while !stop.load(Ordering::Acquire) {
                if let (Ok(p), Ok(r)) = (primary.stats(), replica.stats()) {
                    let lag = p.commit_seq.saturating_sub(r.commit_seq);
                    max_lag.fetch_max(lag, Ordering::AcqRel);
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        })
    };

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let (addr, read_addr, hello) = (addr.to_owned(), read_addr.to_owned(), hello.clone());
            std::thread::spawn(move || -> Result<(Vec<u64>, Vec<u64>), String> {
                let mut writer =
                    Client::connect(&addr, &hello).map_err(|e| format!("connect primary: {e}"))?;
                let mut reader = Client::connect(&read_addr, &hello)
                    .map_err(|e| format!("connect replica: {e}"))?;
                let mut write_us = Vec::with_capacity((n / 2 + 1) as usize);
                let mut read_us = Vec::with_capacity((n / 2 + 1) as usize);
                for i in 0..n {
                    if i % 2 == 0 {
                        let text = format!("CREATE (:Load {{thread: {t}, seq: {i}}})");
                        let t0 = Instant::now();
                        writer
                            .run_with_retry(&text, 1000)
                            .map_err(|e| format!("write {i}: {e}"))?;
                        write_us.push(t0.elapsed().as_micros() as u64);
                    } else {
                        // The replica serves this wait-free from its own
                        // epoch snapshot; an empty result just means the
                        // write has not replicated yet — that gap is what
                        // the lag monitor quantifies.
                        let text = format!(
                            "MATCH (x:Load {{thread: {t}, seq: {}}}) RETURN x.seq",
                            i - 1
                        );
                        let t0 = Instant::now();
                        reader
                            .run_with_retry(&text, 1000)
                            .map_err(|e| format!("read {i}: {e}"))?;
                        read_us.push(t0.elapsed().as_micros() as u64);
                    }
                }
                writer.goodbye().map_err(|e| format!("goodbye: {e}"))?;
                reader.goodbye().map_err(|e| format!("goodbye: {e}"))?;
                Ok((write_us, read_us))
            })
        })
        .collect();

    let mut write_us = Vec::new();
    let mut read_us = Vec::new();
    for h in handles {
        match h.join() {
            Ok(Ok((w, r))) => {
                write_us.extend(w);
                read_us.extend(r);
            }
            Ok(Err(e)) => {
                eprintln!("error: load thread: {e}");
                stop.store(true, Ordering::Release);
                let _ = monitor.join();
                return ExitCode::from(1);
            }
            Err(_) => {
                eprintln!("error: load thread panicked");
                stop.store(true, Ordering::Release);
                let _ = monitor.join();
                return ExitCode::from(1);
            }
        }
    }
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Release);
    let _ = monitor.join();

    // Convergence: wait (bounded) for the replica to reach the primary's
    // final commit sequence.
    let converge_ms = {
        let t0 = Instant::now();
        let result = (|| -> Result<u128, String> {
            let mut primary = Client::connect(addr, hello).map_err(|e| e.to_string())?;
            let mut replica = Client::connect(read_addr, hello).map_err(|e| e.to_string())?;
            let target = primary.stats().map_err(|e| e.to_string())?.commit_seq;
            while t0.elapsed() < std::time::Duration::from_secs(30) {
                let seq = replica.stats().map_err(|e| e.to_string())?.commit_seq;
                if seq >= target {
                    return Ok(t0.elapsed().as_millis());
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err("replica did not converge within 30s".to_owned())
        })();
        match result {
            Ok(ms) => ms,
            Err(e) => {
                eprintln!("error: convergence: {e}");
                return ExitCode::from(1);
            }
        }
    };

    let total = write_us.len() + read_us.len();
    let throughput = total as f64 / elapsed.as_secs_f64();
    let report = format!(
        "{{\n  \"benchmark\": \"{label}\",\n  \"threads\": {threads},\n  \
         \"statements_per_session\": {n},\n  \"total_statements\": {total},\n  \
         \"elapsed_ms\": {},\n  \"throughput_stmts_per_s\": {:.1},\n  \
         \"max_replication_lag_units\": {},\n  \"converge_ms\": {converge_ms},\n  \
         \"write\": {},\n  \"read_replica\": {}\n}}\n",
        elapsed.as_millis(),
        throughput,
        max_lag.load(Ordering::Acquire),
        percentiles_json(&mut write_us),
        percentiles_json(&mut read_us),
    );
    print!("{report}");
    match std::fs::File::create(out).and_then(|mut f| f.write_all(report.as_bytes())) {
        Ok(()) => {
            eprintln!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            ExitCode::from(1)
        }
    }
}

fn percentiles_json(lat_us: &mut [u64]) -> String {
    if lat_us.is_empty() {
        return "null".to_owned();
    }
    lat_us.sort_unstable();
    let pick = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    format!(
        "{{ \"count\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {} }}",
        lat_us.len(),
        pick(0.50),
        pick(0.90),
        pick(0.99),
        lat_us[lat_us.len() - 1]
    )
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match &opts.load {
        Some((n, threads, out)) => {
            let (n, threads, out) = (*n, *threads, out.clone());
            match &opts.read_addr {
                Some(read_addr) => {
                    let read_addr = read_addr.clone();
                    let label = opts.label.as_deref().unwrap_or("replica_load");
                    replica_load_test(&opts.addr, &read_addr, &opts.hello, n, threads, &out, label)
                }
                None => {
                    let label = opts.label.as_deref().unwrap_or("server_load");
                    load_test(&opts.addr, &opts.hello, n, threads, &out, label)
                }
            }
        }
        None => scripted(opts),
    }
}
