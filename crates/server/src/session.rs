//! One session per connection.
//!
//! The session owns the protocol state machine: handshake first, then a
//! strict request/response loop. Each `Run` is classified by
//! [`Query::first_mutating_clause`](cypher_parser::ast::Query): statements
//! with no mutating clause execute on an epoch snapshot via
//! [`Engine::run_read`] — concurrently with every other reader and with
//! the writer, and (under the server's `read_workers` setting) fanned
//! over the process-wide morsel pool for intra-query parallelism — while
//! updates are submitted to the apply queue and block until their group
//! commit is flushed. Results are materialized per
//! statement and streamed to the client in `Pull`-sized row blocks.
//!
//! Replication rides on sessions too: a mutating `Run` on a non-primary
//! is refused with the typed `NotPrimary` error (reads still work — that
//! is the whole point of a read replica), and a `Subscribe` frame turns
//! the session **terminal**: the thread stops reading requests and becomes
//! a unit feeder, streaming the catch-up payload and then every committed
//! unit, with periodic `SubscribeOk` keepalives so a dead peer is noticed
//! even when no writes flow. The feeder also spawns an **ack reader** over
//! the stream's request half: the replica sends a durable `Ack(seq)` after
//! fsyncing each applied unit, and those acks (filtered by replication
//! epoch — a stale reign's confirmations count for nothing) are what the
//! primary's quorum-commit gate waits on under `--sync-replicas N`.
//!
//! Live views ride the same terminal-stream shape: a `SubscribeQuery`
//! frame registers the statement as a maintained view and turns the
//! session into a delta feeder — the registration snapshot first (a
//! pure-adds `ViewDelta`), then one ordered batch per committed statement
//! that changed the view, with empty keepalives while idle. The request
//! half becomes a control stream watched for `UnsubscribeQuery`/`Goodbye`.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cypher_core::{Dialect, Engine, EngineBuilder, LintMode, QueryResult, UpdateStats};
use cypher_parser::parse;
use cypher_replication::Role;

use crate::config::ServerConfig;
use crate::error::{
    busy_frame, eval_error_frame, not_primary_frame, replication_timeout_frame,
    storage_error_frame, ErrorCode,
};
use crate::net::NetFabric;
use crate::store::{SharedStore, SubscribeStart, WriteOutcome};
use crate::wire::{read_frame, write_frame, Request, Response, WireError, PROTOCOL_VERSION};

/// How often an idle unit feeder re-sends `SubscribeOk` — the keepalive
/// that detects a dead replica socket, refreshes the replica's view of
/// the primary's head sequence, and renews the replica's primary-liveness
/// lease. It must beat the smallest usable failover lease by a
/// comfortable margin (the server clamps `--lease-ms` to at least
/// [`MIN_LEASE_KEEPALIVES`]× this interval), or an idle-but-healthy
/// stream would expire leases between heartbeats.
pub(crate) const FEED_KEEPALIVE: Duration = Duration::from_millis(100);

/// Minimum lease TTL, expressed in keepalive intervals: a lease only
/// expires after at least this many consecutive heartbeats went missing.
pub(crate) const MIN_LEASE_KEEPALIVES: u32 = 3;

/// A statement's materialized result, drained by `Pull` frames.
struct Pending {
    result: QueryResult,
    next_row: usize,
}

/// Run one connection to completion. Returns when the client says
/// `Goodbye`, closes the socket, breaks protocol, or the server shuts the
/// stream down. The returned flag is `true` when the client requested
/// server shutdown (and the config allows it).
pub fn run_session(
    stream: TcpStream,
    session_id: u64,
    config: &ServerConfig,
    store: &Arc<SharedStore>,
) -> bool {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| format!("session-{session_id}"));
    let Ok(read_half) = stream.try_clone() else {
        return false;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    // ---- handshake -------------------------------------------------------
    let engine = match read_request(&mut reader) {
        Ok(Request::Hello {
            version,
            dialect,
            lint,
            max_rows,
            max_writes,
            timeout_ms,
        }) => {
            if version != PROTOCOL_VERSION {
                let _ = send(
                    &mut writer,
                    &Response::Error {
                        code: ErrorCode::Version,
                        retryable: false,
                        message: format!(
                            "protocol version {version} not supported (server speaks \
                             {PROTOCOL_VERSION})"
                        ),
                        detail: String::new(),
                    },
                );
                return false;
            }
            let dialect = match dialect {
                0 => Dialect::Cypher9,
                1 => Dialect::Revised,
                _ => config.dialect,
            };
            let lint = match lint {
                0 => LintMode::Off,
                1 => LintMode::Warn,
                2 => LintMode::Deny,
                _ => config.lint,
            };
            let limits = config.session_limits(max_rows, max_writes, timeout_ms);
            // The same rendering the shell's `:limits` prints — one
            // formatting, two surfaces.
            eprintln!("session {session_id}: dialect {dialect:?}, lint {lint:?}, {limits}");
            let engine = EngineBuilder::new(dialect)
                .lint_mode(lint)
                .limits(limits)
                .read_workers(config.read_workers)
                .morsel_size(config.morsel_size)
                .parallel_threshold(config.parallel_threshold)
                .build();
            if send(
                &mut writer,
                &Response::HelloOk {
                    version: PROTOCOL_VERSION,
                    session: session_id,
                    limits: limits.to_string(),
                },
            )
            .is_err()
            {
                return false;
            }
            engine
        }
        Ok(_) => {
            let _ = send(
                &mut writer,
                &Response::Error {
                    code: ErrorCode::Protocol,
                    retryable: false,
                    message: "expected Hello as the first message".to_owned(),
                    detail: String::new(),
                },
            );
            return false;
        }
        Err(_) => return false,
    };

    // ---- request loop ----------------------------------------------------
    let mut pending: Option<Pending> = None;
    loop {
        let request = match read_request(&mut reader) {
            Ok(req) => req,
            Err(e) => {
                if !e.is_clean_eof() {
                    let _ = send(
                        &mut writer,
                        &Response::Error {
                            code: ErrorCode::Protocol,
                            retryable: false,
                            message: e.to_string(),
                            detail: String::new(),
                        },
                    );
                }
                return false;
            }
        };
        let response = match request {
            Request::Hello { .. } => Response::Error {
                code: ErrorCode::Protocol,
                retryable: false,
                message: "duplicate Hello".to_owned(),
                detail: String::new(),
            },
            Request::Run { text } => {
                let (resp, new_pending) = run_statement(&engine, store, &text);
                pending = new_pending;
                resp
            }
            Request::Pull { max } => match pending.as_mut() {
                None => Response::Error {
                    code: ErrorCode::Protocol,
                    retryable: false,
                    message: "Pull without a pending result".to_owned(),
                    detail: String::new(),
                },
                Some(p) => {
                    let end = p
                        .next_row
                        .saturating_add(max.max(1) as usize)
                        .min(p.result.rows.len());
                    let rows = p.result.rows[p.next_row..end].to_vec();
                    p.next_row = end;
                    let has_more = end < p.result.rows.len();
                    let stats = if has_more {
                        [0; 7]
                    } else {
                        stats_array(&p.result.stats)
                    };
                    if !has_more {
                        pending = None;
                    }
                    Response::Rows {
                        rows,
                        has_more,
                        stats,
                    }
                }
            },
            Request::Commit => match store.checkpoint() {
                Ok(Ok(())) => Response::CommitOk,
                Ok(Err(e)) => storage_error_frame(&e),
                Err(b) => busy_frame(b.0),
            },
            Request::Reset => {
                pending = None;
                Response::ResetOk
            }
            Request::Goodbye => {
                let _ = send(&mut writer, &Response::Bye);
                return false;
            }
            Request::Shutdown => {
                if config.allow_shutdown {
                    let _ = send(&mut writer, &Response::Bye);
                    return true;
                }
                Response::Error {
                    code: ErrorCode::Protocol,
                    retryable: false,
                    message: "shutdown is disabled on this server".to_owned(),
                    detail: String::new(),
                }
            }
            Request::DumpGraph => match store.snapshot() {
                Some(snap) => Response::DumpOk {
                    script: cypher_core::graph_to_cypher(&snap),
                },
                None => busy_frame("apply queue full"),
            },
            Request::CommitLog => match store.commit_log() {
                Ok(statements) => Response::LogOk { statements },
                Err(b) => busy_frame(b.0),
            },
            Request::Stats => {
                let s = store.stats();
                Response::StatsOk {
                    role: s.role.as_u8(),
                    redirect: s.role.redirect().unwrap_or("").to_owned(),
                    epoch: s.epoch,
                    commit_seq: s.commit_seq,
                    queue_len: s.queue_len,
                    primary_seen: s.primary_seen,
                    repl_epoch: s.repl_epoch,
                    quorum: s.quorum.as_u8(),
                    overflow_drops: s.overflow_drops,
                    replicas: s
                        .replicas
                        .into_iter()
                        .map(|p| (p.label, p.sent, p.acked))
                        .collect(),
                    views: s.views,
                }
            }
            Request::Promote => {
                if config.allow_admin {
                    let was = store.role().get();
                    // promote() bumps the replication epoch: the new reign
                    // is distinguishable from (and fences out) the old.
                    let seq = store.promote();
                    let epoch = store.repl_epoch();
                    eprintln!(
                        "session {session_id}: promoted to primary at seq {seq} (epoch {epoch})"
                    );
                    // Best effort: durably fence the old primary so a
                    // zombie can never acknowledge another write. If it is
                    // unreachable (the usual failover reason) this just
                    // fails quietly; the fence also lands when the zombie
                    // restarts and reconnects as a subscriber is refused.
                    if let Role::Replica { primary } = was {
                        let advertise = config.advertise_addr.clone().unwrap_or_default();
                        let fabric = Arc::clone(&config.net);
                        std::thread::spawn(move || {
                            let _ = fence_old_primary(fabric, &primary, &advertise, epoch);
                        });
                    }
                    Response::PromoteOk { seq }
                } else {
                    admin_disabled_frame("Promote")
                }
            }
            Request::Fence { new_primary, epoch } => {
                if config.allow_admin {
                    let target = (!new_primary.is_empty()).then_some(new_primary);
                    eprintln!(
                        "session {session_id}: fencing this server (new primary: {:?}, epoch \
                         {epoch})",
                        target
                    );
                    match store.fence(target, epoch) {
                        Ok(Ok(())) => Response::FenceOk,
                        Ok(Err(e)) => storage_error_frame(&e),
                        Err(b) => busy_frame(b.0),
                    }
                } else {
                    admin_disabled_frame("Fence")
                }
            }
            Request::Ack { .. } => Response::Error {
                code: ErrorCode::Protocol,
                retryable: false,
                message: "Ack is only valid on a subscribe stream".to_owned(),
                detail: String::new(),
            },
            Request::Subscribe { from } => {
                // Terminal: on success this call only returns when the
                // feed ends, and the session is over either way. The
                // reader moves in — it becomes the feeder's ack stream.
                run_feeder(reader, &mut writer, store, &peer, from);
                return false;
            }
            Request::SubscribeQuery { text } => {
                // Terminal: the session becomes a view-delta feeder; the
                // reader moves in as its control stream.
                run_view_feeder(reader, &mut writer, store, &engine, &text);
                return false;
            }
            Request::UnsubscribeQuery { .. } => Response::Error {
                code: ErrorCode::Protocol,
                retryable: false,
                message: "UnsubscribeQuery is only valid on a live-view stream".to_owned(),
                detail: String::new(),
            },
        };
        if send(&mut writer, &response).is_err() {
            return false;
        }
    }
}

/// Execute one statement under admission control; returns the immediate
/// response and, on success, the pending result for `Pull`.
fn run_statement(
    engine: &Engine,
    store: &Arc<SharedStore>,
    text: &str,
) -> (Response, Option<Pending>) {
    // Admission layer one: the global in-flight cap.
    let Some(_slot) = store.gate().try_acquire() else {
        return (busy_frame("in-flight statement cap reached"), None);
    };

    // Classify: parse here (cheap, and parse errors shouldn't cost a queue
    // slot). The engine re-parses internally; statement texts are small.
    let query = match parse(text) {
        Ok(q) => q,
        Err(e) => return (eval_error_frame(&e.into(), text), None),
    };

    if query.first_mutating_clause().is_none() {
        // Reader: wait-free snapshot when the epoch is unchanged. Reads
        // are served on every role — a replica exists to serve them.
        let Some(snap) = store.snapshot() else {
            return (busy_frame("apply queue full"), None);
        };
        let epoch = store.epoch();
        match engine.run_read(&snap, text) {
            Ok(result) => ok_response(result, true, epoch),
            Err(e) => (eval_error_frame(&e, text), None),
        }
    } else {
        // Writer: only a primary takes writes. The refusal is typed and
        // carries the primary's address so clients redirect, not guess.
        let role = store.role().get();
        match &role {
            Role::Primary => {}
            Role::Replica { .. } => {
                return (
                    not_primary_frame(role.redirect(), "this server is a read replica"),
                    None,
                )
            }
            Role::Fenced { .. } => {
                return (
                    not_primary_frame(role.redirect(), "server is fenced after failover"),
                    None,
                )
            }
        }
        // Serialize through the apply queue; the reply arrives only after
        // the statement's batch is flushed (durable).
        match store.submit_write(text.to_owned(), engine.clone()) {
            Ok(WriteOutcome::Ok(result)) => ok_response(result, false, store.epoch()),
            Ok(WriteOutcome::Eval(e)) => (eval_error_frame(&e, text), None),
            Ok(WriteOutcome::Storage(e)) => (storage_error_frame(&e), None),
            Ok(WriteOutcome::Quorum {
                acked,
                needed,
                waited_ms,
            }) => (replication_timeout_frame(acked, needed, waited_ms), None),
            Err(b) => (busy_frame(b.0), None),
        }
    }
}

fn ok_response(result: QueryResult, read_only: bool, epoch: u64) -> (Response, Option<Pending>) {
    let resp = Response::RunOk {
        read_only,
        epoch,
        columns: result.columns.clone(),
    };
    (
        resp,
        Some(Pending {
            result,
            next_row: 0,
        }),
    )
}

fn stats_array(s: &UpdateStats) -> [u64; 7] {
    [
        s.nodes_created as u64,
        s.rels_created as u64,
        s.nodes_deleted as u64,
        s.rels_deleted as u64,
        s.props_set as u64,
        s.labels_added as u64,
        s.labels_removed as u64,
    ]
}

fn admin_disabled_frame(what: &str) -> Response {
    Response::Error {
        code: ErrorCode::Protocol,
        retryable: false,
        message: format!("{what} is disabled on this server (start with --allow-admin)"),
        detail: String::new(),
    }
}

/// Serve one replica's unit feed until the stream or the hub ends it.
///
/// Protocol: `SubscribeOk(head, epoch)` first, then (for a subscriber
/// behind the retained window) one `Snapshot` bootstrap frame, then the
/// backlog as `Unit` frames, then live units as they commit. While idle,
/// the feeder re-sends `SubscribeOk` with the current head — a keepalive
/// that makes a dead socket fail the next write (so the hub's slot is
/// reclaimed), doubles as the replica's lag beacon, and renews the
/// replica's primary-liveness lease.
///
/// The request half of the stream (`reader`) becomes the **ack stream**:
/// a spawned thread reads the replica's `Ack(seq, epoch)` frames and
/// feeds them to the hub's per-peer durable cursor — after filtering by
/// replication epoch, so a confirmation from a stale reign never
/// satisfies a quorum wait.
fn run_feeder(
    reader: BufReader<TcpStream>,
    w: &mut impl std::io::Write,
    store: &Arc<SharedStore>,
    peer: &str,
    from: u64,
) {
    let role = store.role().get();
    if let Role::Fenced { .. } = role {
        let _ = send(
            w,
            &not_primary_frame(role.redirect(), "server is fenced after failover"),
        );
        return;
    }
    let reply = match store.subscribe(peer.to_owned(), from) {
        Ok(Ok(reply)) => reply,
        Ok(Err(e)) => {
            let _ = send(w, &storage_error_frame(&e));
            return;
        }
        Err(b) => {
            let _ = send(w, &busy_frame(b.0));
            return;
        }
    };
    // Ack reader: ends when the socket dies (the feeder's next write
    // notices the same) or the replica stops sending.
    let ack = reply.sub.ack.clone();
    let ack_store = Arc::clone(store);
    let _ack_thread = std::thread::Builder::new()
        .name("cypher-ack".to_owned())
        .spawn(move || {
            let mut reader = reader;
            loop {
                match read_request(&mut reader) {
                    Ok(Request::Ack { seq, epoch }) => {
                        if epoch == ack_store.repl_epoch() {
                            ack.note(seq);
                        }
                    }
                    // Anything else on a subscribe stream is noise; a
                    // decode error or EOF ends the stream.
                    Ok(_) => {}
                    Err(_) => return,
                }
            }
        });
    if send(
        w,
        &Response::SubscribeOk {
            seq: reply.seq,
            epoch: store.repl_epoch(),
        },
    )
    .is_err()
    {
        return;
    }
    match reply.start {
        SubscribeStart::Backlog(units) => {
            for u in units {
                let frame = Response::Unit {
                    seq: u.seq,
                    dialect: u.dialect,
                    text: u.text,
                };
                if send(w, &frame).is_err() {
                    return;
                }
            }
        }
        SubscribeStart::Snapshot { seq, bytes } => {
            if send(w, &Response::Snapshot { seq, bytes }).is_err() {
                return;
            }
        }
    }
    loop {
        match reply.sub.rx.recv_timeout(FEED_KEEPALIVE) {
            Ok(u) => {
                let frame = Response::Unit {
                    seq: u.seq,
                    dialect: u.dialect,
                    text: u.text,
                };
                if send(w, &frame).is_err() {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Idle: keepalive. A closed peer socket surfaces here, so
                // a feeder never outlives its replica by more than one
                // interval even with zero write traffic.
                let beacon = Response::SubscribeOk {
                    seq: store.commit_seq(),
                    epoch: store.repl_epoch(),
                };
                if send(w, &beacon).is_err() {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                // Dropped by the hub (lagging, fence, shutdown): end the
                // stream; the replica reconnects and catches up.
                return;
            }
        }
    }
}

/// Serve one live-view delta stream until the client or the hub ends it.
///
/// Protocol: `SubscribeQueryOk` first, then the registration snapshot as
/// a pure-adds `ViewDelta` (seq 0), then one `ViewDelta` per committed
/// statement that changed the view, in commit order. While idle the
/// feeder sends empty `ViewDelta` keepalives so a dead peer socket fails
/// the next write. The request half of the stream becomes a **control
/// stream**: a spawned thread watches it for `UnsubscribeQuery` or
/// `Goodbye` (or EOF), which tears the view down and ends the stream with
/// a clean `Bye`.
fn run_view_feeder(
    reader: BufReader<TcpStream>,
    w: &mut impl std::io::Write,
    store: &Arc<SharedStore>,
    engine: &Engine,
    text: &str,
) {
    let sub = match store.subscribe_view(text.to_owned(), engine.clone()) {
        Ok(Ok(sub)) => sub,
        Ok(Err(e)) => {
            let _ = send(w, &eval_error_frame(&e, text));
            return;
        }
        Err(b) => {
            let _ = send(w, &busy_frame(b.0));
            return;
        }
    };
    let view = sub.reg.id;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let _control_thread = std::thread::Builder::new()
        .name("cypher-view-ctl".to_owned())
        .spawn(move || {
            let mut reader = reader;
            loop {
                match read_request(&mut reader) {
                    Ok(Request::UnsubscribeQuery { .. }) | Ok(Request::Goodbye) | Err(_) => {
                        stop_flag.store(true, Ordering::Release);
                        return;
                    }
                    // Anything else on a delta stream is noise.
                    Ok(_) => {}
                }
            }
        });
    if send(
        w,
        &Response::SubscribeQueryOk {
            view,
            epoch: sub.epoch,
            fallback: sub.reg.fallback,
            columns: sub.reg.columns.clone(),
        },
    )
    .is_err()
    {
        store.unsubscribe_view(view);
        return;
    }
    // The initial rows travel as a pure-adds batch, so a client replaying
    // deltas starts from the registration snapshot with no separate frame
    // kind.
    let snapshot = Response::ViewDelta {
        view,
        seq: 0,
        epoch: sub.epoch,
        adds: sub.reg.rows.clone(),
        removes: Vec::new(),
    };
    if send(w, &snapshot).is_err() {
        store.unsubscribe_view(view);
        return;
    }
    loop {
        if stop.load(Ordering::Acquire) {
            store.unsubscribe_view(view);
            let _ = send(w, &Response::Bye);
            return;
        }
        match sub.events.recv_timeout(FEED_KEEPALIVE) {
            Ok(ev) => {
                let frame = Response::ViewDelta {
                    view: ev.update.view,
                    seq: ev.update.seq,
                    epoch: ev.epoch,
                    adds: ev.update.adds,
                    removes: ev.update.removes,
                };
                if send(w, &frame).is_err() {
                    store.unsubscribe_view(view);
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Idle: empty-batch keepalive, so the feeder never
                // outlives a dead client by more than one interval.
                let beacon = Response::ViewDelta {
                    view,
                    seq: 0,
                    epoch: store.epoch(),
                    adds: Vec::new(),
                    removes: Vec::new(),
                };
                if send(w, &beacon).is_err() {
                    store.unsubscribe_view(view);
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                // Dropped by the hub (feed backlog overflow, fence,
                // snapshot install, maintenance divergence): end the
                // stream; the client re-subscribes for a fresh snapshot.
                return;
            }
        }
    }
}

/// Best-effort wire `Fence` of the demoted primary after a promotion.
pub(crate) fn fence_old_primary(
    fabric: Arc<dyn NetFabric>,
    addr: &str,
    new_primary: &str,
    epoch: u64,
) -> Result<(), crate::client::ClientError> {
    let opts = crate::client::HelloOptions::server_defaults();
    let mut client = crate::client::Client::connect_via(fabric, addr, &opts)?;
    client.fence(new_primary, epoch)?;
    let _ = client.goodbye();
    Ok(())
}

fn read_request(r: &mut impl std::io::Read) -> Result<Request, WireError> {
    let payload = read_frame(r)?;
    Request::decode(&payload)
}

fn send(w: &mut impl std::io::Write, resp: &Response) -> Result<(), WireError> {
    write_frame(w, &resp.encode())
}
