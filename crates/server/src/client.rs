//! Blocking client for the wire protocol.
//!
//! Used by the `cypher-client` binary, the integration tests and the load
//! generator. One [`Client`] is one session: `connect` performs the
//! versioned handshake, `run` executes a statement and pulls every row,
//! and `run_with_retry` resubmits on the retryable `Busy` refusal with
//! linear backoff (the documented client half of the backpressure
//! contract).

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use cypher_graph::Value;

use crate::error::ErrorCode;
use crate::wire::{read_frame, write_frame, Request, Response, WireError, PROTOCOL_VERSION};

/// Session options for the handshake. `None` budget fields defer to the
/// server's values (the `u64::MAX` wire sentinel); `Some` requests are
/// clamped server-side to the operator's configured ceilings — the
/// handshake reply carries the effective limits.
#[derive(Clone, Debug, Default)]
pub struct HelloOptions {
    /// 0 = legacy, 1 = revised, other = server default.
    pub dialect: u8,
    /// 0 = off, 1 = warn, 2 = deny, other = server default.
    pub lint: u8,
    pub max_rows: Option<u64>,
    pub max_writes: Option<u64>,
    pub timeout_ms: Option<u64>,
}

impl HelloOptions {
    /// Server defaults for everything except the dialect/lint bytes,
    /// which default to "server default" too (`0xFF`).
    pub fn server_defaults() -> HelloOptions {
        HelloOptions {
            dialect: 0xFF,
            lint: 0xFF,
            ..HelloOptions::default()
        }
    }
}

/// A `Stats` reply: role, progress counters and per-replica lag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsOutcome {
    /// 0 = primary, 1 = replica, 2 = fenced.
    pub role: u8,
    /// Where writes should go instead (empty on a primary / unknown).
    pub redirect: String,
    pub epoch: u64,
    pub commit_seq: u64,
    pub queue_len: u64,
    /// Replica: highest sequence received from the primary.
    pub primary_seen: u64,
    /// Primary: `(address, highest sequence enqueued)` per subscriber.
    pub replicas: Vec<(String, u64)>,
}

/// A statement's complete outcome: columns, all rows, update stats.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    pub read_only: bool,
    pub epoch: u64,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    /// nodes created, rels created, nodes deleted, rels deleted, props
    /// set, labels added, labels removed (same order as the wire).
    pub stats: [u64; 7],
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    Wire(WireError),
    /// The server answered with an error frame.
    Server {
        code: ErrorCode,
        retryable: bool,
        message: String,
        detail: String,
    },
    /// The server answered, but not with the frame this call expects.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server { code, message, .. } => write!(f, "[{code}] {message}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl ClientError {
    pub fn is_busy(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                retryable: true,
                ..
            }
        )
    }

    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// One connected, handshaken session.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    session: u64,
    limits: String,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs, opts: &HelloOptions) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone().map_err(WireError::Io)?;
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            session: 0,
            limits: String::new(),
        };
        let hello = Request::Hello {
            version: PROTOCOL_VERSION,
            dialect: opts.dialect,
            lint: opts.lint,
            max_rows: opts.max_rows.unwrap_or(u64::MAX),
            max_writes: opts.max_writes.unwrap_or(u64::MAX),
            timeout_ms: opts.timeout_ms.unwrap_or(u64::MAX),
        };
        match client.call(&hello)? {
            Response::HelloOk {
                session, limits, ..
            } => {
                client.session = session;
                client.limits = limits;
                Ok(client)
            }
            other => Err(unexpected(other)),
        }
    }

    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// The session's effective budgets, as the server rendered them.
    pub fn limits(&self) -> &str {
        &self.limits
    }

    /// Run a statement and pull every row.
    pub fn run(&mut self, text: &str) -> ClientResult<RunOutcome> {
        let (read_only, epoch, columns) = match self.call(&Request::Run {
            text: text.to_owned(),
        })? {
            Response::RunOk {
                read_only,
                epoch,
                columns,
            } => (read_only, epoch, columns),
            other => return Err(unexpected(other)),
        };
        let mut rows = Vec::new();
        let stats = loop {
            match self.call(&Request::Pull { max: 1024 })? {
                Response::Rows {
                    rows: block,
                    has_more,
                    stats,
                } => {
                    rows.extend(block);
                    if !has_more {
                        break stats;
                    }
                }
                other => return Err(unexpected(other)),
            }
        };
        Ok(RunOutcome {
            read_only,
            epoch,
            columns,
            rows,
            stats,
        })
    }

    /// [`run`](Client::run), retrying the retryable `Busy` refusal up to
    /// `attempts` times with linear backoff.
    pub fn run_with_retry(&mut self, text: &str, attempts: u32) -> ClientResult<RunOutcome> {
        let mut tries = 0;
        loop {
            match self.run(text) {
                Err(e) if e.is_busy() && tries < attempts => {
                    tries += 1;
                    std::thread::sleep(Duration::from_millis(2 * u64::from(tries)));
                }
                other => return other,
            }
        }
    }

    /// Checkpoint the server's durable store.
    pub fn commit(&mut self) -> ClientResult<()> {
        match self.call(&Request::Commit)? {
            Response::CommitOk => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Discard any half-pulled result.
    pub fn reset(&mut self) -> ClientResult<()> {
        match self.call(&Request::Reset)? {
            Response::ResetOk => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Canonical `CREATE` script of the server's current graph.
    pub fn dump_graph(&mut self) -> ClientResult<String> {
        match self.call(&Request::DumpGraph)? {
            Response::DumpOk { script } => Ok(script),
            other => Err(unexpected(other)),
        }
    }

    /// Committed statement texts in commit order.
    pub fn commit_log(&mut self) -> ClientResult<Vec<String>> {
        match self.call(&Request::CommitLog)? {
            Response::LogOk { statements } => Ok(statements),
            other => Err(unexpected(other)),
        }
    }

    /// Replication and queue statistics snapshot.
    pub fn stats(&mut self) -> ClientResult<StatsOutcome> {
        match self.call(&Request::Stats)? {
            Response::StatsOk {
                role,
                redirect,
                epoch,
                commit_seq,
                queue_len,
                primary_seen,
                replicas,
            } => Ok(StatsOutcome {
                role,
                redirect,
                epoch,
                commit_seq,
                queue_len,
                primary_seen,
                replicas,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Promote a replica to primary (requires `--allow-admin`). Returns
    /// the commit sequence the new primary starts serving writes from.
    pub fn promote(&mut self) -> ClientResult<u64> {
        match self.call(&Request::Promote)? {
            Response::PromoteOk { seq } => Ok(seq),
            other => Err(unexpected(other)),
        }
    }

    /// Durably fence the server (requires `--allow-admin`). `new_primary`
    /// is the address its refusals will redirect writes to ("" = unknown).
    pub fn fence(&mut self, new_primary: &str) -> ClientResult<()> {
        match self.call(&Request::Fence {
            new_primary: new_primary.to_owned(),
        })? {
            Response::FenceOk => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Polite close; consumes the client.
    pub fn goodbye(mut self) -> ClientResult<()> {
        match self.call(&Request::Goodbye)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Ask the server to shut down (requires `--allow-shutdown`).
    pub fn shutdown_server(mut self) -> ClientResult<()> {
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    fn call(&mut self, req: &Request) -> ClientResult<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        let payload = read_frame(&mut self.reader)?;
        match Response::decode(&payload)? {
            Response::Error {
                code,
                retryable,
                message,
                detail,
            } => Err(ClientError::Server {
                code,
                retryable,
                message,
                detail,
            }),
            resp => Ok(resp),
        }
    }
}

fn unexpected(resp: Response) -> ClientError {
    ClientError::Unexpected(format!("{resp:?}"))
}
