//! Blocking client for the wire protocol.
//!
//! Used by the `cypher-client` binary, the integration tests and the load
//! generator. One [`Client`] is one session: `connect` performs the
//! versioned handshake, `run` executes a statement and pulls every row,
//! and `run_with_retry` resubmits on the retryable `Busy` refusal with
//! linear backoff (the documented client half of the backpressure
//! contract). `run_routed` additionally follows the typed `NotPrimary`
//! redirect — after a failover, writes find the new primary without the
//! caller doing anything.
//!
//! All connections go through a [`NetFabric`], so the torture tests can
//! inject deterministic network faults under an unmodified client.

use std::io::{BufReader, BufWriter};
use std::sync::Arc;
use std::time::Duration;

use cypher_graph::Value;
use cypher_ivm::ViewStat;

use crate::error::ErrorCode;
use crate::net::{NetFabric, NetStream, RealNet};
use crate::wire::{read_frame, write_frame, Request, Response, WireError, PROTOCOL_VERSION};

/// Session options for the handshake. `None` budget fields defer to the
/// server's values (the `u64::MAX` wire sentinel); `Some` requests are
/// clamped server-side to the operator's configured ceilings — the
/// handshake reply carries the effective limits.
#[derive(Clone, Debug, Default)]
pub struct HelloOptions {
    /// 0 = legacy, 1 = revised, other = server default.
    pub dialect: u8,
    /// 0 = off, 1 = warn, 2 = deny, other = server default.
    pub lint: u8,
    pub max_rows: Option<u64>,
    pub max_writes: Option<u64>,
    pub timeout_ms: Option<u64>,
}

impl HelloOptions {
    /// Server defaults for everything except the dialect/lint bytes,
    /// which default to "server default" too (`0xFF`).
    pub fn server_defaults() -> HelloOptions {
        HelloOptions {
            dialect: 0xFF,
            lint: 0xFF,
            ..HelloOptions::default()
        }
    }
}

/// A `Stats` reply: role, progress counters and per-replica lag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsOutcome {
    /// 0 = primary, 1 = replica, 2 = fenced.
    pub role: u8,
    /// Where writes should go instead (empty on a primary / unknown).
    pub redirect: String,
    pub epoch: u64,
    pub commit_seq: u64,
    pub queue_len: u64,
    /// Replica: highest sequence received from the primary.
    pub primary_seen: u64,
    /// The replication epoch this server believes is current.
    pub repl_epoch: u64,
    /// Quorum state byte (0 async, 1 in-sync, 2 degraded, 3 timed-out).
    pub quorum: u8,
    /// Subscribers dropped because their feed backlog overflowed.
    pub overflow_drops: u64,
    /// Primary: `(address, sent seq, durably acked seq)` per subscriber.
    pub replicas: Vec<(String, u64, u64)>,
    /// Registered live views and their maintenance counters.
    pub views: Vec<ViewStat>,
}

/// A `SubscribeQueryOk` reply: the view's identity and shape. The view's
/// initial rows follow as the first [`ViewDeltaBatch`] (all adds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewSubscribed {
    pub view: u64,
    /// Snapshot epoch the registration observed.
    pub epoch: u64,
    /// `true` when the server re-evaluates the query in full at every
    /// commit instead of maintaining it incrementally.
    pub fallback: bool,
    pub columns: Vec<String>,
}

/// One ordered delta batch on a live-view stream. An empty batch (no adds,
/// no removes) is the server's idle keepalive.
#[derive(Clone, Debug, PartialEq)]
pub struct ViewDeltaBatch {
    pub view: u64,
    /// Commit sequence of the producing statement; 0 for the initial
    /// snapshot batch and keepalives.
    pub seq: u64,
    pub epoch: u64,
    pub adds: Vec<(Vec<Value>, u64)>,
    pub removes: Vec<(Vec<Value>, u64)>,
}

impl ViewDeltaBatch {
    pub fn is_keepalive(&self) -> bool {
        self.adds.is_empty() && self.removes.is_empty()
    }
}

/// A statement's complete outcome: columns, all rows, update stats.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    pub read_only: bool,
    pub epoch: u64,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    /// nodes created, rels created, nodes deleted, rels deleted, props
    /// set, labels added, labels removed (same order as the wire).
    pub stats: [u64; 7],
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    Wire(WireError),
    /// The server answered with an error frame.
    Server {
        code: ErrorCode,
        retryable: bool,
        message: String,
        detail: String,
    },
    /// The server answered, but not with the frame this call expects.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server { code, message, .. } => write!(f, "[{code}] {message}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl ClientError {
    /// An admission-control refusal: the statement was never admitted, so
    /// resubmitting it verbatim is always safe. Other retryable errors are
    /// deliberately excluded — a `replication-timeout` write in particular
    /// is already durable on the primary, and blindly re-running a
    /// non-idempotent statement would duplicate its effects.
    pub fn is_busy(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: ErrorCode::Busy,
                retryable: true,
                ..
            }
        )
    }

    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// How many `NotPrimary` redirects [`Client::run_routed`] follows before
/// giving up (a redirect loop means the cluster is mid-failover).
const MAX_REDIRECT_HOPS: u32 = 4;

/// One connected, handshaken session.
pub struct Client {
    reader: BufReader<Box<dyn NetStream>>,
    writer: BufWriter<Box<dyn NetStream>>,
    session: u64,
    limits: String,
    /// Kept for reconnects: `run_routed` re-dials through the same fabric
    /// with the same handshake when a `NotPrimary` redirect arrives.
    fabric: Arc<dyn NetFabric>,
    addr: String,
    opts: HelloOptions,
}

impl Client {
    /// Connect over plain TCP (the production fabric).
    pub fn connect(addr: impl ToString, opts: &HelloOptions) -> ClientResult<Client> {
        Client::connect_via(RealNet::fabric(), &addr.to_string(), opts)
    }

    /// Connect through an explicit [`NetFabric`] (fault injection, tests).
    pub fn connect_via(
        fabric: Arc<dyn NetFabric>,
        addr: &str,
        opts: &HelloOptions,
    ) -> ClientResult<Client> {
        let stream = fabric.connect(addr, None).map_err(WireError::Io)?;
        let read_half = stream.try_clone_stream().map_err(WireError::Io)?;
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            session: 0,
            limits: String::new(),
            fabric,
            addr: addr.to_owned(),
            opts: opts.clone(),
        };
        let hello = Request::Hello {
            version: PROTOCOL_VERSION,
            dialect: opts.dialect,
            lint: opts.lint,
            max_rows: opts.max_rows.unwrap_or(u64::MAX),
            max_writes: opts.max_writes.unwrap_or(u64::MAX),
            timeout_ms: opts.timeout_ms.unwrap_or(u64::MAX),
        };
        match client.call(&hello)? {
            Response::HelloOk {
                session, limits, ..
            } => {
                client.session = session;
                client.limits = limits;
                Ok(client)
            }
            other => Err(unexpected(other)),
        }
    }

    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// The address this client is currently connected to (changes when
    /// [`run_routed`](Client::run_routed) follows a redirect).
    pub fn connected_addr(&self) -> &str {
        &self.addr
    }

    /// The session's effective budgets, as the server rendered them.
    pub fn limits(&self) -> &str {
        &self.limits
    }

    /// Run a statement and pull every row.
    pub fn run(&mut self, text: &str) -> ClientResult<RunOutcome> {
        let (read_only, epoch, columns) = match self.call(&Request::Run {
            text: text.to_owned(),
        })? {
            Response::RunOk {
                read_only,
                epoch,
                columns,
            } => (read_only, epoch, columns),
            other => return Err(unexpected(other)),
        };
        let mut rows = Vec::new();
        let stats = loop {
            match self.call(&Request::Pull { max: 1024 })? {
                Response::Rows {
                    rows: block,
                    has_more,
                    stats,
                } => {
                    rows.extend(block);
                    if !has_more {
                        break stats;
                    }
                }
                other => return Err(unexpected(other)),
            }
        };
        Ok(RunOutcome {
            read_only,
            epoch,
            columns,
            rows,
            stats,
        })
    }

    /// [`run`](Client::run), retrying the retryable `Busy` refusal up to
    /// `attempts` times with linear backoff.
    pub fn run_with_retry(&mut self, text: &str, attempts: u32) -> ClientResult<RunOutcome> {
        let mut tries = 0;
        loop {
            match self.run(text) {
                Err(e) if e.is_busy() && tries < attempts => {
                    tries += 1;
                    std::thread::sleep(Duration::from_millis(2 * u64::from(tries)));
                }
                other => return other,
            }
        }
    }

    /// [`run`](Client::run), additionally following the typed `NotPrimary`
    /// redirect: when the server refuses a write because it is a replica
    /// or a fenced ex-primary, the error's detail carries the primary's
    /// address — reconnect there (same fabric, same handshake) and
    /// resubmit, up to [`MAX_REDIRECT_HOPS`] hops with linear backoff.
    /// A redirect without an address is returned as-is (nothing to
    /// follow); so is any other error.
    pub fn run_routed(&mut self, text: &str) -> ClientResult<RunOutcome> {
        let mut hops = 0;
        loop {
            match self.run(text) {
                Err(ClientError::Server {
                    code: ErrorCode::NotPrimary,
                    detail,
                    message,
                    retryable,
                }) if hops < MAX_REDIRECT_HOPS => {
                    if detail.is_empty() {
                        return Err(ClientError::Server {
                            code: ErrorCode::NotPrimary,
                            detail,
                            message,
                            retryable,
                        });
                    }
                    hops += 1;
                    // Backoff before re-dialing: mid-failover the redirect
                    // target may itself still be settling into the role.
                    std::thread::sleep(Duration::from_millis(20 * u64::from(hops)));
                    let next =
                        Client::connect_via(Arc::clone(&self.fabric), &detail, &self.opts.clone())?;
                    *self = next;
                }
                other => return other,
            }
        }
    }

    /// Checkpoint the server's durable store.
    pub fn commit(&mut self) -> ClientResult<()> {
        match self.call(&Request::Commit)? {
            Response::CommitOk => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Discard any half-pulled result.
    pub fn reset(&mut self) -> ClientResult<()> {
        match self.call(&Request::Reset)? {
            Response::ResetOk => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Canonical `CREATE` script of the server's current graph.
    pub fn dump_graph(&mut self) -> ClientResult<String> {
        match self.call(&Request::DumpGraph)? {
            Response::DumpOk { script } => Ok(script),
            other => Err(unexpected(other)),
        }
    }

    /// Committed statement texts in commit order.
    pub fn commit_log(&mut self) -> ClientResult<Vec<String>> {
        match self.call(&Request::CommitLog)? {
            Response::LogOk { statements } => Ok(statements),
            other => Err(unexpected(other)),
        }
    }

    /// Replication and queue statistics snapshot.
    pub fn stats(&mut self) -> ClientResult<StatsOutcome> {
        match self.call(&Request::Stats)? {
            Response::StatsOk {
                role,
                redirect,
                epoch,
                commit_seq,
                queue_len,
                primary_seen,
                repl_epoch,
                quorum,
                overflow_drops,
                replicas,
                views,
            } => Ok(StatsOutcome {
                role,
                redirect,
                epoch,
                commit_seq,
                queue_len,
                primary_seen,
                repl_epoch,
                quorum,
                overflow_drops,
                replicas,
                views,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Register `text` as a live maintained view. **Terminal** for this
    /// session: on success the server speaks only `ViewDelta` frames —
    /// drain them with [`next_view_delta`](Client::next_view_delta) and
    /// end the stream with
    /// [`unsubscribe_query`](Client::unsubscribe_query). The view's
    /// initial rows arrive as the first batch (all adds, seq 0).
    pub fn subscribe_query(&mut self, text: &str) -> ClientResult<ViewSubscribed> {
        match self.call(&Request::SubscribeQuery {
            text: text.to_owned(),
        })? {
            Response::SubscribeQueryOk {
                view,
                epoch,
                fallback,
                columns,
            } => Ok(ViewSubscribed {
                view,
                epoch,
                fallback,
                columns,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Block for the next delta batch on a live-view stream. Empty batches
    /// are keepalives; callers who only care about data can skip them with
    /// [`ViewDeltaBatch::is_keepalive`].
    pub fn next_view_delta(&mut self) -> ClientResult<ViewDeltaBatch> {
        let payload = read_frame(&mut self.reader)?;
        match Response::decode(&payload)? {
            Response::ViewDelta {
                view,
                seq,
                epoch,
                adds,
                removes,
            } => Ok(ViewDeltaBatch {
                view,
                seq,
                epoch,
                adds,
                removes,
            }),
            Response::Error {
                code,
                retryable,
                message,
                detail,
            } => Err(ClientError::Server {
                code,
                retryable,
                message,
                detail,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// End a live-view stream: tear down view `view` server-side and wait
    /// for the clean `Bye`, discarding delta frames still in flight.
    /// Consumes the client — the session is over.
    pub fn unsubscribe_query(mut self, view: u64) -> ClientResult<()> {
        write_frame(
            &mut self.writer,
            &Request::UnsubscribeQuery { view }.encode(),
        )?;
        loop {
            let payload = read_frame(&mut self.reader)?;
            match Response::decode(&payload)? {
                Response::Bye => return Ok(()),
                Response::ViewDelta { .. } => {}
                other => return Err(unexpected(other)),
            }
        }
    }

    /// Promote a replica to primary (requires `--allow-admin`). Returns
    /// the commit sequence the new primary starts serving writes from.
    pub fn promote(&mut self) -> ClientResult<u64> {
        match self.call(&Request::Promote)? {
            Response::PromoteOk { seq } => Ok(seq),
            other => Err(unexpected(other)),
        }
    }

    /// Durably fence the server (requires `--allow-admin`). `new_primary`
    /// is the address its refusals will redirect writes to ("" = unknown);
    /// `epoch` is the replication epoch the fencer acts in (the marker
    /// keeps the highest ever written).
    pub fn fence(&mut self, new_primary: &str, epoch: u64) -> ClientResult<()> {
        match self.call(&Request::Fence {
            new_primary: new_primary.to_owned(),
            epoch,
        })? {
            Response::FenceOk => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Polite close; consumes the client.
    pub fn goodbye(mut self) -> ClientResult<()> {
        match self.call(&Request::Goodbye)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Ask the server to shut down (requires `--allow-shutdown`).
    pub fn shutdown_server(mut self) -> ClientResult<()> {
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    fn call(&mut self, req: &Request) -> ClientResult<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        let payload = read_frame(&mut self.reader)?;
        match Response::decode(&payload)? {
            Response::Error {
                code,
                retryable,
                message,
                detail,
            } => Err(ClientError::Server {
                code,
                retryable,
                message,
                detail,
            }),
            resp => Ok(resp),
        }
    }
}

fn unexpected(resp: Response) -> ClientError {
    ClientError::Unexpected(format!("{resp:?}"))
}
