//! Server configuration.

use std::path::PathBuf;
use std::time::Duration;

use cypher_core::{Dialect, ExecLimits, LintMode};

/// Everything `cypher-serve` needs to run, with defaults suitable for
/// tests (ephemeral port, no shutdown frame, modest capacity).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; port `0` picks an ephemeral port (the bound address
    /// is reported by [`ServerHandle::addr`](crate::ServerHandle::addr)).
    pub addr: String,
    /// Directory for the durable store (WAL + snapshots).
    pub data_dir: PathBuf,
    /// Dialect sessions get unless their `Hello` overrides it.
    pub dialect: Dialect,
    /// Lint policy sessions get unless their `Hello` overrides it.
    pub lint: LintMode,
    /// Session budgets applied when the `Hello` leaves them at the
    /// server-default sentinel.
    pub limits: ExecLimits,
    /// Global cap on statements executing at once (readers and writers).
    /// Admission beyond the cap fails with the retryable `Busy` error.
    pub max_inflight: usize,
    /// Bound of the apply queue; a full queue refuses writers with `Busy`.
    pub queue_depth: usize,
    /// Statements the apply worker group-commits under one fsync.
    pub max_batch: usize,
    /// Whether the `Shutdown` frame is honored (off by default; the load
    /// test and verify scripts turn it on).
    pub allow_shutdown: bool,
}

impl ServerConfig {
    /// Defaults: ephemeral loopback port, revised dialect, lint off,
    /// unlimited budgets, 64 in-flight, queue of 128, batches of 32.
    pub fn new(data_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            data_dir: data_dir.into(),
            dialect: Dialect::Revised,
            lint: LintMode::Off,
            limits: ExecLimits::NONE,
            max_inflight: 64,
            queue_depth: 128,
            max_batch: 32,
            allow_shutdown: false,
        }
    }

    pub fn with_limits(mut self, limits: ExecLimits) -> ServerConfig {
        self.limits = limits;
        self
    }

    /// Parse a `Hello` budget field: the `u64::MAX` sentinel keeps the
    /// server default.
    pub fn session_limits(&self, max_rows: u64, max_writes: u64, timeout_ms: u64) -> ExecLimits {
        let pick = |wire: u64, fallback: Option<u64>| match wire {
            u64::MAX => fallback,
            n => Some(n),
        };
        ExecLimits {
            max_rows: pick(max_rows, self.limits.max_rows),
            max_writes: pick(max_writes, self.limits.max_writes),
            timeout: match timeout_ms {
                u64::MAX => self.limits.timeout,
                ms => Some(Duration::from_millis(ms)),
            },
        }
    }
}
