//! Server configuration.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use cypher_core::{Dialect, ExecLimits, LintMode};
use cypher_replication::SyncPolicy;

use crate::net::{NetFabric, RealNet};

/// Everything `cypher-serve` needs to run, with defaults suitable for
/// tests (ephemeral port, no shutdown frame, modest capacity).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; port `0` picks an ephemeral port (the bound address
    /// is reported by [`ServerHandle::addr`](crate::ServerHandle::addr)).
    pub addr: String,
    /// Directory for the durable store (WAL + snapshots).
    pub data_dir: PathBuf,
    /// Dialect sessions get unless their `Hello` overrides it.
    pub dialect: Dialect,
    /// Lint policy sessions get unless their `Hello` overrides it.
    pub lint: LintMode,
    /// Session budgets: applied when a `Hello` leaves a field at the
    /// server-default sentinel, and a hard ceiling otherwise — a client
    /// may tighten its budgets but never raise them past the operator's
    /// flags (see [`session_limits`](ServerConfig::session_limits)).
    pub limits: ExecLimits,
    /// Global cap on statements executing at once (readers and writers).
    /// Admission beyond the cap fails with the retryable `Busy` error.
    pub max_inflight: usize,
    /// Bound of the apply queue; a full queue refuses writers with `Busy`.
    pub queue_depth: usize,
    /// Statements the apply worker group-commits under one fsync.
    pub max_batch: usize,
    /// Whether the `Shutdown` frame is honored (off by default; the load
    /// test and verify scripts turn it on).
    pub allow_shutdown: bool,
    /// Whether the `Promote` and `Fence` admin frames are honored (off by
    /// default — failover is an operator action, not a client one).
    pub allow_admin: bool,
    /// Start as a replica tailing the primary at this address. The server
    /// rejects client writes with `NotPrimary` and applies shipped units
    /// instead; `Promote` (when admin frames are allowed) turns it into a
    /// primary.
    pub replica_of: Option<String>,
    /// The address this server tells peers to reach it at (for fencing
    /// redirects and `Stats`); defaults to the bound listen address, which
    /// is wrong behind NAT or with port 0.
    pub advertise_addr: Option<String>,
    /// How many replicas must confirm durable application before a write
    /// is acknowledged to the client. `0` (the default) is classic
    /// asynchronous shipping: acks gate only on the primary's fsync.
    pub sync_replicas: usize,
    /// How long the group-commit worker waits for the quorum before the
    /// batch is handled per [`sync_policy`](ServerConfig::sync_policy).
    pub sync_timeout: Duration,
    /// What a quorum timeout does to the waiting writes: `Strict` refuses
    /// them with the retryable `ReplicationTimeout` error, `Degrade` acks
    /// them anyway and surfaces the downgrade in `Stats`.
    pub sync_policy: SyncPolicy,
    /// Primary-liveness lease in milliseconds; `0` (the default) disables
    /// automatic failover entirely. On a replica, a lease that goes this
    /// long without a frame from the primary triggers an election.
    pub lease_ms: u64,
    /// Peer replicas consulted during an election (their client addresses).
    /// An empty set means this replica elects itself when the lease
    /// expires — fine for a single-replica pair, dangerous beyond it.
    pub peers: Vec<String>,
    /// The transport used for *outbound* connections (tailer, fencing,
    /// election probes). Tests swap in [`FaultNet`](crate::net::FaultNet)
    /// to inject partitions and losses deterministically.
    pub net: Arc<dyn NetFabric>,
    /// Worker threads available to each session's read executor (the
    /// morsel-driven parallel `MATCH` path). `1` pins every read to its
    /// session thread — the serial executor. Defaults to the machine's
    /// available parallelism; the workers live in one process-wide pool,
    /// so concurrent sessions share threads rather than multiply them.
    pub read_workers: usize,
    /// Rows per morsel for the parallel read executor.
    pub morsel_size: usize,
    /// Minimum estimated rows before a `MATCH` clause goes parallel;
    /// below it the fan-out overhead outweighs the win.
    pub parallel_threshold: usize,
}

impl ServerConfig {
    /// Defaults: ephemeral loopback port, revised dialect, lint off,
    /// unlimited budgets, 64 in-flight, queue of 128, batches of 32.
    pub fn new(data_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            data_dir: data_dir.into(),
            dialect: Dialect::Revised,
            lint: LintMode::Off,
            limits: ExecLimits::NONE,
            max_inflight: 64,
            queue_depth: 128,
            max_batch: 32,
            allow_shutdown: false,
            allow_admin: false,
            replica_of: None,
            advertise_addr: None,
            sync_replicas: 0,
            sync_timeout: Duration::from_secs(5),
            sync_policy: SyncPolicy::Strict,
            lease_ms: 0,
            peers: Vec::new(),
            net: RealNet::fabric(),
            read_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            morsel_size: 128,
            parallel_threshold: 64,
        }
    }

    pub fn with_limits(mut self, limits: ExecLimits) -> ServerConfig {
        self.limits = limits;
        self
    }

    /// Resolve a `Hello`'s budget fields against the server config: the
    /// `u64::MAX` sentinel takes the server value verbatim; any other
    /// request is **clamped** to the server-configured budget when one
    /// exists. Operator flags are hard ceilings, not defaults — a hostile
    /// or buggy client cannot lift its own limits past them.
    pub fn session_limits(&self, max_rows: u64, max_writes: u64, timeout_ms: u64) -> ExecLimits {
        let pick = |wire: u64, ceiling: Option<u64>| match (wire, ceiling) {
            (u64::MAX, c) => c,
            (n, Some(c)) => Some(n.min(c)),
            (n, None) => Some(n),
        };
        ExecLimits {
            max_rows: pick(max_rows, self.limits.max_rows),
            max_writes: pick(max_writes, self.limits.max_writes),
            timeout: match (timeout_ms, self.limits.timeout) {
                (u64::MAX, ceiling) => ceiling,
                (ms, Some(ceiling)) => Some(Duration::from_millis(ms).min(ceiling)),
                (ms, None) => Some(Duration::from_millis(ms)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounded() -> ServerConfig {
        ServerConfig::new("unused").with_limits(ExecLimits {
            max_rows: Some(100),
            max_writes: Some(10),
            timeout: Some(Duration::from_millis(500)),
        })
    }

    #[test]
    fn sentinel_takes_server_values() {
        let l = bounded().session_limits(u64::MAX, u64::MAX, u64::MAX);
        assert_eq!(l.max_rows, Some(100));
        assert_eq!(l.max_writes, Some(10));
        assert_eq!(l.timeout, Some(Duration::from_millis(500)));
    }

    #[test]
    fn client_may_tighten_but_not_raise_budgets() {
        // Tightening is honored…
        let l = bounded().session_limits(50, 5, 100);
        assert_eq!(l.max_rows, Some(50));
        assert_eq!(l.max_writes, Some(5));
        assert_eq!(l.timeout, Some(Duration::from_millis(100)));
        // …raising is clamped back to the operator's flags.
        let l = bounded().session_limits(1_000_000, u64::MAX - 1, 60_000);
        assert_eq!(l.max_rows, Some(100));
        assert_eq!(l.max_writes, Some(10));
        assert_eq!(l.timeout, Some(Duration::from_millis(500)));
    }

    #[test]
    fn unbounded_server_accepts_any_client_budget() {
        let cfg = ServerConfig::new("unused");
        let l = cfg.session_limits(7, u64::MAX, 250);
        assert_eq!(l.max_rows, Some(7));
        assert_eq!(l.max_writes, None);
        assert_eq!(l.timeout, Some(Duration::from_millis(250)));
    }
}
