//! TCP listener, accept loop and clean shutdown.
//!
//! Thread-per-connection over blocking `std::net` sockets — no async
//! runtime. Shutdown is cooperative: a flag flips, the accept loop is
//! woken with a self-connection, and every live session socket is shut
//! down so its blocking `read` returns; session threads are then joined,
//! the apply worker drains and flushes, and the bound port is released.

use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cypher_replication::{Lease, Role};
use cypher_storage::DurableGraph;

use crate::config::ServerConfig;
use crate::failover::{spawn_monitor, FailoverConfig};
use crate::replica::spawn_tailer;
use crate::session::run_session;
use crate::store::{SharedStore, StoreOptions};

/// A running server. Dropping the handle does NOT stop it; call
/// [`ServerHandle::stop`].
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    store: Arc<SharedStore>,
    /// Tells the replica tailer and failover monitor (when they run) to
    /// stop reconnecting / electing.
    tailer_stop: Arc<AtomicBool>,
    tailer: Mutex<Option<JoinHandle<()>>>,
    monitor: Mutex<Option<JoinHandle<()>>>,
}

struct Shared {
    stopping: AtomicBool,
    next_session: AtomicU64,
    /// One clone of every live session's stream, used to unblock their
    /// reads at shutdown. Sessions remove themselves when they exit.
    live: Mutex<Vec<(u64, TcpStream)>>,
    /// Join handles of session threads. Finished handles are reaped each
    /// time a new connection is accepted; the remainder are joined when
    /// the accept loop exits.
    sessions: Mutex<Vec<JoinHandle<()>>>,
}

/// Open the durable store, bind the listener and start accepting.
///
/// With `replica_of` set the store starts in the replica role and a
/// tailer thread dials the primary; a durably fenced data directory
/// overrides either role to `Fenced` (see [`SharedStore::start`]).
pub fn serve(config: ServerConfig) -> std::io::Result<ServerHandle> {
    std::fs::create_dir_all(&config.data_dir)?;
    let durable = DurableGraph::open(&config.data_dir).map_err(std::io::Error::other)?;
    let role = match &config.replica_of {
        Some(primary) => Role::Replica {
            primary: primary.clone(),
        },
        None => Role::Primary,
    };
    let store = SharedStore::start_with(
        durable,
        StoreOptions {
            queue_depth: config.queue_depth,
            max_batch: config.max_batch,
            max_inflight: config.max_inflight,
            role,
            sync_replicas: config.sync_replicas,
            sync_timeout: config.sync_timeout,
            sync_policy: config.sync_policy,
        },
    );
    serve_with(config, store)
}

/// Start the listener over an already-running store (tests use this to
/// share a store between direct handles and the network path).
pub fn serve_with(
    mut config: ServerConfig,
    store: Arc<SharedStore>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    // Sessions need a concrete address to hand to peers (fence redirects
    // after promotion); default to the bound one.
    config
        .advertise_addr
        .get_or_insert_with(|| addr.to_string());
    let shared = Arc::new(Shared {
        stopping: AtomicBool::new(false),
        next_session: AtomicU64::new(1),
        live: Mutex::new(Vec::new()),
        sessions: Mutex::new(Vec::new()),
    });

    // A replica (and only a replica — a fenced store must not tail) gets
    // a tailer thread pulling the primary's stream, plus — when a lease
    // TTL is configured — a failover monitor watching the lease the
    // tailer renews.
    let tailer_stop = Arc::new(AtomicBool::new(false));
    let (tailer, monitor) = match store.role().get() {
        Role::Replica { .. } => {
            let lease_ttl = if config.lease_ms > 0 {
                // Clamp to a floor of several keepalive intervals: below
                // that, an idle-but-healthy stream would expire the lease
                // between heartbeats and usurp a live primary.
                Duration::from_millis(config.lease_ms)
                    .max(crate::session::FEED_KEEPALIVE * crate::session::MIN_LEASE_KEEPALIVES)
            } else {
                // Failover disabled: a lease nothing ever checks.
                Duration::from_secs(u64::MAX / 4)
            };
            let lease = Arc::new(Lease::new(lease_ttl));
            let tailer = spawn_tailer(
                Arc::clone(&store),
                Arc::clone(&config.net),
                Arc::clone(&lease),
                Arc::clone(&tailer_stop),
            );
            let monitor = if config.lease_ms > 0 {
                let self_addr = config
                    .advertise_addr
                    .clone()
                    .unwrap_or_else(|| addr.to_string());
                spawn_monitor(
                    Arc::clone(&store),
                    Arc::clone(&config.net),
                    lease,
                    FailoverConfig {
                        self_addr,
                        peers: config.peers.clone(),
                    },
                    Arc::clone(&tailer_stop),
                )
            } else {
                None
            };
            (tailer, monitor)
        }
        _ => (None, None),
    };

    let accept_shared = Arc::clone(&shared);
    let accept_store = Arc::clone(&store);
    let accept_thread = std::thread::Builder::new()
        .name("cypher-accept".to_owned())
        .spawn(move || accept_loop(listener, config, accept_shared, accept_store))?;

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Mutex::new(Some(accept_thread)),
        store,
        tailer_stop,
        tailer: Mutex::new(tailer),
        monitor: Mutex::new(monitor),
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    pub fn store(&self) -> &Arc<SharedStore> {
        &self.store
    }

    /// Has a session requested shutdown (or [`stop`](ServerHandle::stop)
    /// been called)?
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping.load(Ordering::Acquire)
    }

    /// Block until the accept loop exits (i.e. until shutdown is
    /// requested by a session's `Shutdown` frame).
    pub fn wait(&self) {
        if let Ok(mut guard) = self.accept_thread.lock() {
            if let Some(h) = guard.take() {
                let _ = h.join();
            }
        }
    }

    /// Stop accepting, unblock and join every session, stop the tailer,
    /// checkpoint, then drain and flush the apply queue. Idempotent.
    ///
    /// The checkpoint is the "clean exit" half of the shutdown contract
    /// (the wire `Shutdown` frame and SIGTERM both land here): the next
    /// start recovers from the snapshot instead of replaying the WAL, and
    /// the primary's bootstrap window restarts at this point. Best-effort
    /// — a sealed or fenced store skips it and still flushes.
    pub fn stop(&self) {
        request_stop(&self.shared, self.addr);
        self.wait();
        self.tailer_stop.store(true, Ordering::Release);
        if let Ok(mut guard) = self.tailer.lock() {
            if let Some(h) = guard.take() {
                let _ = h.join();
            }
        }
        if let Ok(mut guard) = self.monitor.lock() {
            if let Some(h) = guard.take() {
                let _ = h.join();
            }
        }
        if let Ok(Err(e)) = self.store.checkpoint() {
            eprintln!("cypher-serve: shutdown checkpoint skipped: {e}");
        }
        self.store.shutdown();
    }
}

fn request_stop(shared: &Arc<Shared>, addr: std::net::SocketAddr) {
    if shared.stopping.swap(true, Ordering::AcqRel) {
        return;
    }
    // Wake the blocking accept with a throwaway connection.
    let _ = TcpStream::connect(addr);
    // Unblock every session stuck in read_frame.
    if let Ok(live) = shared.live.lock() {
        for (_, stream) in live.iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    config: ServerConfig,
    shared: Arc<Shared>,
    store: Arc<SharedStore>,
) {
    let addr = listener.local_addr().ok();
    for incoming in listener.incoming() {
        if shared.stopping.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = incoming else { continue };
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        if let (Ok(clone), Ok(mut live)) = (stream.try_clone(), shared.live.lock()) {
            live.push((id, clone));
        }
        let config = config.clone();
        let session_shared = Arc::clone(&shared);
        let session_store = Arc::clone(&store);
        let handle = std::thread::Builder::new()
            .name(format!("cypher-session-{id}"))
            .spawn(move || {
                let wants_shutdown = run_session(stream, id, &config, &session_store);
                if let Ok(mut live) = session_shared.live.lock() {
                    live.retain(|(sid, _)| *sid != id);
                }
                if wants_shutdown {
                    if let Some(addr) = addr {
                        request_stop(&session_shared, addr);
                    }
                }
            });
        if let Ok(handle) = handle {
            if let Ok(mut sessions) = shared.sessions.lock() {
                // Reap exited sessions opportunistically so a long-running
                // server doesn't hold one JoinHandle per connection ever
                // accepted.
                sessions.retain(|h| !h.is_finished());
                sessions.push(handle);
            }
        }
    }
    // Stopping: join sessions so their last responses are flushed before
    // the caller tears the store down.
    let handles = shared
        .sessions
        .lock()
        .map(|mut s| std::mem::take(&mut *s))
        .unwrap_or_default();
    for h in handles {
        let _ = h.join();
    }
}
