//! Virtualized wire transport for deterministic network fault injection.
//!
//! The storage layer already virtualizes the filesystem behind
//! `StorageFs`/`FaultFs` so torture tests can kill a write at the N-th
//! operation; this module is the same idea for the network. Everything
//! that *dials* — the client library, the replica tailer, the failover
//! monitor's election probes and fencing calls — goes through a
//! [`NetFabric`], and every byte it moves goes through a [`NetStream`].
//! The accept side stays a real `TcpListener`: faults are injected where
//! the protocol acts on the network (connects, reads, writes), which is
//! exactly the surface a partition or a dying switch corrupts.
//!
//! [`RealNet`] is the production fabric (plain `TcpStream`s). [`FaultNet`]
//! wraps it and injects one configured fault at the N-th transport
//! operation — connects, reads and writes share one deterministic op
//! counter, so a torture harness can first run a *counting pass* (no
//! fault, count the ops), then replay the same scenario once per op index
//! with the fault armed at each. Partitions are address-based and stay up
//! until [`FaultNet::heal`] — a partitioned peer fails every op with a
//! connection error rather than hanging, so tests stay fast and the
//! tailer/feeder retry paths (which treat any error identically) are the
//! ones exercised.

use std::collections::HashSet;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One bidirectional byte stream. `Read`/`Write` move the bytes; the
/// extra methods expose the socket controls the server and tailer need.
pub trait NetStream: Read + Write + Send {
    /// Read timeout for dead-peer detection (`None` blocks forever).
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()>;
    /// An independently owned handle to the same stream (read half /
    /// write half split, like `TcpStream::try_clone`).
    fn try_clone_stream(&self) -> io::Result<Box<dyn NetStream>>;
    /// The remote address, for labels and partition matching.
    fn peer_label(&self) -> String;
}

/// A dialer: everything client-side goes through one of these.
pub trait NetFabric: Send + Sync + std::fmt::Debug {
    /// Connect to `addr`, optionally bounded by `timeout` (used by
    /// election probes, which must not hang on a dead peer).
    fn connect(&self, addr: &str, timeout: Option<Duration>) -> io::Result<Box<dyn NetStream>>;
}

// ---------------------------------------------------------------------------
// RealNet
// ---------------------------------------------------------------------------

/// The production fabric: plain TCP with `TCP_NODELAY`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealNet;

impl RealNet {
    /// A shared handle to the one stateless real fabric.
    pub fn fabric() -> Arc<dyn NetFabric> {
        Arc::new(RealNet)
    }
}

impl NetFabric for RealNet {
    fn connect(&self, addr: &str, timeout: Option<Duration>) -> io::Result<Box<dyn NetStream>> {
        let stream = match timeout {
            None => TcpStream::connect(addr)?,
            Some(t) => {
                // connect_timeout needs a resolved SocketAddr.
                let resolved = addr
                    .to_socket_addrs()?
                    .next()
                    .ok_or_else(|| io::Error::other(format!("no address for {addr}")))?;
                TcpStream::connect_timeout(&resolved, t)?
            }
        };
        stream.set_nodelay(true).ok();
        Ok(Box::new(RealStream { inner: stream }))
    }
}

struct RealStream {
    inner: TcpStream,
}

impl Read for RealStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Write for RealStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl NetStream for RealStream {
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(t)
    }
    fn try_clone_stream(&self) -> io::Result<Box<dyn NetStream>> {
        Ok(Box::new(RealStream {
            inner: self.inner.try_clone()?,
        }))
    }
    fn peer_label(&self) -> String {
        self.inner
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_owned())
    }
}

// ---------------------------------------------------------------------------
// FaultNet
// ---------------------------------------------------------------------------

/// What happens at the armed operation index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// The op fails with a connection error (a dropped frame/connection;
    /// the peer sees a torn stream).
    Drop,
    /// The op is stalled for the given duration first, then performed
    /// (an extreme latency spike — long enough to expire leases or read
    /// timeouts when configured so).
    Delay(Duration),
    /// A write's bytes go out twice (a duplicated frame on the wire; with
    /// buffered frame-at-a-time writers this duplicates whole frames, and
    /// the replication protocol must de-duplicate by sequence).
    DuplicateWrite,
    /// From this op on, **every** address this fabric dials is
    /// partitioned (ops fail with a connection error) until
    /// [`FaultNet::heal`].
    Partition,
}

#[derive(Debug, Default)]
struct FaultPlan {
    /// Fire the fault when the shared op counter hits this 1-based index.
    at_op: u64,
    fault: Option<NetFault>,
    /// Fire at most once (except `Partition`, which latches).
    fired: bool,
}

/// Shared mutable state of a [`FaultNet`] (one per torture scenario, no
/// matter how many clones and streams exist).
#[derive(Debug)]
struct FaultState {
    ops: AtomicU64,
    plan: Mutex<FaultPlan>,
    /// Everything unreachable (the armed `Partition` fault latches this).
    partition_all: AtomicBool,
    /// Selectively unreachable addresses, as dialed.
    partitioned: Mutex<HashSet<String>>,
}

impl FaultState {
    fn is_partitioned(&self, addr: &str) -> bool {
        if self.partition_all.load(Ordering::Acquire) {
            return true;
        }
        self.partitioned
            .lock()
            .map(|set| set.contains(addr))
            .unwrap_or(false)
    }

    /// Count one op; return the fault to apply to it, if this is the
    /// armed index.
    fn tick(&self) -> Option<NetFault> {
        let op = self.ops.fetch_add(1, Ordering::AcqRel) + 1;
        let mut plan = self.plan.lock().ok()?;
        if plan.fired || plan.fault.is_none() || op != plan.at_op {
            return None;
        }
        plan.fired = true;
        let fault = plan.fault;
        drop(plan);
        if fault == Some(NetFault::Partition) {
            self.partition_all.store(true, Ordering::Release);
        }
        fault
    }

    fn partition_error(addr: &str) -> io::Error {
        io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("injected partition: {addr} unreachable"),
        )
    }
}

/// Deterministic fault-injecting fabric wrapping [`RealNet`]. Cheap to
/// clone; every clone shares the same op counter, fault plan and
/// partition set.
///
/// Every `connect`, `read` and `write` across all streams increments one
/// shared counter; the armed fault fires at exactly the configured index.
/// Address partitions (armed or explicit via
/// [`partition`](FaultNet::partition)) persist until [`heal`](FaultNet::heal).
#[derive(Debug, Clone)]
pub struct FaultNet {
    inner: RealNet,
    state: Arc<FaultState>,
}

impl Default for FaultNet {
    fn default() -> FaultNet {
        FaultNet::new()
    }
}

impl FaultNet {
    pub fn new() -> FaultNet {
        FaultNet {
            inner: RealNet,
            state: Arc::new(FaultState {
                ops: AtomicU64::new(0),
                plan: Mutex::new(FaultPlan::default()),
                partition_all: AtomicBool::new(false),
                partitioned: Mutex::new(HashSet::new()),
            }),
        }
    }

    /// This fabric as a shareable `Arc<dyn NetFabric>` (the clone shares
    /// all fault state with `self`).
    pub fn fabric(&self) -> Arc<dyn NetFabric> {
        Arc::new(self.clone())
    }

    /// Arm `fault` to fire at the `at_op`-th transport operation
    /// (1-based). Re-arming replaces the previous plan.
    pub fn fault_at(&self, at_op: u64, fault: NetFault) {
        if let Ok(mut plan) = self.state.plan.lock() {
            *plan = FaultPlan {
                at_op,
                fault: Some(fault),
                fired: false,
            };
        }
    }

    /// Operations performed so far (the counting pass reads this after a
    /// clean run to know the replay range).
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::Acquire)
    }

    /// Partition `addr` immediately: every op on a stream to it, and
    /// every new connect, fails until [`heal`](FaultNet::heal).
    pub fn partition(&self, addr: &str) {
        if let Ok(mut set) = self.state.partitioned.lock() {
            set.insert(addr.to_owned());
        }
    }

    /// Lift every partition (explicit and armed).
    pub fn heal(&self) {
        self.state.partition_all.store(false, Ordering::Release);
        if let Ok(mut set) = self.state.partitioned.lock() {
            set.clear();
        }
    }
}

impl NetFabric for FaultNet {
    fn connect(&self, addr: &str, timeout: Option<Duration>) -> io::Result<Box<dyn NetStream>> {
        match self.state.tick() {
            Some(NetFault::Drop) | Some(NetFault::Partition) => {
                return Err(FaultState::partition_error(addr))
            }
            Some(NetFault::Delay(d)) => std::thread::sleep(d),
            Some(NetFault::DuplicateWrite) | None => {}
        }
        if self.state.is_partitioned(addr) {
            return Err(FaultState::partition_error(addr));
        }
        let inner = self.inner.connect(addr, timeout)?;
        Ok(Box::new(FaultStream {
            state: Arc::clone(&self.state),
            addr: addr.to_owned(),
            inner,
            duplicate_next_write: false,
        }))
    }
}

struct FaultStream {
    state: Arc<FaultState>,
    /// The address as dialed (partition matching uses what the test
    /// partitioned, not the resolved peer address).
    addr: String,
    inner: Box<dyn NetStream>,
    duplicate_next_write: bool,
}

impl FaultStream {
    /// Shared pre-op bookkeeping: count the op, apply the armed fault,
    /// enforce partitions.
    fn pre_op(&mut self) -> io::Result<()> {
        match self.state.tick() {
            Some(NetFault::Drop) | Some(NetFault::Partition) => {
                return Err(FaultState::partition_error(&self.addr));
            }
            Some(NetFault::Delay(d)) => std::thread::sleep(d),
            Some(NetFault::DuplicateWrite) => self.duplicate_next_write = true,
            None => {}
        }
        if self.state.is_partitioned(&self.addr) {
            return Err(FaultState::partition_error(&self.addr));
        }
        Ok(())
    }
}

impl Read for FaultStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.pre_op()?;
        self.inner.read(buf)
    }
}

impl Write for FaultStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.pre_op()?;
        let n = self.inner.write(buf)?;
        if self.duplicate_next_write && n == buf.len() {
            // Duplicate the exact bytes (frame-at-a-time writers make
            // this a duplicated frame, which the protocol must absorb).
            self.duplicate_next_write = false;
            self.inner.write_all(&buf[..n])?;
        }
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl NetStream for FaultStream {
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(t)
    }
    fn try_clone_stream(&self) -> io::Result<Box<dyn NetStream>> {
        Ok(Box::new(FaultStream {
            state: Arc::clone(&self.state),
            addr: self.addr.clone(),
            inner: self.inner.try_clone_stream()?,
            duplicate_next_write: false,
        }))
    }
    fn peer_label(&self) -> String {
        self.inner.peer_label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn echo_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            // One thread per connection: tests hold several streams open
            // at once (a shadowed binding lives to the end of the test).
            while let Ok((mut s, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut buf = [0u8; 256];
                    loop {
                        match s.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                if s.write_all(&buf[..n]).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                });
            }
        });
        (addr, h)
    }

    #[test]
    fn real_net_round_trips() {
        let (addr, _h) = echo_server();
        let mut s = RealNet.connect(&addr.to_string(), None).unwrap();
        s.write_all(b"ping").unwrap();
        s.flush().unwrap();
        let mut buf = [0u8; 4];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn fault_net_counts_ops_and_drops_at_index() {
        let (addr, _h) = echo_server();
        let addr = addr.to_string();
        let net = FaultNet::new();
        // Counting pass: connect (1), write (2), read (3).
        let mut s = net.connect(&addr, None).unwrap();
        s.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(net.ops(), 3);

        // Replay with the write (op 5: connect=4, write=5) dropped.
        net.fault_at(5, NetFault::Drop);
        let mut s = net.connect(&addr, None).unwrap();
        let err = s.write_all(b"ping").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The fault fires once; the next op works.
        s.write_all(b"pong").unwrap();
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn partition_blocks_until_heal() {
        let (addr, _h) = echo_server();
        let addr = addr.to_string();
        let net = FaultNet::new();
        net.partition(&addr);
        assert!(net.connect(&addr, None).is_err());
        net.heal();
        let mut s = net.connect(&addr, None).unwrap();
        // Established streams to a partitioned address fail too.
        net.partition(&addr);
        assert!(s.write_all(b"x").is_err());
        net.heal();
        s.write_all(b"ok").unwrap();
        let mut buf = [0u8; 2];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ok");
    }

    #[test]
    fn duplicate_write_doubles_the_frame() {
        let (addr, _h) = echo_server();
        let addr = addr.to_string();
        let net = FaultNet::new();
        // connect=1, write=2 duplicated.
        net.fault_at(2, NetFault::DuplicateWrite);
        let mut s = net.connect(&addr, None).unwrap();
        s.write_all(b"abc").unwrap();
        let mut buf = [0u8; 6];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcabc", "the echo returns the bytes twice");
    }

    #[test]
    fn armed_partition_latches_until_heal() {
        let (addr, _h) = echo_server();
        let addr = addr.to_string();
        let net = FaultNet::new();
        net.fault_at(1, NetFault::Partition);
        assert!(net.connect(&addr, None).is_err(), "armed at the connect");
        assert!(
            net.connect(&addr, None).is_err(),
            "partition latches for later ops too"
        );
        net.heal();
        assert!(net.connect(&addr, None).is_ok());
    }

    #[test]
    fn clones_share_the_op_counter_and_partitions() {
        let (addr, _h) = echo_server();
        let addr = addr.to_string();
        let net = FaultNet::new();
        let other = net.clone();
        let _ = net.connect(&addr, None).unwrap();
        let _ = other.connect(&addr, None).unwrap();
        assert_eq!(net.ops(), 2);
        other.partition(&addr);
        assert!(net.connect(&addr, None).is_err());
    }
}
