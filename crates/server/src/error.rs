//! Wire-level error codes and the mapping from engine/storage errors.
//!
//! The protocol reports every failure as one `Error` frame carrying a
//! stable numeric code, a retryable flag, a human message and an optional
//! structured detail payload. Codes partition the engine's error taxonomy
//! so clients can react without parsing messages:
//!
//! * transient server states (`Busy`) are **retryable** — the load
//!   generator and the client library retry them with backoff;
//! * statement-level failures (`Parse`, `Dialect`, `Runtime`, `Lint`,
//!   `ResourceExhausted`, `ReadOnly`) leave the session healthy;
//! * `Storage` and `Sealed` indicate durability trouble — the statement
//!   was **not** acknowledged and the store needs a checkpoint (`Commit`
//!   frame) or operator attention;
//! * `Protocol` and `Version` mean the conversation itself is broken and
//!   the server will close the connection after sending the frame.

use cypher_core::EvalError;
use cypher_storage::StorageError;

use crate::wire::Response;

/// Stable numeric error codes (the `u16` on the wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Malformed frame or message out of protocol order.
    Protocol = 1,
    /// The statement failed to parse.
    Parse = 2,
    /// The statement is invalid under the session's dialect.
    Dialect = 3,
    /// Any runtime evaluation failure (type errors, conflicting SET,
    /// delete-would-dangle, arithmetic, …). The statement rolled back.
    Runtime = 4,
    /// Refused by the server's lint policy; detail carries the
    /// diagnostics as JSON lines.
    Lint = 5,
    /// The statement exceeded a session execution budget and rolled back.
    ResourceExhausted = 6,
    /// The durability layer failed; the statement was not acknowledged.
    Storage = 7,
    /// The durable handle is sealed read-only; send `Commit` to
    /// checkpoint-reconcile.
    Sealed = 8,
    /// Admission control refused the statement (in-flight cap or apply
    /// queue full). Always retryable.
    Busy = 9,
    /// The server is shutting down.
    Unavailable = 10,
    /// Handshake version mismatch.
    Version = 11,
    /// A mutating statement arrived through a path that only serves reads.
    ReadOnly = 12,
    /// This server cannot take writes: it is a replica or a fenced
    /// ex-primary. The frame's detail carries the primary's address when
    /// known — clients should reconnect there.
    NotPrimary = 13,
    /// Under `--sync-replicas N` with the `strict` policy, the required
    /// replica confirmations did not arrive before the sync timeout. The
    /// write **is** durable locally and was shipped, so it may exist on
    /// some replicas — retries must be idempotent. Always retryable.
    ReplicationTimeout = 14,
    /// Code received from a newer peer that this build does not know.
    Unknown = 0xFFFF,
}

impl ErrorCode {
    pub fn from_u16(v: u16) -> ErrorCode {
        match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::Parse,
            3 => ErrorCode::Dialect,
            4 => ErrorCode::Runtime,
            5 => ErrorCode::Lint,
            6 => ErrorCode::ResourceExhausted,
            7 => ErrorCode::Storage,
            8 => ErrorCode::Sealed,
            9 => ErrorCode::Busy,
            10 => ErrorCode::Unavailable,
            11 => ErrorCode::Version,
            12 => ErrorCode::ReadOnly,
            13 => ErrorCode::NotPrimary,
            14 => ErrorCode::ReplicationTimeout,
            _ => ErrorCode::Unknown,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::Parse => "parse",
            ErrorCode::Dialect => "dialect",
            ErrorCode::Runtime => "runtime",
            ErrorCode::Lint => "lint",
            ErrorCode::ResourceExhausted => "resource-exhausted",
            ErrorCode::Storage => "storage",
            ErrorCode::Sealed => "sealed",
            ErrorCode::Busy => "busy",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Version => "version",
            ErrorCode::ReadOnly => "read-only",
            ErrorCode::NotPrimary => "not-primary",
            ErrorCode::ReplicationTimeout => "replication-timeout",
            ErrorCode::Unknown => "unknown",
        };
        write!(f, "{name}")
    }
}

/// Map an engine error onto its error frame. `source` is the statement
/// text, used to render lint diagnostics into the JSON detail payload.
pub fn eval_error_frame(e: &EvalError, source: &str) -> Response {
    let (code, detail) = match e {
        EvalError::Parse(_) => (ErrorCode::Parse, String::new()),
        EvalError::Dialect(_) => (ErrorCode::Dialect, String::new()),
        EvalError::Lint(diags) => {
            let detail = diags
                .iter()
                .map(|d| d.render_json("<statement>", source))
                .collect::<Vec<_>>()
                .join("\n");
            (ErrorCode::Lint, detail)
        }
        EvalError::ResourceExhausted { .. } => (ErrorCode::ResourceExhausted, String::new()),
        EvalError::ReadOnlyStatement { .. } => (ErrorCode::ReadOnly, String::new()),
        EvalError::Storage(_) => (ErrorCode::Storage, String::new()),
        _ => (ErrorCode::Runtime, String::new()),
    };
    Response::Error {
        code,
        retryable: false,
        message: e.to_string(),
        detail,
    }
}

/// Map a storage error onto its error frame. A fence is reported as
/// `NotPrimary` (the replication-level meaning of a fenced handle), with
/// the promoted primary's address in the detail payload when known.
pub fn storage_error_frame(e: &StorageError) -> Response {
    if let StorageError::Fenced { new_primary } = e {
        return not_primary_frame(new_primary.as_deref(), "server is fenced after failover");
    }
    let code = if e.is_sealed() {
        ErrorCode::Sealed
    } else {
        ErrorCode::Storage
    };
    Response::Error {
        code,
        retryable: false,
        message: e.to_string(),
        detail: String::new(),
    }
}

/// The typed write-rejection of a replica or fenced server. `detail`
/// carries the primary's address (empty when unknown) so a client can
/// redirect without parsing the message.
pub fn not_primary_frame(primary: Option<&str>, why: &str) -> Response {
    let message = match primary {
        Some(addr) => format!("{why}; writes go to the primary at {addr}"),
        None => format!("{why}; no primary address known"),
    };
    Response::Error {
        code: ErrorCode::NotPrimary,
        retryable: false,
        message,
        detail: primary.unwrap_or("").to_owned(),
    }
}

/// The quorum-wait failure under the `strict` sync policy. Carries how
/// many confirmations arrived versus how many were required; the write is
/// locally durable and already shipped, so it may surface on a retry.
pub fn replication_timeout_frame(acked: usize, needed: usize, waited_ms: u64) -> Response {
    Response::Error {
        code: ErrorCode::ReplicationTimeout,
        retryable: true,
        message: format!(
            "quorum not reached: {acked}/{needed} replicas confirmed within {waited_ms} ms; \
             the write is durable locally and may replicate — retry idempotently"
        ),
        detail: format!("{acked}/{needed}"),
    }
}

/// The retryable admission-control refusal.
pub fn busy_frame(reason: &str) -> Response {
    Response::Error {
        code: ErrorCode::Busy,
        retryable: true,
        message: format!("server at capacity: {reason}; retry"),
        detail: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_through_u16() {
        for code in [
            ErrorCode::Protocol,
            ErrorCode::Parse,
            ErrorCode::Dialect,
            ErrorCode::Runtime,
            ErrorCode::Lint,
            ErrorCode::ResourceExhausted,
            ErrorCode::Storage,
            ErrorCode::Sealed,
            ErrorCode::Busy,
            ErrorCode::Unavailable,
            ErrorCode::Version,
            ErrorCode::ReadOnly,
            ErrorCode::NotPrimary,
            ErrorCode::ReplicationTimeout,
        ] {
            assert_eq!(ErrorCode::from_u16(code as u16), code);
        }
        assert_eq!(ErrorCode::from_u16(9999), ErrorCode::Unknown);
    }

    #[test]
    fn fenced_storage_error_maps_to_not_primary_with_redirect() {
        let e = StorageError::Fenced {
            new_primary: Some("10.0.0.2:7878".into()),
        };
        let Response::Error { code, detail, .. } = storage_error_frame(&e) else {
            panic!("not an error frame")
        };
        assert_eq!(code, ErrorCode::NotPrimary);
        assert_eq!(detail, "10.0.0.2:7878");
    }

    #[test]
    fn budget_and_readonly_map_to_typed_codes() {
        let e = EvalError::ResourceExhausted {
            resource: "rows",
            limit: 5,
        };
        let Response::Error {
            code, retryable, ..
        } = eval_error_frame(&e, "")
        else {
            panic!("not an error frame")
        };
        assert_eq!(code, ErrorCode::ResourceExhausted);
        assert!(!retryable);

        let e = EvalError::ReadOnlyStatement { clause: "CREATE" };
        let Response::Error { code, .. } = eval_error_frame(&e, "") else {
            panic!("not an error frame")
        };
        assert_eq!(code, ErrorCode::ReadOnly);
    }

    #[test]
    fn lint_detail_is_json_lines() {
        let source = "MATCH (p1:P), (p2:P) SET p1.id = p2.id, p2.id = p1.id";
        let query = cypher_parser::parse(source).unwrap();
        let diags = cypher_analysis::analyze(source, &query, cypher_parser::Dialect::Cypher9);
        assert!(!diags.is_empty());
        let Response::Error { code, detail, .. } =
            eval_error_frame(&EvalError::Lint(diags), source)
        else {
            panic!("not an error frame")
        };
        assert_eq!(code, ErrorCode::Lint);
        assert!(detail
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(detail.contains("\"code\":\"W01\""));
    }
}
