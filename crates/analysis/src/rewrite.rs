//! Metamorphic rewriting: semantics-preserving AST→AST Cypher equivalences.
//!
//! Each [`Rule`] transforms a query into a form that must produce the same
//! result set (and the same final graph, up to isomorphism) under the
//! semantics of *Updating Graph Databases with Cypher*. The catalogue
//! follows the equivalence families formalized in *Proving Cypher Query
//! Equivalence* (arXiv 2504.15742); every rule is gated so it only fires
//! where the equivalence provably holds in this engine:
//!
//! | rule | equivalence | §/source | row order |
//! |------|-------------|----------|-----------|
//! | `ReversePatterns` | `(a)-[r]->(b)` ≡ `(b)<-[r]-(a)` | pattern symmetry (§2) | perturbed |
//! | `CommuteConjuncts` | `P AND Q` ≡ `Q AND P` (also `OR`, `XOR`) | 3VL commutativity (§8.1) | preserved |
//! | `PropsToWhere` | `(n {k: lit})` ≡ `(n) WHERE n.k = lit` | map-predicate desugaring | preserved* |
//! | `WhereToProps` | inverse of the above | | preserved* |
//! | `SplitMatch` | `MATCH p, q` ≡ `MATCH p MATCH q` | cartesian join assoc. | perturbed |
//! | `MergeMatch` | inverse of the above | | perturbed |
//! | `RenameVars` | α-renaming of bound variables | capture-avoiding | preserved |
//! | `InsertWith` | insert a redundant `WITH *` | projection identity | preserved |
//!
//! (* preserved in this engine because the planner is required to stay
//! byte-identical to naive clause order, and a `WHERE` filter does not
//! reorder the driving table.)
//!
//! Rewrites are *validated* against the target dialect before being
//! returned, so a rewrite that would break Cypher 9's `WITH`-demarcation
//! rules is silently dropped rather than reported as a divergence.

use cypher_parser::ast::{
    BinOp, Clause, Dialect, Expr, Lit, NodePattern, PathPattern, Projection, ProjectionItems,
    Query, RemoveItem, SetItem, SingleQuery,
};
use cypher_parser::{print_expr, validate};

/// One applicable rewrite of a query.
#[derive(Clone, Debug)]
pub struct Rewrite {
    pub rule: Rule,
    pub query: Query,
}

/// The rewrite-rule catalogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    ReversePatterns,
    CommuteConjuncts,
    PropsToWhere,
    WhereToProps,
    SplitMatch,
    MergeMatch,
    RenameVars,
    InsertWith,
}

impl Rule {
    pub const ALL: [Rule; 8] = [
        Rule::ReversePatterns,
        Rule::CommuteConjuncts,
        Rule::PropsToWhere,
        Rule::WhereToProps,
        Rule::SplitMatch,
        Rule::MergeMatch,
        Rule::RenameVars,
        Rule::InsertWith,
    ];

    /// Stable short name, used in reports and reproducer file names.
    pub fn name(self) -> &'static str {
        match self {
            Rule::ReversePatterns => "reverse-patterns",
            Rule::CommuteConjuncts => "commute-conjuncts",
            Rule::PropsToWhere => "props-to-where",
            Rule::WhereToProps => "where-to-props",
            Rule::SplitMatch => "split-match",
            Rule::MergeMatch => "merge-match",
            Rule::RenameVars => "rename-vars",
            Rule::InsertWith => "insert-with",
        }
    }

    /// Does the rewritten query produce rows in the *same order* as the
    /// original? Rules that may perturb enumeration order must not be
    /// applied to order-sensitive statements (see [`order_sensitive`]).
    pub fn preserves_row_order(self) -> bool {
        matches!(
            self,
            Rule::CommuteConjuncts | Rule::RenameVars | Rule::InsertWith
        )
    }
}

/// Can row *order* leak into this statement's observable output (beyond
/// sorted-multiset table comparison and graph isomorphism)?
///
/// True when the statement uses `SKIP`/`LIMIT` (order selects the rows),
/// an order-dependent aggregate (`collect` keeps order; `avg`/`stdev`
/// round differently per summation order), or — under Cypher 9 — any
/// update clause (the paper's Example 2: legacy updates are processed in
/// row order against dirty data, so different enumeration orders can
/// produce genuinely different graphs).
pub fn order_sensitive(query: &Query, dialect: Dialect) -> bool {
    let mut sensitive = false;
    for sq in singles(query) {
        for c in &sq.clauses {
            if dialect == Dialect::Cypher9 && c.is_update() {
                sensitive = true;
            }
            if let Clause::With(p) | Clause::Return(p) = c {
                if p.skip.is_some() || p.limit.is_some() {
                    sensitive = true;
                }
            }
        }
        visit_exprs(sq, &mut |e| {
            if let Expr::FnCall { name, .. } = e {
                if matches!(
                    name.to_ascii_lowercase().as_str(),
                    "collect" | "avg" | "stdev"
                ) {
                    sensitive = true;
                }
            }
        });
    }
    sensitive
}

/// All rewrites of `query` that apply and still validate under `dialect`.
pub fn rewrites(query: &Query, dialect: Dialect) -> Vec<Rewrite> {
    Rule::ALL
        .iter()
        .filter_map(|&rule| rewrite(query, dialect, rule).map(|query| Rewrite { rule, query }))
        .collect()
}

/// Apply one rule. Returns `None` when the rule does not apply, produces
/// no change, or the result fails dialect validation.
pub fn rewrite(query: &Query, dialect: Dialect, rule: Rule) -> Option<Query> {
    let mut q = query.clone();
    let changed = match rule {
        Rule::ReversePatterns => for_each_single(&mut q, reverse_patterns),
        Rule::CommuteConjuncts => for_each_single(&mut q, commute_conjuncts),
        Rule::PropsToWhere => for_each_single(&mut q, props_to_where),
        Rule::WhereToProps => for_each_single(&mut q, where_to_props),
        Rule::SplitMatch => for_each_single(&mut q, split_match),
        Rule::MergeMatch => for_each_single(&mut q, merge_match),
        Rule::RenameVars => for_each_single(&mut q, rename_vars),
        Rule::InsertWith => for_each_single(&mut q, insert_with),
    };
    if !changed || q == *query || validate(&q, dialect).is_err() {
        return None;
    }
    Some(q)
}

fn singles(q: &Query) -> impl Iterator<Item = &SingleQuery> {
    std::iter::once(&q.first).chain(q.unions.iter().map(|(_, sq)| sq))
}

/// Apply `f` to every union arm; report whether any arm changed. Clause
/// spans no longer index the original source after a structural rewrite,
/// so they are cleared.
fn for_each_single(q: &mut Query, f: impl Fn(&mut SingleQuery) -> bool) -> bool {
    let mut changed = f(&mut q.first);
    for (_, sq) in &mut q.unions {
        changed |= f(sq);
    }
    if changed {
        q.first.clause_spans.clear();
        for (_, sq) in &mut q.unions {
            sq.clause_spans.clear();
        }
    }
    changed
}

// ---------------------------------------------------------------------------
// ReversePatterns
// ---------------------------------------------------------------------------

/// Reverse every eligible multi-step `MATCH` pattern. A pattern is eligible
/// when it has at least one step, is not wrapped in `shortestPath`, binds no
/// path variable (a reversed path *value* renders reversed), and none of its
/// variable-length steps binds a variable (such a variable binds a list of
/// relationships *in path order*).
fn reverse_patterns(sq: &mut SingleQuery) -> bool {
    let mut changed = false;
    for c in &mut sq.clauses {
        if let Clause::Match { patterns, .. } = c {
            for p in patterns {
                let eligible = !p.steps.is_empty()
                    && p.shortest.is_none()
                    && p.var.is_none()
                    && p.steps
                        .iter()
                        .all(|(rel, _)| rel.length.is_none() || rel.var.is_none());
                if eligible {
                    reverse_path(p);
                    changed = true;
                }
            }
        }
    }
    changed
}

fn reverse_path(p: &mut PathPattern) {
    use cypher_parser::ast::RelDirection::*;
    let mut nodes = vec![std::mem::take(&mut p.start)];
    let mut rels = Vec::new();
    for (rel, node) in p.steps.drain(..) {
        rels.push(rel);
        nodes.push(node);
    }
    nodes.reverse();
    rels.reverse();
    let mut nodes = nodes.into_iter();
    p.start = nodes.next().unwrap_or_default();
    p.steps = rels
        .into_iter()
        .zip(nodes)
        .map(|(mut rel, node)| {
            rel.direction = match rel.direction {
                Outgoing => Incoming,
                Incoming => Outgoing,
                Undirected => Undirected,
            };
            (rel, node)
        })
        .collect();
}

// ---------------------------------------------------------------------------
// CommuteConjuncts
// ---------------------------------------------------------------------------

/// Swap the operands of every `AND`/`OR`/`XOR` in every `WHERE` expression.
/// All three are commutative under the three-valued logic of §8.1; in this
/// engine comparisons never type-error (they yield `null`), so operand
/// evaluation order is unobservable for well-typed predicates.
fn commute_conjuncts(sq: &mut SingleQuery) -> bool {
    let mut changed = false;
    let mut commute = |e: &mut Option<Expr>| {
        if let Some(expr) = e {
            if swap_bool_ops(expr) {
                changed = true;
            }
        }
    };
    for c in &mut sq.clauses {
        match c {
            Clause::Match { where_clause, .. } => commute(where_clause),
            Clause::With(p) => commute(&mut p.where_clause),
            _ => {}
        }
    }
    changed
}

fn swap_bool_ops(e: &mut Expr) -> bool {
    match e {
        Expr::Binary(BinOp::And | BinOp::Or | BinOp::Xor, l, r) => {
            swap_bool_ops(l);
            swap_bool_ops(r);
            std::mem::swap(l, r);
            true
        }
        Expr::Unary(_, inner) => swap_bool_ops(inner),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// PropsToWhere / WhereToProps
// ---------------------------------------------------------------------------

/// Is this literal safe to move between a pattern property map and a
/// `WHERE var.key = lit` conjunct? `null` is excluded (`{k: null}` never
/// matches while `k = null` is *unknown* — same outcome, but keep the rule
/// on ground we can prove) and floats are excluded (equality on floats is
/// representation-sensitive).
fn movable_lit(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Literal(Lit::Int(_) | Lit::Str(_) | Lit::Bool(_)) | Expr::Parameter(_)
    )
}

/// `MATCH (n {k: lit})` → `MATCH (n) WHERE n.k = lit`. Only node patterns
/// with a variable participate; `shortestPath` patterns are skipped (their
/// property maps prune *candidate* paths before minimization, which a
/// post-hoc filter does not).
fn props_to_where(sq: &mut SingleQuery) -> bool {
    let mut changed = false;
    for c in &mut sq.clauses {
        let Clause::Match {
            patterns,
            where_clause,
            ..
        } = c
        else {
            continue;
        };
        let mut lifted: Vec<Expr> = Vec::new();
        for p in patterns.iter_mut().filter(|p| p.shortest.is_none()) {
            let mut nodes: Vec<&mut NodePattern> = vec![&mut p.start];
            nodes.extend(p.steps.iter_mut().map(|(_, n)| n));
            for node in nodes {
                let Some(var) = node.var.clone() else {
                    continue;
                };
                let (movable, kept): (Vec<_>, Vec<_>) = node
                    .props
                    .drain(..)
                    .partition(|(_, value)| movable_lit(value));
                node.props = kept;
                for (key, value) in movable {
                    lifted.push(Expr::Binary(
                        BinOp::Eq,
                        Box::new(Expr::prop(Expr::var(var.clone()), key)),
                        Box::new(value),
                    ));
                }
            }
        }
        if lifted.is_empty() {
            continue;
        }
        changed = true;
        let mut conj = where_clause.take();
        for pred in lifted {
            conj = Some(match conj {
                None => pred,
                Some(acc) => Expr::Binary(BinOp::And, Box::new(acc), Box::new(pred)),
            });
        }
        *where_clause = conj;
    }
    changed
}

/// Flatten an `AND` chain into conjuncts.
fn conjuncts(e: Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary(BinOp::And, l, r) = e {
        conjuncts(*l, out);
        conjuncts(*r, out);
    } else {
        out.push(e);
    }
}

fn rebuild_conj(parts: Vec<Expr>) -> Option<Expr> {
    let mut it = parts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, |acc, p| {
        Expr::Binary(BinOp::And, Box::new(acc), Box::new(p))
    }))
}

/// `MATCH (n) WHERE n.k = lit` → `MATCH (n {k: lit})` — the inverse of
/// [`props_to_where`]. A conjunct moves only when its variable names a node
/// pattern in the *same* clause that does not already constrain that key.
fn where_to_props(sq: &mut SingleQuery) -> bool {
    let mut changed = false;
    for c in &mut sq.clauses {
        let Clause::Match {
            patterns,
            where_clause,
            ..
        } = c
        else {
            continue;
        };
        let Some(w) = where_clause.take() else {
            continue;
        };
        let mut parts = Vec::new();
        conjuncts(w, &mut parts);
        let mut kept = Vec::new();
        for part in parts {
            let mut moved = false;
            if let Expr::Binary(BinOp::Eq, l, r) = &part {
                if let (Expr::Property(base, key), lit) = (l.as_ref(), r.as_ref()) {
                    if let Expr::Variable(v) = base.as_ref() {
                        if movable_lit(lit) {
                            if let Some(node) = find_node_pattern(patterns, v) {
                                if !node.props.iter().any(|(k, _)| k == key) {
                                    node.props.push((key.clone(), lit.clone()));
                                    moved = true;
                                }
                            }
                        }
                    }
                }
            }
            if moved {
                changed = true;
            } else {
                kept.push(part);
            }
        }
        *where_clause = rebuild_conj(kept);
    }
    changed
}

fn find_node_pattern<'a>(
    patterns: &'a mut [PathPattern],
    var: &str,
) -> Option<&'a mut NodePattern> {
    patterns
        .iter_mut()
        .filter(|p| p.shortest.is_none())
        .flat_map(|p| std::iter::once(&mut p.start).chain(p.steps.iter_mut().map(|(_, n)| n)))
        .find(|n| n.var.as_deref() == Some(var))
}

// ---------------------------------------------------------------------------
// SplitMatch / MergeMatch
// ---------------------------------------------------------------------------

fn has_rel(p: &PathPattern) -> bool {
    !p.steps.is_empty()
}

/// `MATCH p0, p1, … WHERE w` → `MATCH p0 MATCH p1, … WHERE w`.
///
/// Relationship-uniqueness (edge-isomorphic matching, Example 7) is scoped
/// to a single `MATCH` clause, so the split is only safe when at most one
/// side of the cut contains relationship patterns — then no uniqueness
/// constraint crosses the new clause boundary.
fn split_match(sq: &mut SingleQuery) -> bool {
    for i in 0..sq.clauses.len() {
        let Clause::Match {
            optional: false,
            patterns,
            where_clause,
        } = &sq.clauses[i]
        else {
            continue;
        };
        if patterns.len() < 2 {
            continue;
        }
        let first_rel = has_rel(&patterns[0]);
        let rest_rel = patterns[1..].iter().any(has_rel);
        if first_rel && rest_rel {
            continue;
        }
        let mut patterns = patterns.clone();
        let where_clause = where_clause.clone();
        let head = patterns.remove(0);
        sq.clauses[i] = Clause::Match {
            optional: false,
            patterns: vec![head],
            where_clause: None,
        };
        sq.clauses.insert(
            i + 1,
            Clause::Match {
                optional: false,
                patterns,
                where_clause,
            },
        );
        return true;
    }
    false
}

/// `MATCH p0 MATCH p1 WHERE w` → `MATCH p0, p1 WHERE w` — the inverse of
/// [`split_match`], with the same uniqueness gate. The first clause must not
/// carry a `WHERE` (merging would change which join stage it filters —
/// equivalent for pure predicates, but keep the rule syntactic).
fn merge_match(sq: &mut SingleQuery) -> bool {
    for i in 0..sq.clauses.len().saturating_sub(1) {
        let (a, b, w) = match (&sq.clauses[i], &sq.clauses[i + 1]) {
            (
                Clause::Match {
                    optional: false,
                    patterns: a,
                    where_clause: None,
                },
                Clause::Match {
                    optional: false,
                    patterns: b,
                    where_clause: w,
                },
            ) => (a.clone(), b.clone(), w.clone()),
            _ => continue,
        };
        let a_rel = a.iter().any(has_rel);
        let b_rel = b.iter().any(has_rel);
        if a_rel && b_rel {
            continue;
        }
        let mut patterns = a;
        patterns.extend(b);
        let where_clause = w;
        sq.clauses[i] = Clause::Match {
            optional: false,
            patterns,
            where_clause,
        };
        sq.clauses.remove(i + 1);
        return true;
    }
    false
}

// ---------------------------------------------------------------------------
// RenameVars
// ---------------------------------------------------------------------------

/// Capture-avoiding α-renaming: every bound variable `v` becomes `v_mm`,
/// consistently across binders and uses. The final `RETURN` first receives
/// explicit aliases carrying the *original* column names, so the observable
/// table header is unchanged.
fn rename_vars(sq: &mut SingleQuery) -> bool {
    let mut bound = std::collections::BTreeSet::new();
    collect_bound(sq, &mut bound);
    if bound.is_empty() {
        return false;
    }
    // Names mentioned anywhere (bound or free): collision + eligibility check.
    let mut mentioned = bound.clone();
    visit_exprs(sq, &mut |e| {
        if let Expr::Variable(v) = e {
            mentioned.insert(v.clone());
        }
    });
    if mentioned.iter().any(|n| n.ends_with("_mm")) {
        return false;
    }
    // The final RETURN's aliases are terminal: they only name output columns
    // (and resolve ORDER BY with alias precedence). Pin them before renaming;
    // bail on `RETURN *` (no per-item handle on the column list) and on a
    // pre-existing alias that shadows a bound variable (renaming would flip
    // ORDER BY resolution from alias to source).
    if let Some(Clause::Return(p)) = sq.clauses.last_mut() {
        let ProjectionItems::Items(items) = &mut p.items else {
            return false;
        };
        for item in items.iter_mut() {
            match &item.alias {
                Some(a) if bound.contains(a) => return false,
                Some(_) => {}
                None => {
                    item.alias = Some(match &item.expr {
                        Expr::Variable(v) => v.clone(),
                        other => print_expr(other),
                    });
                }
            }
        }
    }
    let rename = |name: &mut String| {
        if bound.contains(name.as_str()) {
            name.push_str("_mm");
        }
    };
    rename_in_single(sq, &rename);
    true
}

fn collect_bound(sq: &SingleQuery, out: &mut std::collections::BTreeSet<String>) {
    fn pattern_vars(p: &PathPattern, out: &mut std::collections::BTreeSet<String>) {
        if let Some(v) = &p.var {
            out.insert(v.clone());
        }
        if let Some(v) = &p.start.var {
            out.insert(v.clone());
        }
        for (rel, node) in &p.steps {
            if let Some(v) = &rel.var {
                out.insert(v.clone());
            }
            if let Some(v) = &node.var {
                out.insert(v.clone());
            }
        }
    }
    fn clause_bound(c: &Clause, last: bool, out: &mut std::collections::BTreeSet<String>) {
        match c {
            Clause::Match { patterns, .. }
            | Clause::Create { patterns }
            | Clause::Merge { patterns, .. } => {
                for p in patterns {
                    pattern_vars(p, out);
                }
            }
            Clause::Unwind { alias, .. } => {
                out.insert(alias.clone());
            }
            Clause::Foreach { var, body, .. } => {
                out.insert(var.clone());
                for b in body {
                    clause_bound(b, false, out);
                }
            }
            // WITH aliases bind downstream; final-RETURN aliases are
            // terminal column names, handled separately.
            Clause::With(p) => {
                let (ProjectionItems::Items(items) | ProjectionItems::Star { extra: items }) =
                    &p.items;
                for item in items {
                    if let Some(a) = &item.alias {
                        out.insert(a.clone());
                    }
                }
            }
            Clause::Return(p) if !last => {
                let (ProjectionItems::Items(items) | ProjectionItems::Star { extra: items }) =
                    &p.items;
                for item in items {
                    if let Some(a) = &item.alias {
                        out.insert(a.clone());
                    }
                }
            }
            _ => {}
        }
    }
    let n = sq.clauses.len();
    for (i, c) in sq.clauses.iter().enumerate() {
        clause_bound(c, i + 1 == n, out);
    }
    // Expression-local binders participate too: renaming them together with
    // same-named outer variables keeps the renaming a uniform substitution.
    visit_exprs(sq, &mut |e| match e {
        Expr::ListComprehension { var, .. } | Expr::Quantifier { var, .. } => {
            out.insert(var.clone());
        }
        Expr::Reduce { acc, var, .. } => {
            out.insert(acc.clone());
            out.insert(var.clone());
        }
        Expr::PatternPredicate(p) => {
            pattern_vars(p, out);
        }
        _ => {}
    });
}

/// Apply `rename` to every binder and variable occurrence, except the alias
/// strings of the final `RETURN` (pinned by [`rename_vars`]).
fn rename_in_single(sq: &mut SingleQuery, rename: &impl Fn(&mut String)) {
    let n = sq.clauses.len();
    for (i, c) in sq.clauses.iter_mut().enumerate() {
        rename_in_clause(c, i + 1 == n, rename);
    }
}

fn rename_in_clause(c: &mut Clause, last: bool, rename: &impl Fn(&mut String)) {
    let rename_pattern = |p: &mut PathPattern| {
        if let Some(v) = &mut p.var {
            rename(v);
        }
        if let Some(v) = &mut p.start.var {
            rename(v);
        }
        for (_, e) in &mut p.start.props {
            rename_in_expr(e, rename);
        }
        for (rel, node) in &mut p.steps {
            if let Some(v) = &mut rel.var {
                rename(v);
            }
            for (_, e) in &mut rel.props {
                rename_in_expr(e, rename);
            }
            if let Some(v) = &mut node.var {
                rename(v);
            }
            for (_, e) in &mut node.props {
                rename_in_expr(e, rename);
            }
        }
    };
    let rename_set_items = |items: &mut Vec<SetItem>| {
        for item in items {
            match item {
                SetItem::Property { target, value, .. } => {
                    rename_in_expr(target, rename);
                    rename_in_expr(value, rename);
                }
                SetItem::Replace { target, value } | SetItem::MergeProps { target, value } => {
                    rename(target);
                    rename_in_expr(value, rename);
                }
                SetItem::Labels { target, .. } => rename(target),
            }
        }
    };
    let rename_projection = |p: &mut Projection, keep_aliases: bool| {
        let (ProjectionItems::Items(items) | ProjectionItems::Star { extra: items }) = &mut p.items;
        let mut cols = std::collections::BTreeSet::new();
        for item in items {
            rename_in_expr(&mut item.expr, rename);
            if keep_aliases {
                if let Some(a) = &item.alias {
                    cols.insert(a.clone());
                }
            } else if let Some(a) = &mut item.alias {
                rename(a);
            }
        }
        // With pinned aliases (final RETURN), the output columns keep their
        // original names, and under aggregation they are the *only* names
        // ORDER BY can still see. References to them must stay unrenamed;
        // everything else refers to the underlying (renamed) scope. Column
        // references shadow scope ones in both the original and the
        // rewrite, so resolution is unchanged either way.
        let modifier_rename = |name: &mut String| {
            if !cols.contains(name.as_str()) {
                rename(name);
            }
        };
        for s in &mut p.order_by {
            rename_in_expr(&mut s.expr, &modifier_rename);
        }
        if let Some(e) = &mut p.skip {
            rename_in_expr(e, &modifier_rename);
        }
        if let Some(e) = &mut p.limit {
            rename_in_expr(e, &modifier_rename);
        }
        if let Some(e) = &mut p.where_clause {
            rename_in_expr(e, &modifier_rename);
        }
    };
    match c {
        Clause::Match {
            patterns,
            where_clause,
            ..
        } => {
            for p in patterns {
                rename_pattern(p);
            }
            if let Some(e) = where_clause {
                rename_in_expr(e, rename);
            }
        }
        Clause::Create { patterns } => {
            for p in patterns {
                rename_pattern(p);
            }
        }
        Clause::Merge {
            patterns,
            on_create,
            on_match,
            ..
        } => {
            for p in patterns {
                rename_pattern(p);
            }
            rename_set_items(on_create);
            rename_set_items(on_match);
        }
        Clause::Unwind { expr, alias } => {
            rename_in_expr(expr, rename);
            rename(alias);
        }
        Clause::With(p) => rename_projection(p, false),
        Clause::Return(p) => rename_projection(p, last),
        Clause::Set { items } => rename_set_items(items),
        Clause::Remove { items } => {
            for item in items {
                match item {
                    RemoveItem::Property { target, .. } => rename_in_expr(target, rename),
                    RemoveItem::Labels { target, .. } => rename(target),
                }
            }
        }
        Clause::Delete { exprs, .. } => {
            for e in exprs {
                rename_in_expr(e, rename);
            }
        }
        Clause::Foreach { var, list, body } => {
            rename(var);
            rename_in_expr(list, rename);
            for b in body {
                rename_in_clause(b, false, rename);
            }
        }
        Clause::CreateIndex { .. } | Clause::DropIndex { .. } => {}
    }
}

fn rename_in_expr(e: &mut Expr, rename: &impl Fn(&mut String)) {
    match e {
        Expr::Variable(v) => rename(v),
        Expr::ListComprehension { var, .. } | Expr::Quantifier { var, .. } => rename(var),
        Expr::Reduce { acc, var, .. } => {
            rename(acc);
            rename(var);
        }
        Expr::PatternPredicate(p) => {
            if let Some(v) = &mut p.var {
                rename(v);
            }
            if let Some(v) = &mut p.start.var {
                rename(v);
            }
            for (rel, node) in &mut p.steps {
                if let Some(v) = &mut rel.var {
                    rename(v);
                }
                if let Some(v) = &mut node.var {
                    rename(v);
                }
            }
        }
        _ => {}
    }
    for_each_child_mut(e, &mut |child| rename_in_expr(child, rename));
}

/// Mutable counterpart of [`Expr::for_each_child`].
fn for_each_child_mut(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    match e {
        Expr::Literal(_) | Expr::Variable(_) | Expr::Parameter(_) | Expr::CountStar => {}
        Expr::Property(b, _) => f(b),
        Expr::List(items) => items.iter_mut().for_each(f),
        Expr::Map(entries) => entries.iter_mut().for_each(|(_, e)| f(e)),
        Expr::Unary(_, e) => f(e),
        Expr::Binary(_, l, r) => {
            f(l);
            f(r);
        }
        Expr::IsNull { expr, .. } => f(expr),
        Expr::Index(b, i) => {
            f(b);
            f(i);
        }
        Expr::Slice { base, from, to } => {
            f(base);
            if let Some(e) = from {
                f(e);
            }
            if let Some(e) = to {
                f(e);
            }
        }
        Expr::FnCall { args, .. } => args.iter_mut().for_each(f),
        Expr::Case {
            input,
            branches,
            else_branch,
        } => {
            if let Some(e) = input {
                f(e);
            }
            for (w, t) in branches {
                f(w);
                f(t);
            }
            if let Some(e) = else_branch {
                f(e);
            }
        }
        Expr::HasLabels(b, _) => f(b),
        Expr::ListComprehension {
            list, filter, body, ..
        } => {
            f(list);
            if let Some(e) = filter {
                f(e);
            }
            if let Some(e) = body {
                f(e);
            }
        }
        Expr::Quantifier { list, pred, .. } => {
            f(list);
            f(pred);
        }
        Expr::Reduce {
            init, list, body, ..
        } => {
            f(init);
            f(list);
            f(body);
        }
        Expr::PatternPredicate(p) => {
            for (_, e) in &mut p.start.props {
                f(e);
            }
            for (rel, node) in &mut p.steps {
                for (_, e) in &mut rel.props {
                    f(e);
                }
                for (_, e) in &mut node.props {
                    f(e);
                }
            }
        }
    }
}

/// Visit every expression in a single query (top-level and nested).
fn visit_exprs(sq: &SingleQuery, f: &mut impl FnMut(&Expr)) {
    fn deep(e: &Expr, f: &mut impl FnMut(&Expr)) {
        f(e);
        e.for_each_child(&mut |c| deep(c, f));
    }
    fn pattern(p: &PathPattern, f: &mut impl FnMut(&Expr)) {
        for (_, e) in &p.start.props {
            deep(e, f);
        }
        for (rel, node) in &p.steps {
            for (_, e) in &rel.props {
                deep(e, f);
            }
            for (_, e) in &node.props {
                deep(e, f);
            }
        }
    }
    fn set_items(items: &[SetItem], f: &mut impl FnMut(&Expr)) {
        for item in items {
            match item {
                SetItem::Property { target, value, .. } => {
                    deep(target, f);
                    deep(value, f);
                }
                SetItem::Replace { value, .. } | SetItem::MergeProps { value, .. } => {
                    deep(value, f)
                }
                SetItem::Labels { .. } => {}
            }
        }
    }
    fn clause(c: &Clause, f: &mut impl FnMut(&Expr)) {
        match c {
            Clause::Match {
                patterns,
                where_clause,
                ..
            } => {
                for p in patterns {
                    pattern(p, f);
                }
                if let Some(e) = where_clause {
                    deep(e, f);
                }
            }
            Clause::Create { patterns } => {
                for p in patterns {
                    pattern(p, f);
                }
            }
            Clause::Merge {
                patterns,
                on_create,
                on_match,
                ..
            } => {
                for p in patterns {
                    pattern(p, f);
                }
                set_items(on_create, f);
                set_items(on_match, f);
            }
            Clause::Unwind { expr, .. } => deep(expr, f),
            Clause::With(p) | Clause::Return(p) => {
                let (ProjectionItems::Items(items) | ProjectionItems::Star { extra: items }) =
                    &p.items;
                for item in items {
                    deep(&item.expr, f);
                }
                for s in &p.order_by {
                    deep(&s.expr, f);
                }
                if let Some(e) = &p.skip {
                    deep(e, f);
                }
                if let Some(e) = &p.limit {
                    deep(e, f);
                }
                if let Some(e) = &p.where_clause {
                    deep(e, f);
                }
            }
            Clause::Set { items } => set_items(items, f),
            Clause::Remove { items } => {
                for item in items {
                    if let RemoveItem::Property { target, .. } = item {
                        deep(target, f);
                    }
                }
            }
            Clause::Delete { exprs, .. } => {
                for e in exprs {
                    deep(e, f);
                }
            }
            Clause::Foreach { list, body, .. } => {
                deep(list, f);
                for b in body {
                    clause(b, f);
                }
            }
            Clause::CreateIndex { .. } | Clause::DropIndex { .. } => {}
        }
    }
    for c in &sq.clauses {
        clause(c, f);
    }
}

// ---------------------------------------------------------------------------
// InsertWith
// ---------------------------------------------------------------------------

/// Insert a redundant `WITH *` after the first reading clause that binds at
/// least one variable. `WITH *` re-projects every bound variable without
/// filtering, deduplicating or reordering, so the pipeline is unchanged.
fn insert_with(sq: &mut SingleQuery) -> bool {
    for i in 0..sq.clauses.len() {
        let binds = match &sq.clauses[i] {
            Clause::Match { patterns, .. } => patterns.iter().any(|p| {
                p.var.is_some()
                    || p.start.var.is_some()
                    || p.steps
                        .iter()
                        .any(|(rel, node)| rel.var.is_some() || node.var.is_some())
            }),
            Clause::Unwind { .. } => true,
            _ => false,
        };
        if !binds {
            continue;
        }
        if matches!(sq.clauses.get(i + 1), Some(Clause::With(p)) if p.items == ProjectionItems::Star { extra: vec![] })
        {
            return false; // already there; inserting again is not a change worth testing
        }
        sq.clauses.insert(i + 1, Clause::With(Projection::star()));
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::{parse, print_query};

    fn rw(src: &str, dialect: Dialect, rule: Rule) -> Option<String> {
        let q = parse(src).unwrap();
        rewrite(&q, dialect, rule).map(|q| print_query(&q))
    }

    #[test]
    fn reverse_two_hop() {
        let out = rw(
            "MATCH (a:A)-[r:T]->(b:B) RETURN a",
            Dialect::Revised,
            Rule::ReversePatterns,
        )
        .unwrap();
        assert_eq!(out, "MATCH (b:B)<-[r:T]-(a:A) RETURN a");
    }

    #[test]
    fn reverse_skips_path_vars_and_varlength_vars() {
        assert!(rw(
            "MATCH p = (a)-[:T]->(b) RETURN length(p)",
            Dialect::Revised,
            Rule::ReversePatterns
        )
        .is_none());
        assert!(rw(
            "MATCH (a)-[rs:T*1..2]->(b) RETURN b",
            Dialect::Revised,
            Rule::ReversePatterns
        )
        .is_none());
    }

    #[test]
    fn commute_where() {
        let out = rw(
            "MATCH (a) WHERE a.k = 1 AND a.id > 2 RETURN a",
            Dialect::Revised,
            Rule::CommuteConjuncts,
        )
        .unwrap();
        assert_eq!(out, "MATCH (a) WHERE (a.id > 2) AND (a.k = 1) RETURN a");
    }

    #[test]
    fn props_where_inverses() {
        let out = rw(
            "MATCH (a:A {k: 1, name: 'x'}) RETURN a",
            Dialect::Revised,
            Rule::PropsToWhere,
        )
        .unwrap();
        assert_eq!(
            out,
            "MATCH (a:A) WHERE (a.k = 1) AND (a.name = 'x') RETURN a"
        );
        let back = rw(&out, Dialect::Revised, Rule::WhereToProps).unwrap();
        assert_eq!(back, "MATCH (a:A {k: 1, name: 'x'}) RETURN a");
    }

    #[test]
    fn split_and_merge_match() {
        let out = rw(
            "MATCH (a:A), (b:B)-[r:T]->(c) WHERE a.k = 1 RETURN a, c",
            Dialect::Revised,
            Rule::SplitMatch,
        )
        .unwrap();
        assert_eq!(
            out,
            "MATCH (a:A) MATCH (b:B)-[r:T]->(c) WHERE a.k = 1 RETURN a, c"
        );
        let back = rw(&out, Dialect::Revised, Rule::MergeMatch).unwrap();
        assert_eq!(
            back,
            "MATCH (a:A), (b:B)-[r:T]->(c) WHERE a.k = 1 RETURN a, c"
        );
        // Two rel-bearing patterns: uniqueness is clause-wide, refuse.
        assert!(rw(
            "MATCH (a)-[r:T]->(b), (c)-[s:T]->(d) RETURN a",
            Dialect::Revised,
            Rule::SplitMatch
        )
        .is_none());
    }

    #[test]
    fn rename_preserves_columns() {
        let out = rw(
            "MATCH (a:A) WITH a.k AS k RETURN k, k + 1",
            Dialect::Revised,
            Rule::RenameVars,
        )
        .unwrap();
        assert_eq!(
            out,
            "MATCH (a_mm:A) WITH a_mm.k AS k_mm RETURN k_mm AS k, k_mm + 1 AS `k + 1`"
        );
    }

    #[test]
    fn rename_bails_on_star_and_alias_shadow() {
        assert!(rw("MATCH (a) RETURN *", Dialect::Revised, Rule::RenameVars).is_none());
        assert!(rw(
            "MATCH (a), (b) RETURN b.k AS a ORDER BY a",
            Dialect::Revised,
            Rule::RenameVars
        )
        .is_none());
    }

    #[test]
    fn insert_with_after_first_binding_clause() {
        let out = rw(
            "MATCH (a:A) MATCH (b:B) RETURN a, b",
            Dialect::Revised,
            Rule::InsertWith,
        )
        .unwrap();
        assert_eq!(out, "MATCH (a:A) WITH * MATCH (b:B) RETURN a, b");
        assert!(rw(
            "MATCH ()-[:T]->() RETURN 1",
            Dialect::Revised,
            Rule::InsertWith
        )
        .is_none());
    }

    #[test]
    fn rewrites_validate_against_dialect() {
        // In Cypher 9 a WITH between update and RETURN is demanded by the
        // grammar; whatever the rules produce must still validate.
        let q = parse("MATCH (a:A) SET a.k = 1").unwrap();
        for r in rewrites(&q, Dialect::Cypher9) {
            assert!(validate(&r.query, Dialect::Cypher9).is_ok());
        }
    }

    #[test]
    fn order_sensitivity_classification() {
        let q = parse("MATCH (a) RETURN a.k LIMIT 2").unwrap();
        assert!(order_sensitive(&q, Dialect::Revised));
        let q = parse("MATCH (a) RETURN collect(a.k) AS ks").unwrap();
        assert!(order_sensitive(&q, Dialect::Revised));
        let q = parse("MATCH (a) SET a.k = 1").unwrap();
        assert!(order_sensitive(&q, Dialect::Cypher9));
        assert!(!order_sensitive(&q, Dialect::Revised));
        let q = parse("MATCH (a) RETURN a.k ORDER BY a.k").unwrap();
        assert!(!order_sensitive(&q, Dialect::Revised));
    }
}
