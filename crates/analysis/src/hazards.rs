//! Pass 2 — update-hazard detection.
//!
//! Detects the defect catalogue of *Updating Graph Databases with Cypher*
//! before execution:
//!
//! * **W01** — one `SET` clause writes a property and then reads or
//!   re-writes it (the non-atomic swap of Example 1);
//! * **W02** — one `SET` clause both reads and writes the same property
//!   key through different variables while the driving table may hold
//!   several rows (the order-dependent update of Example 2);
//! * **W03** — use of a variable after `DELETE`, and non-`DETACH`
//!   `DELETE` of a node with known incident relationships (§4.2);
//! * **W04** — legacy `MERGE` under a multi-row table mixing bound and
//!   unbound pattern elements: it reads its own writes, so the outcome
//!   depends on row order (Example 3, Figure 6);
//! * **W05** — migration hint: bare `MERGE` was removed in §7's revised
//!   language in favour of `MERGE ALL` / `MERGE SAME`.

use std::collections::{HashMap, HashSet};

use cypher_graph::EntityKind;
use cypher_parser::ast::{
    Clause, Dialect, Expr, MergeKind, PathPattern, ProjectionItems, RemoveItem, SetItem,
    SingleQuery,
};
use cypher_parser::{Span, Token};

use crate::diag::{Code, Diagnostic};
use crate::scope::{ClauseFacts, VarKind};
use crate::spans::{clause_tokens, find_keyword, find_prop_ref, find_var};

/// Run the hazard pass, consuming the scope pass's per-clause facts.
pub fn hazard_pass(
    source: &str,
    sq: &SingleQuery,
    dialect: Dialect,
    facts: &[ClauseFacts],
    diags: &mut Vec<Diagnostic>,
) {
    for (i, clause) in sq.clauses.iter().enumerate() {
        let Some(f) = facts.get(i) else { break };
        let span = sq.clause_span(i);
        let tokens = span.and_then(|s| clause_tokens(source, s));
        let ctx = ClauseCtx {
            span,
            tokens: tokens.as_deref(),
            facts: f,
            dialect,
        };
        check_use_after_delete(clause, &ctx, diags);
        check_clause(clause, &ctx, ctx.facts.multi_row, diags);
    }
}

struct ClauseCtx<'a> {
    span: Option<Span>,
    tokens: Option<&'a [Token]>,
    facts: &'a ClauseFacts,
    dialect: Dialect,
}

impl ClauseCtx<'_> {
    fn prop_span(&self, var: &str, key: &str, nth: usize) -> Option<Span> {
        self.tokens
            .and_then(|t| find_prop_ref(t, var, key, nth))
            .or(self.span)
    }

    fn var_span(&self, var: &str) -> Option<Span> {
        self.tokens.and_then(|t| find_var(t, var, 0)).or(self.span)
    }

    fn keyword_span(&self, kw: &str) -> Option<Span> {
        self.tokens.and_then(|t| find_keyword(t, kw)).or(self.span)
    }
}

/// Dispatch hazard checks for one clause. `multi_row` is passed separately
/// so `FOREACH` bodies (which iterate a list) can force it on.
fn check_clause(clause: &Clause, ctx: &ClauseCtx, multi_row: bool, diags: &mut Vec<Diagnostic>) {
    match clause {
        Clause::Set { items } => check_set(items, ctx, multi_row, diags),
        Clause::Delete { detach, exprs } => check_delete(*detach, exprs, ctx, diags),
        Clause::Merge { kind, patterns, .. } => check_merge(*kind, patterns, ctx, multi_row, diags),
        Clause::Foreach { body, .. } => {
            for c in body {
                check_clause(c, ctx, true, diags);
            }
        }
        _ => {}
    }
}

// ------------------------------------------------------------------
// W01 / W02 — SET hazards
// ------------------------------------------------------------------

fn check_set(items: &[SetItem], ctx: &ClauseCtx, multi_row: bool, diags: &mut Vec<Diagnostic>) {
    // (variable, key) pairs written by items processed so far.
    let mut written: HashSet<(String, String)> = HashSet::new();
    // Textual occurrence counters per (variable, key), for caret placement.
    let mut occurrences: HashMap<(String, String), usize> = HashMap::new();
    // Keys already reported as W01, to suppress the weaker W02 on them.
    let mut w01_keys: HashSet<String> = HashSet::new();
    // key -> writing variables; key -> (reading variable, occurrence).
    let mut writes_by_key: HashMap<String, HashSet<String>> = HashMap::new();
    let mut reads_by_key: HashMap<String, Vec<(String, usize)>> = HashMap::new();

    let bump = |occ: &mut HashMap<(String, String), usize>, var: &str, key: &str| -> usize {
        let slot = occ.entry((var.to_owned(), key.to_owned())).or_insert(0);
        let n = *slot;
        *slot += 1;
        n
    };

    for item in items {
        let SetItem::Property { target, key, value } = item else {
            continue;
        };
        let Expr::Variable(tv) = target else { continue };
        let write_occ = bump(&mut occurrences, tv, key);

        // Reads in the right-hand side, in source order.
        let mut reads = Vec::new();
        collect_prop_reads(value, &mut reads);
        for (rv, rk) in &reads {
            let read_occ = bump(&mut occurrences, rv, rk);
            if written.contains(&(rv.clone(), rk.clone())) && ctx.dialect == Dialect::Cypher9 {
                diags.push(
                    Diagnostic::new(
                        Code::W01ConflictingSet,
                        ctx.prop_span(rv, rk, read_occ),
                        format!(
                            "SET reads `{rv}.{rk}` after an earlier item in the same clause \
                             wrote it; legacy SET applies items left to right, so the original \
                             value is lost"
                        ),
                    )
                    .with_note(
                        "paper Example 1: the property swap silently fails under Cypher 9; \
                         the revised atomic SET (§7) reads all right-hand sides first",
                    ),
                );
                w01_keys.insert(rk.clone());
            }
            reads_by_key
                .entry(rk.clone())
                .or_default()
                .push((rv.clone(), read_occ));
        }

        if !written.insert((tv.clone(), key.clone())) {
            diags.push(
                Diagnostic::new(
                    Code::W01ConflictingSet,
                    ctx.prop_span(tv, key, write_occ),
                    format!("`{tv}.{key}` is assigned twice in one SET clause"),
                )
                .with_note(
                    "under legacy semantics the last assignment silently wins; the revised \
                     atomic SET (§7) aborts on conflicting values",
                ),
            );
            w01_keys.insert(key.clone());
        }
        writes_by_key
            .entry(key.clone())
            .or_default()
            .insert(tv.clone());
    }

    // W02: same key read and written through different variables. Only a
    // hazard when several rows can interleave (Example 2's dirty data) and
    // only under legacy semantics — the revised SET reads a snapshot.
    if !multi_row || ctx.dialect != Dialect::Cypher9 {
        return;
    }
    let mut reported: HashSet<String> = HashSet::new();
    for (key, reads) in &reads_by_key {
        if w01_keys.contains(key) || reported.contains(key) {
            continue;
        }
        let Some(writers) = writes_by_key.get(key) else {
            continue;
        };
        for (rv, occ) in reads {
            if writers.iter().any(|w| w != rv) {
                diags.push(
                    Diagnostic::new(
                        Code::W02OrderDependentSet,
                        ctx.prop_span(rv, key, *occ),
                        format!(
                            "SET both reads and writes property `{key}` (read via `{rv}`) \
                             while the driving table may hold several rows; the result \
                             depends on row order"
                        ),
                    )
                    .with_note(
                        "paper Example 2: on dirty data the legacy per-record SET makes the \
                         outcome order-dependent; the revised SET (§7) reads all values up \
                         front and aborts on conflict",
                    ),
                );
                reported.insert(key.clone());
                break;
            }
        }
    }
}

/// Property reads of the form `var.key`, in (approximate) source order.
fn collect_prop_reads(expr: &Expr, out: &mut Vec<(String, String)>) {
    if let Expr::Property(base, key) = expr {
        if let Expr::Variable(v) = base.as_ref() {
            out.push((v.clone(), key.clone()));
            return;
        }
    }
    expr.for_each_child(&mut |c| collect_prop_reads(c, out));
}

// ------------------------------------------------------------------
// W03 — DELETE hazards
// ------------------------------------------------------------------

fn check_delete(detach: bool, exprs: &[Expr], ctx: &ClauseCtx, diags: &mut Vec<Diagnostic>) {
    if detach {
        return;
    }
    let deleted_rel_vars: HashSet<&str> = exprs
        .iter()
        .filter_map(|e| match e {
            Expr::Variable(v)
                if ctx.facts.env.get(v) == Some(&VarKind::Entity(EntityKind::Relationship)) =>
            {
                Some(v.as_str())
            }
            _ => None,
        })
        .collect();
    for e in exprs {
        let Expr::Variable(v) = e else { continue };
        if ctx.facts.env.get(v) != Some(&VarKind::Entity(EntityKind::Node)) {
            continue;
        }
        let Some(incident) = ctx.facts.incident_rels.get(v) else {
            continue;
        };
        let all_covered = !incident.is_empty()
            && incident.iter().all(|slot| {
                slot.as_deref()
                    .is_some_and(|r| deleted_rel_vars.contains(r))
            });
        if incident.is_empty() || all_covered {
            continue;
        }
        let effect = match ctx.dialect {
            Dialect::Cypher9 => {
                "under legacy semantics this leaves dangling relationships mid-statement"
            }
            Dialect::Revised => "the revised DELETE (§7) will raise an error at run time",
        };
        diags.push(
            Diagnostic::new(
                Code::W03DeleteHazard,
                ctx.var_span(v),
                format!(
                    "DELETE of node `{v}` which was matched with incident relationships; \
                     {effect}"
                ),
            )
            .with_note(
                "§4.2: delete the incident relationships in the same clause or use \
                 DETACH DELETE",
            ),
        );
    }
}

/// W03 (use-after-delete): a variable deleted by an earlier clause is used
/// again. Bare pass-through projection (`WITH n`, `RETURN n`) is allowed —
/// projecting a deleted entity is how the paper's examples observe zombies.
fn check_use_after_delete(clause: &Clause, ctx: &ClauseCtx, diags: &mut Vec<Diagnostic>) {
    if ctx.facts.deleted.is_empty() {
        return;
    }
    let mut used: Vec<String> = Vec::new();
    collect_nontrivial_uses(clause, &mut used);
    let mut reported: HashSet<&str> = HashSet::new();
    for v in &used {
        if let Some(&at) = ctx.facts.deleted.get(v) {
            if !reported.insert(v.as_str()) {
                continue;
            }
            let effect = match ctx.dialect {
                Dialect::Cypher9 => {
                    "legacy semantics keeps a reference to the deleted entity (a zombie)"
                }
                Dialect::Revised => "the revised semantics (§7) substitutes null",
            };
            diags.push(
                Diagnostic::new(
                    Code::W03DeleteHazard,
                    ctx.var_span(v),
                    format!("variable `{v}` was DELETEd by clause {}; {effect}", at + 1),
                )
                .with_note("§4.2: deleted entities must not be updated or re-matched"),
            );
        }
    }
}

fn collect_nontrivial_uses(clause: &Clause, out: &mut Vec<String>) {
    let expr_vars = |e: &Expr, out: &mut Vec<String>| collect_vars(e, out);
    match clause {
        Clause::Match {
            patterns,
            where_clause,
            ..
        } => {
            for p in patterns {
                collect_pattern_vars(p, out);
            }
            if let Some(w) = where_clause {
                expr_vars(w, out);
            }
        }
        Clause::Unwind { expr, .. } => expr_vars(expr, out),
        Clause::With(p) | Clause::Return(p) => {
            let items = match &p.items {
                ProjectionItems::Star { extra } => extra,
                ProjectionItems::Items(items) => items,
            };
            for item in items {
                // A bare variable projection is a pass-through, not a use.
                if matches!(&item.expr, Expr::Variable(_)) {
                    continue;
                }
                expr_vars(&item.expr, out);
            }
            for si in &p.order_by {
                expr_vars(&si.expr, out);
            }
            for e in p.skip.iter().chain(&p.limit).chain(&p.where_clause) {
                expr_vars(e, out);
            }
        }
        Clause::Create { patterns } => {
            for p in patterns {
                collect_pattern_vars(p, out);
            }
        }
        Clause::Set { items } => {
            for item in items {
                match item {
                    SetItem::Property { target, value, .. } => {
                        expr_vars(target, out);
                        expr_vars(value, out);
                    }
                    SetItem::Replace { target, value } | SetItem::MergeProps { target, value } => {
                        out.push(target.clone());
                        expr_vars(value, out);
                    }
                    SetItem::Labels { target, .. } => out.push(target.clone()),
                }
            }
        }
        Clause::Remove { items } => {
            for item in items {
                match item {
                    RemoveItem::Property { target, .. } => expr_vars(target, out),
                    RemoveItem::Labels { target, .. } => out.push(target.clone()),
                }
            }
        }
        Clause::Delete { exprs, .. } => {
            for e in exprs {
                expr_vars(e, out);
            }
        }
        Clause::Merge {
            patterns,
            on_create,
            on_match,
            ..
        } => {
            for p in patterns {
                collect_pattern_vars(p, out);
            }
            for item in on_create.iter().chain(on_match) {
                if let SetItem::Property { target, value, .. } = item {
                    expr_vars(target, out);
                    expr_vars(value, out);
                }
            }
        }
        Clause::Foreach { list, body, .. } => {
            expr_vars(list, out);
            for c in body {
                collect_nontrivial_uses(c, out);
            }
        }
        Clause::CreateIndex { .. } | Clause::DropIndex { .. } => {}
    }
}

fn collect_vars(expr: &Expr, out: &mut Vec<String>) {
    if let Expr::Variable(v) = expr {
        out.push(v.clone());
        return;
    }
    expr.for_each_child(&mut |c| collect_vars(c, out));
}

fn collect_pattern_vars(p: &PathPattern, out: &mut Vec<String>) {
    if let Some(v) = &p.start.var {
        out.push(v.clone());
    }
    for (_, e) in &p.start.props {
        collect_vars(e, out);
    }
    for (rel, node) in &p.steps {
        for v in rel.var.iter().chain(&node.var) {
            out.push(v.clone());
        }
        for (_, e) in rel.props.iter().chain(&node.props) {
            collect_vars(e, out);
        }
    }
}

// ------------------------------------------------------------------
// W04 / W05 — MERGE hazards
// ------------------------------------------------------------------

fn check_merge(
    kind: MergeKind,
    patterns: &[PathPattern],
    ctx: &ClauseCtx,
    multi_row: bool,
    diags: &mut Vec<Diagnostic>,
) {
    if kind != MergeKind::Legacy {
        return;
    }

    // W04: a legacy MERGE whose pattern mixes already-bound variables with
    // fresh elements, under a table that may hold several rows. Each row's
    // match-or-create sees the creations of previous rows (Example 3).
    if multi_row {
        let mut bound = 0usize;
        let mut unbound = 0usize;
        let mut count = |var: &Option<String>| match var {
            Some(v) if ctx.facts.env.contains_key(v) => bound += 1,
            _ => unbound += 1,
        };
        for p in patterns {
            count(&p.start.var);
            for (rel, n) in &p.steps {
                count(&rel.var);
                count(&n.var);
            }
        }
        if bound > 0 && unbound > 0 {
            diags.push(
                Diagnostic::new(
                    Code::W04MergeReadsOwnWrites,
                    ctx.keyword_span("MERGE"),
                    "legacy MERGE under a multi-row driving table mixes bound variables \
                     with fresh pattern elements; each row sees the creations of earlier \
                     rows, so the outcome depends on row order",
                )
                .with_note(
                    "paper Example 3 / Figure 6: the marketplace MERGE creates different \
                     graphs for different row orders; use MERGE ALL or MERGE SAME (§7)",
                ),
            );
        }
    }

    // W05: migration hint — always applicable to a bare legacy MERGE when
    // analyzing Cypher 9 (under the revised dialect it is an E00 instead).
    if ctx.dialect == Dialect::Cypher9 {
        diags.push(
            Diagnostic::new(
                Code::W05LegacyMergeMigration,
                ctx.keyword_span("MERGE"),
                "bare MERGE is removed in the revised language",
            )
            .with_note(
                "§7: use MERGE ALL (atomic match-or-create per row) or MERGE SAME \
                 (additionally collapses duplicates)",
            ),
        );
    }
}
