//! Pass 1 — scope and flow analysis.
//!
//! Walks a [`SingleQuery`] clause by clause, maintaining the binding
//! environment of the driving table (§2 of the paper): which variables are
//! bound, and to what *kind* of value (node, relationship, path, or plain
//! value). Emits:
//!
//! * **E01** — use of a variable that is not bound at that point;
//! * **E02** — a variable re-bound or used with an incompatible kind
//!   (e.g. a node variable reused in relationship position, or `DELETE`
//!   of a plain value).
//!
//! The pass also records per-clause *flow facts* — the environment before
//! the clause, whether the driving table may hold more than one row, which
//! variables have been `DELETE`d, and which node variables are known to
//! have incident relationships. The update-hazard pass
//! ([`crate::hazards`]) consumes these facts.

use std::collections::HashMap;

use cypher_graph::EntityKind;
use cypher_parser::ast::{
    Clause, Expr, Lit, PathPattern, Projection, ProjectionItems, RemoveItem, SetItem, SingleQuery,
};
use cypher_parser::{Span, Token};

use crate::diag::{Code, Diagnostic};
use crate::spans::{clause_tokens, find_var};

/// What kind of value a variable is bound to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarKind {
    /// A graph entity — node or relationship ([`EntityKind`] from the
    /// store's id layer, so analyzer and engine agree on the taxonomy).
    Entity(EntityKind),
    /// A named path.
    Path,
    /// Any other value (scalars, lists, maps, var-length rel lists).
    Value,
}

impl VarKind {
    pub fn node() -> Self {
        VarKind::Entity(EntityKind::Node)
    }

    pub fn rel() -> Self {
        VarKind::Entity(EntityKind::Relationship)
    }

    fn describe(self) -> &'static str {
        match self {
            VarKind::Entity(EntityKind::Node) => "a node",
            VarKind::Entity(EntityKind::Relationship) => "a relationship",
            VarKind::Path => "a path",
            VarKind::Value => "a value",
        }
    }
}

/// Snapshot of the analysis state *before* each top-level clause.
#[derive(Clone, Debug)]
pub struct ClauseFacts {
    /// Binding environment entering the clause.
    pub env: HashMap<String, VarKind>,
    /// May the driving table hold more than one row here?
    pub multi_row: bool,
    /// Variables `DELETE`d by an earlier clause, with that clause's index.
    pub deleted: HashMap<String, usize>,
    /// For node variables: incident relationship slots observed in reading
    /// patterns so far (`Some(var)` for named rels, `None` for anonymous).
    pub incident_rels: HashMap<String, Vec<Option<String>>>,
}

/// Result of the scope pass: one [`ClauseFacts`] per top-level clause.
pub struct ScopeResult {
    pub facts: Vec<ClauseFacts>,
}

struct Scope<'a> {
    source: &'a str,
    env: HashMap<String, VarKind>,
    multi_row: bool,
    deleted: HashMap<String, usize>,
    incident_rels: HashMap<String, Vec<Option<String>>>,
    diags: &'a mut Vec<Diagnostic>,
    /// Tokens of the clause currently being analyzed (for caret spans).
    tokens: Option<Vec<Token>>,
    clause_span: Option<Span>,
}

/// Run the scope pass over one single query.
pub fn scope_pass(source: &str, sq: &SingleQuery, diags: &mut Vec<Diagnostic>) -> ScopeResult {
    let mut scope = Scope {
        source,
        env: HashMap::new(),
        multi_row: false,
        deleted: HashMap::new(),
        incident_rels: HashMap::new(),
        diags,
        tokens: None,
        clause_span: None,
    };
    let mut facts = Vec::with_capacity(sq.clauses.len());
    for (i, clause) in sq.clauses.iter().enumerate() {
        facts.push(ClauseFacts {
            env: scope.env.clone(),
            multi_row: scope.multi_row,
            deleted: scope.deleted.clone(),
            incident_rels: scope.incident_rels.clone(),
        });
        scope.enter_clause(sq.clause_span(i));
        scope.clause(clause, i);
    }
    ScopeResult { facts }
}

impl Scope<'_> {
    fn enter_clause(&mut self, span: Option<Span>) {
        self.clause_span = span;
        self.tokens = span.and_then(|s| clause_tokens(self.source, s));
    }

    /// Best caret span for variable `var` within the current clause.
    fn var_span(&self, var: &str) -> Option<Span> {
        self.tokens
            .as_deref()
            .and_then(|t| find_var(t, var, 0))
            .or(self.clause_span)
    }

    fn bind(&mut self, var: &str, kind: VarKind) {
        match self.env.get(var) {
            Some(&old) if old != kind => {
                self.diags.push(Diagnostic::new(
                    Code::E02KindMismatch,
                    self.var_span(var),
                    format!(
                        "variable `{var}` is already bound as {}; it cannot be reused as {}",
                        old.describe(),
                        kind.describe()
                    ),
                ));
            }
            Some(_) => {}
            None => {
                self.env.insert(var.to_owned(), kind);
            }
        }
    }

    fn require_bound(&mut self, var: &str) -> Option<VarKind> {
        match self.env.get(var) {
            Some(&k) => Some(k),
            None => {
                self.diags.push(Diagnostic::new(
                    Code::E01UnboundVariable,
                    self.var_span(var),
                    format!("variable `{var}` is not bound here"),
                ));
                None
            }
        }
    }

    // --------------------------------------------------------------
    // Clauses
    // --------------------------------------------------------------

    fn clause(&mut self, clause: &Clause, idx: usize) {
        match clause {
            Clause::Match {
                patterns,
                where_clause,
                ..
            } => {
                for p in patterns {
                    self.bind_pattern(p, PatternMode::Read);
                }
                for p in patterns {
                    self.check_pattern_props(p);
                }
                if let Some(w) = where_clause {
                    self.check_expr(w, &mut Vec::new());
                }
                self.multi_row = true;
            }
            Clause::Unwind { expr, alias } => {
                self.check_expr(expr, &mut Vec::new());
                self.bind(alias, VarKind::Value);
                self.multi_row = true;
            }
            Clause::With(p) => self.projection(p, true),
            Clause::Return(p) => self.projection(p, false),
            Clause::Create { patterns } => {
                for p in patterns {
                    self.bind_pattern(p, PatternMode::Create);
                }
                for p in patterns {
                    self.check_pattern_props(p);
                }
            }
            Clause::Set { items } => {
                for item in items {
                    self.set_item(item);
                }
            }
            Clause::Remove { items } => {
                for item in items {
                    match item {
                        RemoveItem::Property { target, .. } => {
                            self.check_expr(target, &mut Vec::new())
                        }
                        RemoveItem::Labels { target, labels: _ } => self.label_target(target),
                    }
                }
            }
            Clause::Delete { exprs, .. } => {
                for e in exprs {
                    self.check_expr(e, &mut Vec::new());
                    if let Expr::Variable(v) = e {
                        if let Some(kind) = self.env.get(v).copied() {
                            if kind == VarKind::Value {
                                self.diags.push(Diagnostic::new(
                                    Code::E02KindMismatch,
                                    self.var_span(v),
                                    format!(
                                        "DELETE target `{v}` is a plain value; only nodes, \
                                         relationships and paths can be deleted"
                                    ),
                                ));
                            } else {
                                self.deleted.entry(v.clone()).or_insert(idx);
                            }
                        }
                    }
                }
            }
            Clause::Merge {
                patterns,
                on_create,
                on_match,
                ..
            } => {
                for p in patterns {
                    self.bind_pattern(p, PatternMode::Merge);
                }
                for p in patterns {
                    self.check_pattern_props(p);
                }
                for item in on_create.iter().chain(on_match) {
                    self.set_item(item);
                }
            }
            Clause::Foreach { var, list, body } => {
                self.check_expr(list, &mut Vec::new());
                // The loop variable and any bindings made by the body are
                // scoped to the body.
                let saved_env = self.env.clone();
                self.env.insert(var.clone(), VarKind::Value);
                for c in body {
                    self.clause(c, idx);
                }
                self.env = saved_env;
            }
            Clause::CreateIndex { .. } | Clause::DropIndex { .. } => {}
        }
    }

    fn label_target(&mut self, target: &str) {
        if let Some(kind) = self.require_bound(target) {
            if !matches!(kind, VarKind::Entity(EntityKind::Node)) {
                self.diags.push(Diagnostic::new(
                    Code::E02KindMismatch,
                    self.var_span(target),
                    format!(
                        "labels can only be added to or removed from nodes, but `{target}` \
                         is {}",
                        kind.describe()
                    ),
                ));
            }
        }
    }

    fn set_item(&mut self, item: &SetItem) {
        match item {
            SetItem::Property { target, value, .. } => {
                self.check_expr(target, &mut Vec::new());
                self.check_expr(value, &mut Vec::new());
            }
            SetItem::Replace { target, value } | SetItem::MergeProps { target, value } => {
                self.require_bound(target);
                self.check_expr(value, &mut Vec::new());
            }
            SetItem::Labels { target, .. } => self.label_target(target),
        }
    }

    fn projection(&mut self, proj: &Projection, is_with: bool) {
        fn add_item(
            scope: &mut Scope<'_>,
            out_env: &mut HashMap<String, VarKind>,
            expr: &Expr,
            alias: &Option<String>,
        ) {
            scope.check_expr(expr, &mut Vec::new());
            let kind = match expr {
                Expr::Variable(v) => scope.env.get(v).copied().unwrap_or(VarKind::Value),
                _ => VarKind::Value,
            };
            let name = match (alias, expr) {
                (Some(a), _) => a.clone(),
                (None, Expr::Variable(v)) => v.clone(),
                (None, other) => cypher_parser::pretty::print_expr(other),
            };
            out_env.insert(name, kind);
        }
        let mut out_env: HashMap<String, VarKind> = HashMap::new();
        let mut all_aggregate = true;
        match &proj.items {
            ProjectionItems::Star { extra } => {
                all_aggregate = false;
                for (v, k) in &self.env {
                    out_env.insert(v.clone(), *k);
                }
                for item in extra {
                    add_item(self, &mut out_env, &item.expr, &item.alias);
                }
            }
            ProjectionItems::Items(items) => {
                for item in items {
                    if !item.expr.contains_aggregate() {
                        all_aggregate = false;
                    }
                    add_item(self, &mut out_env, &item.expr, &item.alias);
                }
            }
        }
        // ORDER BY / WHERE see both the incoming and projected names.
        let mut merged = self.env.clone();
        merged.extend(out_env.iter().map(|(k, v)| (k.clone(), *v)));
        let saved = std::mem::replace(&mut self.env, merged);
        for si in &proj.order_by {
            self.check_expr(&si.expr, &mut Vec::new());
        }
        if let Some(w) = &proj.where_clause {
            self.check_expr(w, &mut Vec::new());
        }
        for e in proj.skip.iter().chain(&proj.limit) {
            self.check_expr(e, &mut Vec::new());
        }
        self.env = saved;

        if is_with {
            // Deleted markers survive only for variables that pass through.
            self.deleted.retain(|v, _| out_env.contains_key(v));
            self.env = out_env;
        }
        if all_aggregate {
            // Aggregation without grouping keys collapses to one row.
            self.multi_row = false;
        }
        if let Some(Expr::Literal(Lit::Int(n))) = &proj.limit {
            if *n <= 1 {
                self.multi_row = false;
            }
        }
    }

    // --------------------------------------------------------------
    // Patterns
    // --------------------------------------------------------------

    fn bind_pattern(&mut self, p: &PathPattern, mode: PatternMode) {
        if let Some(pv) = &p.var {
            self.bind(pv, VarKind::Path);
        }
        if let Some(nv) = &p.start.var {
            self.bind(nv, VarKind::node());
        }
        let mut prev = p.start.var.clone();
        for (rel, node) in &p.steps {
            if let Some(rv) = &rel.var {
                if rel.length.is_some() {
                    // A var-length pattern binds the variable to the *list*
                    // of traversed relationships.
                    self.bind(rv, VarKind::Value);
                } else {
                    if mode != PatternMode::Read && self.env.contains_key(rv) {
                        self.diags.push(Diagnostic::new(
                            Code::E02KindMismatch,
                            self.var_span(rv),
                            format!(
                                "relationship variable `{rv}` in {} must be fresh",
                                if mode == PatternMode::Create {
                                    "CREATE"
                                } else {
                                    "MERGE"
                                }
                            ),
                        ));
                    }
                    self.bind(rv, VarKind::rel());
                }
            }
            if let Some(nv) = &node.var {
                self.bind(nv, VarKind::node());
            }
            if mode == PatternMode::Read {
                // Record adjacency evidence: matching this step proves the
                // endpoint nodes have at least one incident relationship.
                for n in [&prev, &node.var].into_iter().flatten() {
                    self.incident_rels
                        .entry(n.clone())
                        .or_default()
                        .push(rel.var.clone());
                }
            }
            prev = node.var.clone();
        }
    }

    fn check_pattern_props(&mut self, p: &PathPattern) {
        for (_, e) in &p.start.props {
            self.check_expr(e, &mut Vec::new());
        }
        for (rel, node) in &p.steps {
            for (_, e) in &rel.props {
                self.check_expr(e, &mut Vec::new());
            }
            for (_, e) in &node.props {
                self.check_expr(e, &mut Vec::new());
            }
        }
    }

    // --------------------------------------------------------------
    // Expressions
    // --------------------------------------------------------------

    /// Check variable uses in `expr`. `locals` holds variables bound by
    /// enclosing comprehension/quantifier/reduce binders.
    fn check_expr(&mut self, expr: &Expr, locals: &mut Vec<String>) {
        match expr {
            Expr::Variable(v) => {
                if !locals.iter().any(|l| l == v) && !self.env.contains_key(v) {
                    self.diags.push(Diagnostic::new(
                        Code::E01UnboundVariable,
                        self.var_span(v),
                        format!("variable `{v}` is not bound here"),
                    ));
                }
            }
            Expr::ListComprehension {
                var,
                list,
                filter,
                body,
            } => {
                self.check_expr(list, locals);
                locals.push(var.clone());
                if let Some(f) = filter {
                    self.check_expr(f, locals);
                }
                if let Some(b) = body {
                    self.check_expr(b, locals);
                }
                locals.pop();
            }
            Expr::Quantifier {
                var, list, pred, ..
            } => {
                self.check_expr(list, locals);
                locals.push(var.clone());
                self.check_expr(pred, locals);
                locals.pop();
            }
            Expr::Reduce {
                acc,
                init,
                var,
                list,
                body,
            } => {
                self.check_expr(init, locals);
                self.check_expr(list, locals);
                locals.push(acc.clone());
                locals.push(var.clone());
                self.check_expr(body, locals);
                locals.pop();
                locals.pop();
            }
            Expr::PatternPredicate(p) => {
                // Pattern predicates may introduce fresh (existential)
                // variables; only their property expressions are checked.
                for (_, e) in &p.start.props {
                    self.check_expr(e, locals);
                }
                for (rel, node) in &p.steps {
                    for (_, e) in &rel.props {
                        self.check_expr(e, locals);
                    }
                    for (_, e) in &node.props {
                        self.check_expr(e, locals);
                    }
                }
            }
            other => {
                // `for_each_child` hands out short-lived references, so
                // children are cloned before the recursive check (the
                // analyzer runs once per statement; this is cheap).
                let mut children: Vec<Expr> = Vec::new();
                other.for_each_child(&mut |c| children.push(c.clone()));
                for c in &children {
                    self.check_expr(c, locals);
                }
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum PatternMode {
    Read,
    Create,
    Merge,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse;

    fn diags_for(src: &str) -> Vec<Diagnostic> {
        let q = parse(src).unwrap();
        let mut diags = Vec::new();
        scope_pass(src, &q.first, &mut diags);
        diags
    }

    #[test]
    fn unbound_variable_is_reported_with_span() {
        let src = "MATCH (n) RETURN m";
        let d = diags_for(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::E01UnboundVariable);
        let span = d[0].span.unwrap();
        assert_eq!(&src[span.start..span.end], "m");
    }

    #[test]
    fn kind_mismatch_on_reuse() {
        let d = diags_for("MATCH (n)-[r]->(m) MATCH (a)-[n]->(b) RETURN n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::E02KindMismatch);
    }

    #[test]
    fn with_narrows_scope() {
        let d = diags_for("MATCH (n)-[r]->(m) WITH n RETURN r");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::E01UnboundVariable);
    }

    #[test]
    fn comprehension_binders_are_local() {
        assert!(diags_for("RETURN [x IN [1,2] WHERE x > 1 | x * 2] AS l").is_empty());
        let d = diags_for("RETURN [x IN [1] | x] AS l, x");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::E01UnboundVariable);
    }

    #[test]
    fn delete_of_value_kind_is_rejected() {
        let d = diags_for("UNWIND [1,2] AS x DELETE x");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::E02KindMismatch);
    }

    #[test]
    fn facts_track_multi_row_and_deletes() {
        let src = "MATCH (n) DELETE n RETURN n";
        let q = parse(src).unwrap();
        let mut diags = Vec::new();
        let r = scope_pass(src, &q.first, &mut diags);
        assert!(!r.facts[0].multi_row);
        assert!(r.facts[1].multi_row);
        assert!(r.facts[1].deleted.is_empty());
        assert_eq!(r.facts[2].deleted.get("n"), Some(&1));
    }

    #[test]
    fn adjacency_evidence_is_recorded() {
        let src = "MATCH (a)-[r]->(b) RETURN a";
        let q = parse(src).unwrap();
        let mut diags = Vec::new();
        let r = scope_pass(src, &q.first, &mut diags);
        let inc = &r.facts[1].incident_rels;
        assert_eq!(inc["a"], vec![Some("r".to_owned())]);
        assert_eq!(inc["b"], vec![Some("r".to_owned())]);
    }
}
