//! Pass 3 — lightweight type/shape inference.
//!
//! A conservative bottom-up check over expressions: only shapes that are
//! certainly wrong are reported (**E03**), so the pass never second-guesses
//! dynamically-typed code that could be fine at run time. Covered:
//!
//! * property access / indexing / slicing on a scalar literal;
//! * arithmetic on boolean literals, or non-`+` arithmetic on string and
//!   list literals (`+` concatenates, so it is allowed);
//! * unary minus/plus on booleans, strings and lists.

use cypher_parser::ast::{
    BinOp, Clause, Expr, Lit, Projection, ProjectionItems, RemoveItem, SetItem, SingleQuery,
    UnaryOp,
};
use cypher_parser::Span;

use crate::diag::{Code, Diagnostic};

/// Run the shape pass over one single query.
pub fn shape_pass(sq: &SingleQuery, diags: &mut Vec<Diagnostic>) {
    for (i, clause) in sq.clauses.iter().enumerate() {
        check_clause(clause, sq.clause_span(i), diags);
    }
}

fn check_clause(clause: &Clause, span: Option<Span>, diags: &mut Vec<Diagnostic>) {
    let mut exprs: Vec<&Expr> = Vec::new();
    match clause {
        Clause::Match {
            patterns,
            where_clause,
            ..
        } => {
            for p in patterns {
                collect_pattern_exprs(p, &mut exprs);
            }
            exprs.extend(where_clause.iter());
        }
        Clause::Unwind { expr, .. } => exprs.push(expr),
        Clause::With(p) | Clause::Return(p) => collect_projection_exprs(p, &mut exprs),
        Clause::Create { patterns } => {
            for p in patterns {
                collect_pattern_exprs(p, &mut exprs);
            }
        }
        Clause::Set { items } => {
            for item in items {
                match item {
                    SetItem::Property { target, value, .. } => {
                        exprs.push(target);
                        exprs.push(value);
                    }
                    SetItem::Replace { value, .. } | SetItem::MergeProps { value, .. } => {
                        exprs.push(value)
                    }
                    SetItem::Labels { .. } => {}
                }
            }
        }
        Clause::Remove { items } => {
            for item in items {
                if let RemoveItem::Property { target, .. } = item {
                    exprs.push(target);
                }
            }
        }
        Clause::Delete { exprs: es, .. } => exprs.extend(es.iter()),
        Clause::Merge {
            patterns,
            on_create,
            on_match,
            ..
        } => {
            for p in patterns {
                collect_pattern_exprs(p, &mut exprs);
            }
            for item in on_create.iter().chain(on_match) {
                if let SetItem::Property { target, value, .. } = item {
                    exprs.push(target);
                    exprs.push(value);
                }
            }
        }
        Clause::Foreach { list, body, .. } => {
            exprs.push(list);
            for c in body {
                check_clause(c, span, diags);
            }
        }
        Clause::CreateIndex { .. } | Clause::DropIndex { .. } => {}
    }
    for e in exprs {
        check_expr(e, span, diags);
    }
}

fn collect_pattern_exprs<'a>(p: &'a cypher_parser::ast::PathPattern, out: &mut Vec<&'a Expr>) {
    for (_, e) in &p.start.props {
        out.push(e);
    }
    for (rel, node) in &p.steps {
        for (_, e) in rel.props.iter().chain(&node.props) {
            out.push(e);
        }
    }
}

fn collect_projection_exprs<'a>(p: &'a Projection, out: &mut Vec<&'a Expr>) {
    let items = match &p.items {
        ProjectionItems::Star { extra } => extra,
        ProjectionItems::Items(items) => items,
    };
    for item in items {
        out.push(&item.expr);
    }
    for si in &p.order_by {
        out.push(&si.expr);
    }
    out.extend(p.skip.iter().chain(&p.limit).chain(&p.where_clause));
}

/// Shape classes the pass can be certain about.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LitShape {
    Number,
    Bool,
    Str,
    List,
    Null,
}

fn literal_shape(e: &Expr) -> Option<LitShape> {
    match e {
        Expr::Literal(Lit::Int(_) | Lit::Float(_)) => Some(LitShape::Number),
        Expr::Literal(Lit::Bool(_)) => Some(LitShape::Bool),
        Expr::Literal(Lit::Str(_)) => Some(LitShape::Str),
        Expr::Literal(Lit::Null) => Some(LitShape::Null),
        Expr::List(_) => Some(LitShape::List),
        _ => None,
    }
}

fn check_expr(expr: &Expr, span: Option<Span>, diags: &mut Vec<Diagnostic>) {
    match expr {
        Expr::Property(base, key) => {
            if matches!(
                literal_shape(base),
                Some(LitShape::Number | LitShape::Bool | LitShape::Str)
            ) {
                diags.push(Diagnostic::new(
                    Code::E03BadShape,
                    span,
                    format!("property access `.{key}` on a scalar literal can never succeed"),
                ));
            }
        }
        Expr::Index(base, _) | Expr::Slice { base, .. } => {
            if matches!(literal_shape(base), Some(LitShape::Number | LitShape::Bool)) {
                diags.push(Diagnostic::new(
                    Code::E03BadShape,
                    span,
                    "indexing a scalar literal can never succeed".to_owned(),
                ));
            }
        }
        Expr::Binary(op, l, r) => {
            let arith = matches!(
                op,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod | BinOp::Pow
            );
            if arith {
                for side in [l.as_ref(), r.as_ref()] {
                    match literal_shape(side) {
                        Some(LitShape::Bool) => diags.push(Diagnostic::new(
                            Code::E03BadShape,
                            span,
                            "arithmetic on a boolean literal".to_owned(),
                        )),
                        Some(LitShape::Str | LitShape::List) if *op != BinOp::Add => {
                            diags.push(Diagnostic::new(
                                Code::E03BadShape,
                                span,
                                format!(
                                    "operator `{op:?}` on a {} literal",
                                    if literal_shape(side) == Some(LitShape::Str) {
                                        "string"
                                    } else {
                                        "list"
                                    }
                                ),
                            ))
                        }
                        _ => {}
                    }
                }
            }
        }
        Expr::Unary(UnaryOp::Neg | UnaryOp::Pos, inner) => {
            if matches!(
                literal_shape(inner),
                Some(LitShape::Bool | LitShape::Str | LitShape::List)
            ) {
                diags.push(Diagnostic::new(
                    Code::E03BadShape,
                    span,
                    "unary arithmetic on a non-numeric literal".to_owned(),
                ));
            }
        }
        _ => {}
    }
    expr.for_each_child(&mut |c| check_expr(c, span, diags));
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse;

    fn diags_for(src: &str) -> Vec<Diagnostic> {
        let q = parse(src).unwrap();
        let mut diags = Vec::new();
        shape_pass(&q.first, &mut diags);
        diags
    }

    #[test]
    fn property_on_scalar_literal() {
        let d = diags_for("RETURN true.name AS x");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::E03BadShape);
    }

    #[test]
    fn arithmetic_on_bool() {
        let d = diags_for("RETURN 1 + true AS x");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::E03BadShape);
    }

    #[test]
    fn string_concat_is_fine_but_subtraction_is_not() {
        assert!(diags_for("RETURN 'a' + 'b' AS x").is_empty());
        assert_eq!(diags_for("RETURN 'a' - 'b' AS x").len(), 2);
    }

    #[test]
    fn dynamic_expressions_are_left_alone() {
        assert!(diags_for("MATCH (n) RETURN n.x + n.y AS s").is_empty());
    }
}
