//! Diagnostic model for the static analyzer.
//!
//! Every finding is a [`Diagnostic`]: a stable [`Code`], a [`Severity`], an
//! optional byte [`Span`] into the analyzed source, a human message, and an
//! optional note pointing at the paper section that motivates the check.

use std::fmt;

use cypher_parser::{line_col, render_caret, Span};

/// How serious a diagnostic is.
///
/// Ordering matters: `Info < Warning < Error`, so "any diagnostic at least
/// as severe as X" is a plain comparison.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// A migration hint; the query is fine as written.
    Info,
    /// The query is accepted but its behaviour is one of the paper's
    /// documented anomalies (order dependence, zombies, read-own-writes).
    Warning,
    /// The query is wrong: it cannot behave as intended under the selected
    /// dialect (unbound variables, kind mismatches, dialect violations).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes.
///
/// `Exx` codes are correctness errors; `Wxx` codes are the update hazards
/// catalogued by the paper (see `DESIGN.md` §10 for the full mapping).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Code {
    /// Dialect validation failure (§3 / §7 grammar restrictions).
    E00DialectViolation,
    /// Use of a variable that is not bound in the driving table.
    E01UnboundVariable,
    /// A variable is used with a kind incompatible with its binding
    /// (node vs relationship vs path vs value).
    E02KindMismatch,
    /// An expression whose shape can never make sense (property access on
    /// a scalar literal, arithmetic on a boolean, …).
    E03BadShape,
    /// One `SET` clause writes a property and then reads or re-writes it
    /// (paper Example 1: the non-atomic swap).
    W01ConflictingSet,
    /// One `SET` clause both reads and writes the same property key across
    /// different variables under a multi-row table (paper Example 2:
    /// order-dependent result on dirty data).
    W02OrderDependentSet,
    /// Use of a deleted variable, or a non-`DETACH` `DELETE` of a node
    /// known to have relationships (paper §4.2: dangling edges, zombies).
    W03DeleteHazard,
    /// Legacy `MERGE` over a multi-row table mixing bound and unbound
    /// pattern elements: it reads its own writes (paper Example 3).
    W04MergeReadsOwnWrites,
    /// Legacy bare `MERGE` was removed in the revised language; suggest
    /// `MERGE ALL` / `MERGE SAME` (§7).
    W05LegacyMergeMigration,
}

impl Code {
    /// Short stable code string, e.g. `"W01"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::E00DialectViolation => "E00",
            Code::E01UnboundVariable => "E01",
            Code::E02KindMismatch => "E02",
            Code::E03BadShape => "E03",
            Code::W01ConflictingSet => "W01",
            Code::W02OrderDependentSet => "W02",
            Code::W03DeleteHazard => "W03",
            Code::W04MergeReadsOwnWrites => "W04",
            Code::W05LegacyMergeMigration => "W05",
        }
    }

    /// The fixed severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::E00DialectViolation
            | Code::E01UnboundVariable
            | Code::E02KindMismatch
            | Code::E03BadShape => Severity::Error,
            Code::W01ConflictingSet
            | Code::W02OrderDependentSet
            | Code::W03DeleteHazard
            | Code::W04MergeReadsOwnWrites => Severity::Warning,
            Code::W05LegacyMergeMigration => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One finding of the analyzer.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    /// Byte span into the analyzed source, when one could be attributed.
    pub span: Option<Span>,
    pub message: String,
    /// Secondary text: the paper reference and/or a suggested rewrite.
    pub note: Option<String>,
}

impl Diagnostic {
    pub fn new(code: Code, span: Option<Span>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
            note: None,
        }
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }

    /// Render with a caret line pointing into `source`, in the same format
    /// parse and dialect errors use:
    ///
    /// ```text
    /// warning[W01]: SET reads `p1.id` after writing it (line 1, column 64)
    /// MATCH ... SET p1.id = p2.id, p2.id = p1.id
    ///                                       ^
    ///   note: legacy SET applies items per record, left to right (Example 1)
    /// ```
    pub fn render(&self, source: &str) -> String {
        let head = format!("{}[{}]: {}", self.severity, self.code, self.message);
        let mut out = match self.span {
            Some(span) => render_caret(source, span, &head),
            None => head,
        };
        if let Some(note) = &self.note {
            out.push_str("\n  note: ");
            out.push_str(note);
        }
        out
    }

    /// Render as one JSON object for machine consumption
    /// (`cypher-lint --format json`). `file` labels the source (a path or
    /// `<stdin>`); `source` supplies the line/column computation. Span-less
    /// diagnostics emit `"span": null`. Keys are emitted in a fixed order
    /// so output is byte-stable across runs.
    pub fn render_json(&self, file: &str, source: &str) -> String {
        let mut out = String::from("{");
        push_json_field(&mut out, "file", file);
        out.push(',');
        push_json_field(&mut out, "severity", &self.severity.to_string());
        out.push(',');
        push_json_field(&mut out, "code", self.code.as_str());
        out.push(',');
        match self.span {
            Some(span) => {
                let (line, col) = line_col(source, span.start);
                out.push_str(&format!(
                    "\"span\":{{\"start\":{},\"end\":{},\"line\":{line},\"column\":{col}}}",
                    span.start, span.end
                ));
            }
            None => out.push_str("\"span\":null"),
        }
        out.push(',');
        push_json_field(&mut out, "message", &self.message);
        out.push(',');
        match &self.note {
            Some(note) => push_json_field(&mut out, "note", note),
            None => out.push_str("\"note\":null"),
        }
        out.push('}');
        out
    }

    /// [`Self::render_json`] plus the two stable trailer fields used by
    /// fuzz-campaign tooling: `source` — the exact byte-offset snippet of
    /// `source` the span points at (`null` for span-less diagnostics) —
    /// and `seed` — the campaign seed that produced the input (`null`
    /// when linting ordinary files). The trailer keys always appear, in
    /// this order, so consumers can byte-compare lines across runs.
    pub fn render_json_tagged(&self, file: &str, source: &str, seed: Option<u64>) -> String {
        let mut out = self.render_json(file, source);
        out.pop(); // strip the closing brace, re-append after the trailer
        out.push(',');
        match self.span.and_then(|s| source.get(s.start..s.end)) {
            Some(snippet) => push_json_field(&mut out, "source", snippet),
            None => out.push_str("\"source\":null"),
        }
        out.push(',');
        match seed {
            Some(s) => out.push_str(&format!("\"seed\":{s}")),
            None => out.push_str("\"seed\":null"),
        }
        out.push('}');
        out
    }
}

/// Append `"key":"escaped value"` to `out`.
fn push_json_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The highest severity among `diags`, if any.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn codes_have_fixed_severities() {
        assert_eq!(Code::W01ConflictingSet.severity(), Severity::Warning);
        assert_eq!(Code::E01UnboundVariable.severity(), Severity::Error);
        assert_eq!(Code::W05LegacyMergeMigration.severity(), Severity::Info);
        assert_eq!(Code::W01ConflictingSet.as_str(), "W01");
    }

    #[test]
    fn render_includes_code_caret_and_note() {
        let src = "SET p.x = 1";
        let d = Diagnostic::new(Code::W01ConflictingSet, Some(Span::new(4, 7)), "boom")
            .with_note("see Example 1");
        let r = d.render(src);
        assert!(r.starts_with("warning[W01]: boom (line 1, column 5)"));
        assert!(r.contains("SET p.x = 1"));
        assert!(r.contains("    ^"));
        assert!(r.ends_with("note: see Example 1"));
    }

    #[test]
    fn render_json_is_one_stable_object() {
        let src = "SET p.x = 1";
        let d = Diagnostic::new(Code::W01ConflictingSet, Some(Span::new(4, 7)), "say \"hi\"")
            .with_note("see Example 1");
        assert_eq!(
            d.render_json("a.cypher", src),
            "{\"file\":\"a.cypher\",\"severity\":\"warning\",\"code\":\"W01\",\
             \"span\":{\"start\":4,\"end\":7,\"line\":1,\"column\":5},\
             \"message\":\"say \\\"hi\\\"\",\"note\":\"see Example 1\"}"
        );
        let d = Diagnostic::new(Code::E00DialectViolation, None, "bad");
        assert_eq!(
            d.render_json("<stdin>", src),
            "{\"file\":\"<stdin>\",\"severity\":\"error\",\"code\":\"E00\",\
             \"span\":null,\"message\":\"bad\",\"note\":null}"
        );
    }

    #[test]
    fn render_json_tagged_appends_stable_trailer() {
        let src = "SET p.x = 1";
        let d = Diagnostic::new(Code::W01ConflictingSet, Some(Span::new(4, 7)), "boom");
        assert_eq!(
            d.render_json_tagged("a.cypher", src, Some(42)),
            "{\"file\":\"a.cypher\",\"severity\":\"warning\",\"code\":\"W01\",\
             \"span\":{\"start\":4,\"end\":7,\"line\":1,\"column\":5},\
             \"message\":\"boom\",\"note\":null,\"source\":\"p.x\",\"seed\":42}"
        );
        let d = Diagnostic::new(Code::E00DialectViolation, None, "bad");
        assert_eq!(
            d.render_json_tagged("<stdin>", src, None),
            "{\"file\":\"<stdin>\",\"severity\":\"error\",\"code\":\"E00\",\
             \"span\":null,\"message\":\"bad\",\"note\":null,\
             \"source\":null,\"seed\":null}"
        );
    }

    #[test]
    fn max_severity_over_mixed() {
        let diags = vec![
            Diagnostic::new(Code::W05LegacyMergeMigration, None, "a"),
            Diagnostic::new(Code::W02OrderDependentSet, None, "b"),
        ];
        assert_eq!(max_severity(&diags), Some(Severity::Warning));
        assert_eq!(max_severity(&[]), None);
    }
}
