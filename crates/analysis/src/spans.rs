//! Sub-clause span refinement.
//!
//! The parser records one byte span per *clause* (see
//! [`cypher_parser::SingleQuery::clause_spans`]); the analyzer wants carets
//! on individual variables and property references. Rather than threading
//! spans through every AST node, we re-lex the clause's source slice — the
//! lexer is cheap and deterministic — and look the tokens up positionally.
//!
//! All helpers degrade gracefully: if the slice fails to lex (it cannot,
//! for source that already parsed, but the analyzer never panics) or the
//! requested occurrence is absent, the caller falls back to the clause span.

use cypher_parser::lexer::lex;
use cypher_parser::{Span, Tok, Token};

/// Tokens of `source[span]`, with their spans rebased to the full source.
/// `None` when the slice does not lex (never the case for parsed input).
pub fn clause_tokens(source: &str, span: Span) -> Option<Vec<Token>> {
    let start = span.start.min(source.len());
    let end = span.end.min(source.len()).max(start);
    let slice = source.get(start..end)?;
    let mut tokens = lex(slice).ok()?;
    for t in &mut tokens {
        t.span.start += start;
        t.span.end += start;
    }
    Some(tokens)
}

fn ident_matches(tok: &Tok, name: &str) -> bool {
    match tok {
        Tok::Ident(s) | Tok::EscapedIdent(s) => s == name,
        _ => false,
    }
}

/// Span of the `nth` (0-based) occurrence of the property reference
/// `var.key` among the tokens, covering `var` through `key`.
pub fn find_prop_ref(tokens: &[Token], var: &str, key: &str, nth: usize) -> Option<Span> {
    let mut seen = 0;
    for w in tokens.windows(3) {
        if ident_matches(&w[0].tok, var) && w[1].tok == Tok::Dot && ident_matches(&w[2].tok, key) {
            if seen == nth {
                return Some(Span::new(w[0].span.start, w[2].span.end));
            }
            seen += 1;
        }
    }
    None
}

/// Span of the `nth` (0-based) standalone occurrence of variable `var`
/// (an identifier token not preceded by `.`, so `x` in `a.x` won't match).
pub fn find_var(tokens: &[Token], var: &str, nth: usize) -> Option<Span> {
    let mut seen = 0;
    for (i, t) in tokens.iter().enumerate() {
        if !ident_matches(&t.tok, var) {
            continue;
        }
        if i > 0 && tokens[i - 1].tok == Tok::Dot {
            continue;
        }
        if seen == nth {
            return Some(t.span);
        }
        seen += 1;
    }
    None
}

/// Span of the first occurrence of keyword `kw` (case-insensitive).
pub fn find_keyword(tokens: &[Token], kw: &str) -> Option<Span> {
    tokens
        .iter()
        .find(|t| matches!(&t.tok, Tok::Ident(s) if s.eq_ignore_ascii_case(kw)))
        .map(|t| t.span)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "MATCH (p1), (p2) SET p1.id = p2.id, p2.id = p1.id";

    fn toks() -> Vec<Token> {
        clause_tokens(SRC, Span::new(0, SRC.len())).unwrap()
    }

    #[test]
    fn prop_ref_occurrences() {
        let t = toks();
        let first = find_prop_ref(&t, "p1", "id", 0).unwrap();
        assert_eq!(&SRC[first.start..first.end], "p1.id");
        assert_eq!(first.start, 21);
        let second = find_prop_ref(&t, "p1", "id", 1).unwrap();
        assert_eq!(second.start, 44);
        assert!(find_prop_ref(&t, "p1", "id", 2).is_none());
    }

    #[test]
    fn var_occurrences_skip_property_keys() {
        let src = "SET p.id = id";
        let t = clause_tokens(src, Span::new(0, src.len())).unwrap();
        // `id` after the dot is a key, the bare `id` is a variable.
        let v = find_var(&t, "id", 0).unwrap();
        assert_eq!(v.start, 11);
        assert!(find_var(&t, "id", 1).is_none());
    }

    #[test]
    fn rebased_spans_survive_offsets() {
        let src = "MATCH (n) DELETE n";
        let t = clause_tokens(src, Span::new(10, src.len())).unwrap();
        let kw = find_keyword(&t, "delete").unwrap();
        assert_eq!(&src[kw.start..kw.end], "DELETE");
        let v = find_var(&t, "n", 0).unwrap();
        assert_eq!(v.start, 17);
    }
}
