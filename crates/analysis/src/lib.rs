//! # cypher-analysis — static semantic analysis for Cypher updates
//!
//! A multi-pass analyzer over the parsed AST that detects the defect
//! catalogue of *Updating Graph Databases with Cypher* (Green et al.,
//! PVLDB 2019) **before** a query executes:
//!
//! | code | severity | finding | paper |
//! |------|----------|---------|-------|
//! | E00  | error    | dialect violation | §3, §7 |
//! | E01  | error    | unbound variable | — |
//! | E02  | error    | entity-kind mismatch | — |
//! | E03  | error    | impossible expression shape | — |
//! | W01  | warning  | SET reads/re-writes its own writes | Example 1 |
//! | W02  | warning  | order-dependent SET under multi-row table | Example 2 |
//! | W03  | warning  | use after DELETE / dangling DELETE | §4.2 |
//! | W04  | warning  | legacy MERGE reads its own writes | Example 3 |
//! | W05  | info     | bare MERGE migration hint | §7 |
//!
//! The passes run in order: scope/flow analysis ([`scope`]), update-hazard
//! detection ([`hazards`]), shape inference ([`shape`]). Spans are clause
//! spans recorded by the parser, refined to individual variables and
//! property references by re-lexing the clause slice ([`spans`]).
//!
//! ```
//! use cypher_analysis::{lint, Code, Severity};
//! use cypher_parser::Dialect;
//!
//! let src = "MATCH (p1:Product {name: 'laptop'}), (p2:Product {name: 'tablet'}) \
//!            SET p1.id = p2.id, p2.id = p1.id";
//! let diags = lint(src, Dialect::Cypher9).unwrap();
//! assert!(diags.iter().any(|d| d.code == Code::W01ConflictingSet));
//! assert_eq!(diags[0].severity, Severity::Warning);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod diag;
pub mod hazards;
pub mod rewrite;
pub mod scope;
pub mod shape;
pub mod spans;

use cypher_parser::ast::{Dialect, Query, SingleQuery};
use cypher_parser::ParseError;

pub use diag::{max_severity, Code, Diagnostic, Severity};
pub use scope::VarKind;

/// Analyze an already-parsed query against `source` (the text it was parsed
/// from — clause spans index into it). Returns all diagnostics, sorted by
/// source position.
pub fn analyze(source: &str, query: &Query, dialect: Dialect) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // E00: fold dialect validation into the report rather than aborting,
    // so a hazardous *and* ill-dialected query shows everything at once.
    if let Err(e) = cypher_parser::validate(query, dialect) {
        diags.push(
            Diagnostic::new(Code::E00DialectViolation, e.span, e.message).with_note(
                match dialect {
                    Dialect::Cypher9 => "the Cypher 9 grammar (§3) restricts clause order",
                    Dialect::Revised => "the revised grammar (Figure 10) changed this construct",
                },
            ),
        );
    }

    analyze_single(source, &query.first, dialect, &mut diags);
    for (_, sq) in &query.unions {
        analyze_single(source, sq, dialect, &mut diags);
    }

    diags.sort_by_key(|d| (d.span.map(|s| s.start), d.code));
    diags
}

fn analyze_single(source: &str, sq: &SingleQuery, dialect: Dialect, diags: &mut Vec<Diagnostic>) {
    let scoped = scope::scope_pass(source, sq, diags);
    hazards::hazard_pass(source, sq, dialect, &scoped.facts, diags);
    shape::shape_pass(sq, diags);
}

/// Parse and analyze a single statement.
pub fn lint(source: &str, dialect: Dialect) -> Result<Vec<Diagnostic>, ParseError> {
    let query = cypher_parser::parse(source)?;
    Ok(analyze(source, &query, dialect))
}

/// Parse and analyze a `;`-separated script. Spans index into the whole
/// script text, so one rendering pass covers every statement.
pub fn lint_script(source: &str, dialect: Dialect) -> Result<Vec<Diagnostic>, ParseError> {
    let queries = cypher_parser::parse_script(source)?;
    let mut diags = Vec::new();
    for q in &queries {
        diags.extend(analyze(source, q, dialect));
    }
    diags.sort_by_key(|d| (d.span.map(|s| s.start), d.code));
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_query_has_no_diagnostics() {
        let diags = lint(
            "MATCH (u:User {id: 1}) SET u.name = 'Bob' RETURN u",
            Dialect::Cypher9,
        )
        .unwrap();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dialect_violation_becomes_e00() {
        // Bare MERGE is illegal in the revised dialect.
        let diags = lint("MERGE (n:N) RETURN n", Dialect::Revised).unwrap();
        assert!(diags.iter().any(|d| d.code == Code::E00DialectViolation));
    }

    #[test]
    fn diagnostics_are_sorted_by_position() {
        let src = "MATCH (a) RETURN missing1, missing2";
        let diags = lint(src, Dialect::Cypher9).unwrap();
        assert_eq!(diags.len(), 2);
        let spans: Vec<_> = diags.iter().map(|d| d.span.unwrap().start).collect();
        assert!(spans[0] < spans[1]);
    }

    #[test]
    fn script_lint_spans_are_absolute() {
        let src = "CREATE (:A);\nMATCH (n) RETURN m";
        let diags = lint_script(src, Dialect::Cypher9).unwrap();
        assert_eq!(diags.len(), 1);
        let span = diags[0].span.unwrap();
        assert_eq!(&src[span.start..span.end], "m");
        assert!(diags[0].render(src).contains("line 2"));
    }

    #[test]
    fn union_arms_are_analyzed_independently() {
        let src = "MATCH (a) RETURN a UNION MATCH (b) RETURN a";
        let diags = lint(src, Dialect::Cypher9).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::E01UnboundVariable);
    }
}
