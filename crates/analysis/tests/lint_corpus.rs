//! Lint corpus: one fixture per diagnostic code, including the paper's
//! Examples 1–3 verbatim. Each test pins down the code, severity and the
//! exact source span the caret lands on, so diagnostics stay stable.

use cypher_analysis::{lint, Code, Diagnostic, Severity};
use cypher_parser::Dialect;

fn lint9(src: &str) -> Vec<Diagnostic> {
    lint(src, Dialect::Cypher9).unwrap()
}

fn span_text<'a>(src: &'a str, d: &Diagnostic) -> &'a str {
    let span = d
        .span
        .unwrap_or_else(|| panic!("diagnostic {d:?} has no span"));
    &src[span.start..span.end]
}

fn find(diags: &[Diagnostic], code: Code) -> &Diagnostic {
    diags
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("no {code} in {diags:?}"))
}

// ------------------------------------------------------------------
// Errors
// ------------------------------------------------------------------

#[test]
fn e00_dialect_violation_carries_clause_span() {
    // Bare MERGE was removed from the revised language (§7).
    let src = "MERGE (n:N) RETURN n";
    let diags = lint(src, Dialect::Revised).unwrap();
    let d = find(&diags, Code::E00DialectViolation);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(span_text(src, d), "MERGE (n:N)");
}

#[test]
fn e01_unbound_variable_points_at_the_use() {
    let src = "MATCH (n:User) RETURN n.name, m.name";
    let diags = lint9(src);
    let d = find(&diags, Code::E01UnboundVariable);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(span_text(src, d), "m");
    assert_eq!(d.span.unwrap().start, src.rfind("m.name").unwrap());
}

#[test]
fn e02_kind_mismatch_node_reused_as_relationship() {
    let src = "MATCH (n)-[r]->(m) MATCH (a)-[n]->(b) RETURN n";
    let diags = lint9(src);
    let d = find(&diags, Code::E02KindMismatch);
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("already bound as a node"));
}

#[test]
fn e03_bad_shape_arithmetic_on_boolean() {
    let src = "RETURN 1 + true AS x";
    let diags = lint9(src);
    let d = find(&diags, Code::E03BadShape);
    assert_eq!(d.severity, Severity::Error);
}

// ------------------------------------------------------------------
// W01 — paper Example 1: the non-atomic swap
// ------------------------------------------------------------------

const EXAMPLE_1: &str = "MATCH (p1:Product {name: 'laptop'}), (p2:Product {name: 'tablet'}) \
                         SET p1.id = p2.id, p2.id = p1.id";

#[test]
fn w01_example_1_swap_flags_the_read_back() {
    let diags = lint9(EXAMPLE_1);
    let d = find(&diags, Code::W01ConflictingSet);
    assert_eq!(d.severity, Severity::Warning);
    // The caret lands on the *second* `p1.id` — the read that no longer
    // sees the original value.
    assert_eq!(span_text(EXAMPLE_1, d), "p1.id");
    assert_eq!(d.span.unwrap().start, EXAMPLE_1.rfind("p1.id").unwrap());
    assert!(d.note.as_deref().unwrap().contains("Example 1"));
    // W02 is suppressed for a key already flagged W01.
    assert!(!diags.iter().any(|d| d.code == Code::W02OrderDependentSet));
}

#[test]
fn w01_double_assignment_of_one_property() {
    let src = "MATCH (p:Product) SET p.id = 1, p.id = 2";
    let diags = lint9(src);
    let d = find(&diags, Code::W01ConflictingSet);
    assert!(d.message.contains("assigned twice"));
    // Caret on the second assignment's target.
    assert_eq!(d.span.unwrap().start, src.rfind("p.id").unwrap());
}

#[test]
fn w01_is_silent_under_the_revised_dialect_for_reads() {
    // The revised atomic SET (§7) reads all right-hand sides first, so the
    // swap is correct there.
    let diags = lint(EXAMPLE_1, Dialect::Revised).unwrap();
    assert!(
        !diags
            .iter()
            .any(|d| d.code == Code::W01ConflictingSet && d.message.contains("reads")),
        "{diags:?}"
    );
}

// ------------------------------------------------------------------
// W02 — paper Example 2: order-dependent update on dirty data
// ------------------------------------------------------------------

const EXAMPLE_2: &str = "MATCH (p1:Product {id: 85}), (p2:Product {id: 125}) SET p1.name = p2.name";

#[test]
fn w02_example_2_flags_the_cross_variable_read() {
    let diags = lint9(EXAMPLE_2);
    let d = find(&diags, Code::W02OrderDependentSet);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(span_text(EXAMPLE_2, d), "p2.name");
    assert!(d.note.as_deref().unwrap().contains("Example 2"));
}

#[test]
fn w02_needs_a_multi_row_table() {
    // Without a preceding MATCH/UNWIND the table is a single row; the
    // read/write overlap cannot interleave across records.
    let src = "CREATE (p1:P), (p2:P) SET p1.name = p2.name";
    let diags = lint9(src);
    assert!(!diags.iter().any(|d| d.code == Code::W02OrderDependentSet));
}

// ------------------------------------------------------------------
// W03 — §4.2: DELETE hazards
// ------------------------------------------------------------------

#[test]
fn w03_use_after_delete() {
    let src = "MATCH (n:User) DELETE n SET n.deleted = true";
    let diags = lint9(src);
    let d = find(&diags, Code::W03DeleteHazard);
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("DELETEd by clause 2"));
    // Caret on the `n` inside the SET clause, not the DELETE.
    assert_eq!(d.span.unwrap().start, src.find("n.deleted").unwrap());
}

#[test]
fn w03_bare_return_of_deleted_variable_is_allowed() {
    // Projecting a deleted entity is how the paper observes zombies; only
    // *updates and re-matches* of the variable are hazards.
    let src = "MATCH (n:User) DELETE n RETURN n";
    let diags = lint9(src);
    assert!(!diags.iter().any(|d| d.code == Code::W03DeleteHazard));
}

#[test]
fn w03_non_detach_delete_of_attached_node() {
    let src = "MATCH (a:User)-[r:ORDERED]->(b:Product) DELETE a";
    let diags = lint9(src);
    let d = find(&diags, Code::W03DeleteHazard);
    assert_eq!(span_text(src, d), "a");
    assert_eq!(d.span.unwrap().start, src.rfind('a').unwrap());
    assert!(d.note.as_deref().unwrap().contains("DETACH DELETE"));
}

#[test]
fn w03_silent_when_incident_rel_deleted_too() {
    let src = "MATCH (a:User)-[r:ORDERED]->(b:Product) DELETE r, a";
    let diags = lint9(src);
    assert!(!diags.iter().any(|d| d.code == Code::W03DeleteHazard));
}

// ------------------------------------------------------------------
// W04 — paper Example 3: legacy MERGE reads its own writes
// ------------------------------------------------------------------

const EXAMPLE_3: &str = "UNWIND [['u1', 'p', 'v1'], ['u2', 'p', 'v2'], ['u1', 'p', 'v2']] AS row \
                         MATCH (user:N {k: row[0]}), (product:N {k: row[1]}), (vendor:N {k: row[2]}) \
                         WITH user, product, vendor \
                         MERGE (user)-[:ORDERED]->(product)<-[:OFFERS]-(vendor)";

#[test]
fn w04_example_3_marketplace_merge() {
    let diags = lint9(EXAMPLE_3);
    let d = find(&diags, Code::W04MergeReadsOwnWrites);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(span_text(EXAMPLE_3, d), "MERGE");
    assert!(d.note.as_deref().unwrap().contains("Example 3"));
    assert!(d.note.as_deref().unwrap().contains("MERGE ALL"));
}

#[test]
fn w04_needs_bound_and_unbound_mix() {
    // All-fresh MERGE: no reads of prior bindings, each row creates or
    // matches independently of the others' *bound* entities.
    let src = "UNWIND [1, 2] AS x MERGE (n:N {k: 'fixed'})";
    let diags = lint9(src);
    assert!(!diags.iter().any(|d| d.code == Code::W04MergeReadsOwnWrites));
}

#[test]
fn w04_single_row_table_is_fine() {
    let src = "MATCH (u:User {id: 1}) WITH u LIMIT 1 MERGE (u)-[:OWNS]->(c:Cart)";
    let diags = lint9(src);
    assert!(!diags.iter().any(|d| d.code == Code::W04MergeReadsOwnWrites));
}

// ------------------------------------------------------------------
// W05 — §7 migration hint
// ------------------------------------------------------------------

#[test]
fn w05_bare_merge_migration_hint() {
    let src = "MERGE (n:N {k: 1})";
    let diags = lint9(src);
    let d = find(&diags, Code::W05LegacyMergeMigration);
    assert_eq!(d.severity, Severity::Info);
    assert_eq!(span_text(src, d), "MERGE");
    assert!(d.note.as_deref().unwrap().contains("MERGE SAME"));
}

#[test]
fn w05_not_emitted_for_revised_merges() {
    let diags = lint("MERGE ALL (n:N {k: 1})", Dialect::Revised).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

// ------------------------------------------------------------------
// Rendering
// ------------------------------------------------------------------

#[test]
fn rendered_diagnostics_show_code_line_and_caret() {
    let diags = lint9(EXAMPLE_2);
    let rendered = diags[0].render(EXAMPLE_2);
    assert!(rendered.starts_with("warning[W02]:"), "{rendered}");
    assert!(rendered.contains("(line 1, column"), "{rendered}");
    assert!(rendered.contains('^'), "{rendered}");
    assert!(rendered.contains("note:"), "{rendered}");
}

#[test]
fn clean_paper_queries_stay_clean() {
    // Well-formed statements from the shipped examples must not warn.
    for src in [
        "CREATE (:User {id: 89, name: 'Bob'})",
        "MATCH (u:User {id: 89}) SET u.name = 'Alice' RETURN u.name AS name",
        "MATCH (a:User)-[r:ORDERED]->(b:Product) DETACH DELETE a",
        "MATCH (n:User) WITH n ORDER BY n.id LIMIT 10 RETURN collect(n.name) AS names",
    ] {
        let diags = lint9(src);
        assert!(diags.is_empty(), "{src}: {diags:?}");
    }
}
