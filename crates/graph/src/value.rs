//! The Cypher value system.
//!
//! Values appear in three places: property maps stored in the graph, cells of
//! the driving table, and intermediate expression results. The paper leans on
//! two subtle aspects of the value model, both implemented here:
//!
//! * **`null` handling** — the `MERGE` examples of §6 (Example 5) feed tables
//!   containing `null` IDs into update clauses, and the revised `DELETE`
//!   (§7) substitutes `null` for references to deleted entities. Comparisons
//!   follow SQL-style ternary logic ([`Ternary`]).
//! * **Equivalence vs. equality** — grouping, `DISTINCT` and the
//!   collapsibility relations of Defs. 1–2 need an *equivalence* where
//!   `null ≡ null` and `NaN ≡ NaN`, distinct from the 3-valued `=` operator
//!   of the language. These are [`Value::equivalent`] and [`Value::cypher_eq`]
//!   respectively.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use crate::ids::{NodeId, RelId};

/// Three-valued logic, used by `WHERE` filtering and all comparisons
/// involving `null`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ternary {
    True,
    False,
    Unknown,
}

impl Ternary {
    pub fn from_bool(b: bool) -> Self {
        if b {
            Ternary::True
        } else {
            Ternary::False
        }
    }

    /// Kleene conjunction.
    pub fn and(self, other: Ternary) -> Ternary {
        use Ternary::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: Ternary) -> Ternary {
        use Ternary::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Kleene exclusive or.
    pub fn xor(self, other: Ternary) -> Ternary {
        use Ternary::*;
        match (self, other) {
            (Unknown, _) | (_, Unknown) => Unknown,
            (a, b) => Ternary::from_bool(a != b),
        }
    }

    /// Kleene negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Ternary {
        match self {
            Ternary::True => Ternary::False,
            Ternary::False => Ternary::True,
            Ternary::Unknown => Ternary::Unknown,
        }
    }

    /// `WHERE` keeps a record only when the predicate is `true`
    /// (`unknown` filters out, like SQL).
    pub fn is_true(self) -> bool {
        self == Ternary::True
    }

    /// Convert back to a nullable boolean value.
    pub fn into_value(self) -> Value {
        match self {
            Ternary::True => Value::Bool(true),
            Ternary::False => Value::Bool(false),
            Ternary::Unknown => Value::Null,
        }
    }
}

/// A path value, as produced by named path patterns.
///
/// Invariant: `nodes.len() == rels.len() + 1`.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct PathValue {
    pub nodes: Vec<NodeId>,
    pub rels: Vec<RelId>,
}

impl PathValue {
    pub fn single(node: NodeId) -> Self {
        PathValue {
            nodes: vec![node],
            rels: vec![],
        }
    }

    /// Number of relationships in the path (Cypher `length()`).
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }
}

/// A Cypher value.
#[derive(Clone, Debug)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    List(Vec<Value>),
    /// Map literals / projections. Keys are plain strings (they are not part
    /// of the graph's interned vocabulary).
    Map(BTreeMap<String, Value>),
    Node(NodeId),
    Rel(RelId),
    Path(PathValue),
}

impl Value {
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    pub fn list(items: impl IntoIterator<Item = Value>) -> Value {
        Value::List(items.into_iter().collect())
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Can this value be stored as a property? Booleans, integers, floats,
    /// strings, and lists of those (openCypher property model). `null` is
    /// not storable — assigning it removes the key.
    pub fn storable_as_property(&self) -> bool {
        match self {
            Value::Bool(_) | Value::Int(_) | Value::Float(_) | Value::Str(_) => true,
            Value::List(items) => items.iter().all(|v| {
                matches!(
                    v,
                    Value::Bool(_) | Value::Int(_) | Value::Float(_) | Value::Str(_)
                )
            }),
            _ => false,
        }
    }

    /// Numeric view of the value, if it is a number.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The Cypher `=` operator: ternary, `null` poisons, numbers compare
    /// across int/float, values of different (non-numeric) types are
    /// *not equal* (false, not unknown), and `NaN = NaN` is false.
    pub fn cypher_eq(&self, other: &Value) -> Ternary {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Ternary::Unknown,
            (Int(a), Int(b)) => Ternary::from_bool(a == b),
            (Int(_), Float(_)) | (Float(_), Int(_)) | (Float(_), Float(_)) => {
                let (a, b) = (
                    self.as_f64().unwrap_or(f64::NAN),
                    other.as_f64().unwrap_or(f64::NAN),
                );
                Ternary::from_bool(a == b)
            }
            (Bool(a), Bool(b)) => Ternary::from_bool(a == b),
            (Str(a), Str(b)) => Ternary::from_bool(a == b),
            (Node(a), Node(b)) => Ternary::from_bool(a == b),
            (Rel(a), Rel(b)) => Ternary::from_bool(a == b),
            (Path(a), Path(b)) => Ternary::from_bool(a == b),
            (List(a), List(b)) => {
                if a.len() != b.len() {
                    return Ternary::False;
                }
                let mut result = Ternary::True;
                for (x, y) in a.iter().zip(b) {
                    result = result.and(x.cypher_eq(y));
                    if result == Ternary::False {
                        return Ternary::False;
                    }
                }
                result
            }
            (Map(a), Map(b)) => {
                if a.len() != b.len() || !a.keys().eq(b.keys()) {
                    return Ternary::False;
                }
                let mut result = Ternary::True;
                for (x, y) in a.values().zip(b.values()) {
                    result = result.and(x.cypher_eq(y));
                    if result == Ternary::False {
                        return Ternary::False;
                    }
                }
                result
            }
            _ => Ternary::False,
        }
    }

    /// Equivalence, as used by `DISTINCT`, grouping keys, and the
    /// collapsibility relations (Defs. 1–2): like `=`, except `null ≡ null`
    /// and `NaN ≡ NaN` hold.
    pub fn equivalent(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Null, _) | (_, Null) => false,
            (Float(a), Float(b)) if a.is_nan() && b.is_nan() => true,
            (Int(_) | Float(_), Int(_) | Float(_)) => match (self, other) {
                (Int(a), Int(b)) => a == b,
                _ => {
                    let (a, b) = (
                        self.as_f64().unwrap_or(f64::NAN),
                        other.as_f64().unwrap_or(f64::NAN),
                    );
                    (a.is_nan() && b.is_nan()) || a == b
                }
            },
            (List(a), List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.equivalent(y))
            }
            (Map(a), Map(b)) => {
                a.len() == b.len()
                    && a.keys().eq(b.keys())
                    && a.values().zip(b.values()).all(|(x, y)| x.equivalent(y))
            }
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Node(a), Node(b)) => a == b,
            (Rel(a), Rel(b)) => a == b,
            (Path(a), Path(b)) => a == b,
            _ => false,
        }
    }

    /// Comparison for the `<`, `<=`, `>`, `>=` operators: defined between two
    /// numbers, two strings, or two booleans; anything else (including any
    /// `null` operand) is `Unknown`.
    pub fn cypher_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Int(_) | Float(_), Int(_) | Float(_)) => self
                .as_f64()
                .unwrap_or(f64::NAN)
                .partial_cmp(&other.as_f64().unwrap_or(f64::NAN)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (List(a), List(b)) => {
                // Lexicographic comparison; bail to incomparable on any
                // incomparable element pair.
                for (x, y) in a.iter().zip(b) {
                    match x.cypher_cmp(y)? {
                        Ordering::Equal => continue,
                        ord => return Some(ord),
                    }
                }
                Some(a.len().cmp(&b.len()))
            }
            _ => None,
        }
    }

    /// Global orderability for `ORDER BY` (openCypher): every pair of values
    /// is comparable. Type buckets order as
    /// map < node < relationship < list < path < string < boolean < number,
    /// `NaN` after all other numbers, and `null` greatest (so ascending
    /// order puts nulls last).
    pub fn global_cmp(&self, other: &Value) -> Ordering {
        fn bucket(v: &Value) -> u8 {
            match v {
                Value::Map(_) => 0,
                Value::Node(_) => 1,
                Value::Rel(_) => 2,
                Value::List(_) => 3,
                Value::Path(_) => 4,
                Value::Str(_) => 5,
                Value::Bool(_) => 6,
                Value::Int(_) | Value::Float(_) => 7,
                Value::Null => 8,
            }
        }
        use Value::*;
        let (ba, bb) = (bucket(self), bucket(other));
        if ba != bb {
            return ba.cmp(&bb);
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Node(a), Node(b)) => a.cmp(b),
            (Rel(a), Rel(b)) => a.cmp(b),
            (Int(_) | Float(_), Int(_) | Float(_)) => {
                let (a, b) = (
                    self.as_f64().unwrap_or(f64::NAN),
                    other.as_f64().unwrap_or(f64::NAN),
                );
                match (a.is_nan(), b.is_nan()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    (false, false) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
                }
            }
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b) {
                    match x.global_cmp(y) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            (Map(a), Map(b)) => {
                let mut ai = a.iter();
                let mut bi = b.iter();
                loop {
                    match (ai.next(), bi.next()) {
                        (None, None) => return Ordering::Equal,
                        (None, Some(_)) => return Ordering::Less,
                        (Some(_), None) => return Ordering::Greater,
                        (Some((ka, va)), Some((kb, vb))) => {
                            match ka.cmp(kb).then_with(|| va.global_cmp(vb)) {
                                Ordering::Equal => continue,
                                ord => return ord,
                            }
                        }
                    }
                }
            }
            (Path(a), Path(b)) => (&a.nodes, &a.rels).cmp(&(&b.nodes, &b.rels)),
            _ => unreachable!("bucketed comparison covers all same-bucket pairs"),
        }
    }
}

/// Structural equality for use in tests and collections. This is the
/// *equivalence* relation (`null == null`, `NaN == NaN`), not the language's
/// ternary `=`.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.equivalent(other)
    }
}

impl Eq for Value {}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<NodeId> for Value {
    fn from(n: NodeId) -> Self {
        Value::Node(n)
    }
}

impl From<RelId> for Value {
    fn from(r: RelId) -> Self {
        Value::Rel(r)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "'{s}'"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Node(n) => write!(f, "{n}"),
            Value::Rel(r) => write!(f, "{r}"),
            Value::Path(p) => {
                write!(f, "path(")?;
                for (i, n) in p.nodes.iter().enumerate() {
                    if i > 0 {
                        write!(f, "-{}-", p.rels[i - 1])?;
                    }
                    write!(f, "{n}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ternary_truth_tables() {
        use Ternary::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
        assert_eq!(True.xor(Unknown), Unknown);
        assert_eq!(True.xor(False), True);
        assert_eq!(True.xor(True), False);
    }

    #[test]
    fn null_poisons_equality() {
        assert_eq!(Value::Null.cypher_eq(&Value::Int(1)), Ternary::Unknown);
        assert_eq!(Value::Null.cypher_eq(&Value::Null), Ternary::Unknown);
    }

    #[test]
    fn cross_type_equality_is_false_not_unknown() {
        assert_eq!(Value::Int(1).cypher_eq(&Value::str("1")), Ternary::False);
        assert_eq!(Value::Bool(true).cypher_eq(&Value::Int(1)), Ternary::False);
    }

    #[test]
    fn numeric_equality_crosses_int_float() {
        assert_eq!(Value::Int(1).cypher_eq(&Value::Float(1.0)), Ternary::True);
        assert_eq!(Value::Int(1).cypher_eq(&Value::Float(1.5)), Ternary::False);
    }

    #[test]
    fn nan_equals_nothing_but_is_equivalent_to_itself() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cypher_eq(&nan), Ternary::False);
        assert!(nan.equivalent(&nan));
    }

    #[test]
    fn list_equality_propagates_unknown() {
        let a = Value::list([Value::Int(1), Value::Null]);
        let b = Value::list([Value::Int(1), Value::Int(2)]);
        assert_eq!(a.cypher_eq(&b), Ternary::Unknown);
        let c = Value::list([Value::Int(9), Value::Null]);
        assert_eq!(c.cypher_eq(&b), Ternary::False);
    }

    #[test]
    fn equivalence_treats_null_as_equal() {
        assert!(Value::Null.equivalent(&Value::Null));
        assert!(!Value::Null.equivalent(&Value::Int(0)));
        assert!(Value::list([Value::Null]).equivalent(&Value::list([Value::Null])));
    }

    #[test]
    fn equivalence_crosses_numeric_types() {
        assert!(Value::Int(2).equivalent(&Value::Float(2.0)));
        assert!(!Value::Int(2).equivalent(&Value::Float(2.5)));
    }

    #[test]
    fn comparison_requires_compatible_types() {
        assert_eq!(Value::Int(1).cypher_cmp(&Value::str("a")), None);
        assert_eq!(
            Value::Int(1).cypher_cmp(&Value::Float(2.0)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("a").cypher_cmp(&Value::str("b")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn global_order_puts_null_last_and_is_total() {
        let vals = vec![
            Value::Map(BTreeMap::new()),
            Value::Node(NodeId(0)),
            Value::Rel(RelId(0)),
            Value::list([Value::Int(1)]),
            Value::str("x"),
            Value::Bool(false),
            Value::Int(3),
            Value::Float(f64::NAN),
            Value::Null,
        ];
        for w in vals.windows(2) {
            assert_eq!(
                w[0].global_cmp(&w[1]),
                Ordering::Less,
                "{} should sort before {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn global_order_nan_after_numbers_before_null() {
        assert_eq!(
            Value::Float(f64::INFINITY).global_cmp(&Value::Float(f64::NAN)),
            Ordering::Less
        );
        assert_eq!(
            Value::Float(f64::NAN).global_cmp(&Value::Null),
            Ordering::Less
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::str("hi").to_string(), "'hi'");
        assert_eq!(
            Value::list([Value::Int(1), Value::str("a")]).to_string(),
            "[1, 'a']"
        );
    }

    #[test]
    fn path_value_len() {
        let p = PathValue::single(NodeId(1));
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
    }
}
