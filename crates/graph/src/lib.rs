//! # cypher-graph — property graph substrate
//!
//! In-memory property graph store underpinning the reproduction of
//! *Updating Graph Databases with Cypher* (Green et al., PVLDB 2019).
//!
//! The crate provides, in dependency order:
//!
//! * [`ids`] — node/relationship identifier newtypes,
//! * [`interner`] — interning of labels, relationship types and property keys,
//! * [`value`] — the Cypher value system with ternary logic,
//! * [`graph`] — the store itself ([`PropertyGraph`]): adjacency and label
//!   indexes, tombstones for legacy "zombie" semantics, and an undo journal,
//! * [`txn`] — RAII statement transactions with the no-dangling integrity
//!   check at commit,
//! * [`epoch`] — write-epoch snapshot publication for multi-session
//!   readers (statement-atomic views shared across threads),
//! * [`stats`] — shape summaries used by the experiment harness,
//! * [`iso`] — graph isomorphism up to id renaming (figures are compared
//!   with it),
//! * [`fmt`] — deterministic human-readable dumps.
//!
//! Everything downstream (parser, interpreter, workload generators,
//! experiment harness) builds on these types.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod epoch;
pub mod error;
pub mod fmt;
pub mod graph;
pub mod ids;
pub mod interner;
pub mod iso;
pub mod stats;
pub mod txn;
pub mod value;

pub use epoch::EpochSnapshots;
pub use error::{GraphError, Result};
pub use graph::{
    AdjIter, DeleteNodeMode, DeltaOp, Direction, IndexStats, NodeData, PropertyGraph, PropertyMap,
    RelData, Savepoint,
};
pub use ids::{EntityKind, EntityRef, NodeId, RelId};
pub use interner::{Interner, Symbol};
pub use iso::isomorphic;
pub use stats::{CardinalityStats, GraphSummary};
pub use txn::Transaction;
pub use value::{PathValue, Ternary, Value};
