//! Human-readable graph dumps in ASCII-art style, used by the experiment
//! harness to print "measured" figures next to the paper's expected shapes.

use std::fmt::Write as _;

use crate::graph::PropertyGraph;
use crate::ids::{EntityRef, NodeId, RelId};

/// Render one node as `(:Label1:Label2 {k: v, …})`.
pub fn node_to_string(g: &PropertyGraph, id: NodeId) -> String {
    let mut s = String::new();
    let _ = write!(s, "({id}");
    if let Some(data) = g.node(id) {
        for &l in &data.labels {
            let _ = write!(s, ":{}", g.sym_str(l));
        }
        if !data.props.is_empty() {
            let _ = write!(s, " {}", props_to_string(g, id.into()));
        }
    } else if g.is_zombie(id.into()) {
        let _ = write!(s, " <deleted>");
    }
    s.push(')');
    s
}

/// Render one relationship as `(src)-[:TYPE {…}]->(tgt)`.
pub fn rel_to_string(g: &PropertyGraph, id: RelId) -> String {
    match g.rel(id) {
        Some(data) => {
            let props = if data.props.is_empty() {
                String::new()
            } else {
                format!(" {}", props_to_string(g, id.into()))
            };
            let src_live = if g.contains_node(data.src) { "" } else { "!" };
            let tgt_live = if g.contains_node(data.tgt) { "" } else { "!" };
            format!(
                "({}{})-[{}:{}{}]->({}{})",
                src_live,
                data.src,
                id,
                g.sym_str(data.rel_type),
                props,
                tgt_live,
                data.tgt
            )
        }
        None => format!("[{id} <deleted>]"),
    }
}

fn props_to_string(g: &PropertyGraph, entity: EntityRef) -> String {
    let props = g.props(entity);
    let mut s = String::from("{");
    for (i, (k, v)) in props.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{}: {}", g.sym_str(*k), v);
    }
    s.push('}');
    s
}

/// Full deterministic dump: one line per node, then one per relationship,
/// ascending by id. Dangling endpoints are marked with `!`.
pub fn dump(g: &PropertyGraph) -> String {
    let mut out = String::new();
    for n in g.node_ids() {
        let _ = writeln!(out, "{}", node_to_string(g, n));
    }
    for r in g.rel_ids() {
        let _ = writeln!(out, "{}", rel_to_string(g, r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DeleteNodeMode;
    use crate::value::Value;

    #[test]
    fn dump_is_deterministic_and_readable() {
        let mut g = PropertyGraph::new();
        let user = g.sym("User");
        let product = g.sym("Product");
        let ordered = g.sym("ORDERED");
        let id_k = g.sym("id");
        let u = g.create_node([user], [(id_k, Value::Int(89))]);
        let p = g.create_node([product], [(id_k, Value::Int(125))]);
        g.create_rel(u, ordered, p, []).unwrap();
        let text = dump(&g);
        assert_eq!(
            text,
            "(n0:User {id: 89})\n(n1:Product {id: 125})\n(n0)-[r0:ORDERED]->(n1)\n"
        );
    }

    #[test]
    fn dangling_endpoint_is_flagged() {
        let mut g = PropertyGraph::new();
        let t = g.sym("T");
        let a = g.create_node([], []);
        let b = g.create_node([], []);
        let r = g.create_rel(a, t, b, []).unwrap();
        g.delete_node(a, DeleteNodeMode::Force).unwrap();
        assert_eq!(rel_to_string(&g, r), "(!n0)-[r0:T]->(n1)");
    }

    #[test]
    fn zombie_node_renders_as_deleted() {
        let mut g = PropertyGraph::new();
        let n = g.create_node([], []);
        g.delete_node(n, DeleteNodeMode::Strict).unwrap();
        assert_eq!(node_to_string(&g, n), "(n0 <deleted>)");
    }
}
