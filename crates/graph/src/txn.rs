//! RAII statement transactions.
//!
//! Cypher statements are atomic at the *statement* level even in Cypher 9:
//! a failing clause aborts the whole statement and the database is left
//! unchanged. [`Transaction`] wraps a [`PropertyGraph`] savepoint so engines
//! can execute a statement, and either:
//!
//! * [`Transaction::commit`] — run the integrity check (no dangling
//!   relationships, §2) and make the changes permanent, or
//! * [`Transaction::rollback`] / drop — restore the pre-statement state.
//!
//! The legacy engine relies on the *force-delete* path leaving the graph
//! illegal mid-statement; the integrity check at commit is what turns the
//! §4.2 anomaly into a commit-time failure when the statement ends in an
//! illegal state.

use std::ops::{Deref, DerefMut};

use crate::error::{GraphError, Result};
use crate::graph::{PropertyGraph, Savepoint};

/// An open statement transaction. Rolls back on drop unless committed.
#[derive(Debug)]
pub struct Transaction<'g> {
    graph: &'g mut PropertyGraph,
    sp: Savepoint,
    finished: bool,
}

impl<'g> Transaction<'g> {
    /// Open a transaction at the current graph state.
    pub fn begin(graph: &'g mut PropertyGraph) -> Self {
        let sp = graph.savepoint();
        Transaction {
            graph,
            sp,
            finished: false,
        }
    }

    /// Validate and commit. If the graph violates the no-dangling invariant
    /// the transaction rolls back and the violation is returned.
    pub fn commit(mut self) -> Result<()> {
        match self.graph.integrity_check() {
            Ok(()) => {
                self.graph.commit(self.sp);
                self.finished = true;
                Ok(())
            }
            Err(e) => {
                self.graph.rollback_to(self.sp);
                self.finished = true;
                Err(e)
            }
        }
    }

    /// Commit without the integrity check (used by tests that need to
    /// inspect illegal intermediate states).
    pub fn commit_unchecked(mut self) {
        self.graph.commit(self.sp);
        self.finished = true;
    }

    /// Explicitly roll back.
    pub fn rollback(mut self) {
        self.graph.rollback_to(self.sp);
        self.finished = true;
    }

    /// The dangling relationships that would make a commit fail right now.
    pub fn pending_violation(&self) -> Option<GraphError> {
        self.graph.integrity_check().err()
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.graph.rollback_to(self.sp);
        }
    }
}

impl Deref for Transaction<'_> {
    type Target = PropertyGraph;
    fn deref(&self) -> &PropertyGraph {
        self.graph
    }
}

impl DerefMut for Transaction<'_> {
    fn deref_mut(&mut self) -> &mut PropertyGraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DeleteNodeMode;
    use crate::value::Value;

    #[test]
    fn committed_changes_persist() {
        let mut g = PropertyGraph::new();
        {
            let mut tx = Transaction::begin(&mut g);
            let k = tx.sym("id");
            tx.create_node([], [(k, Value::Int(1))]);
            tx.commit().unwrap();
        }
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.journal_len(), 0);
    }

    #[test]
    fn dropped_transaction_rolls_back() {
        let mut g = PropertyGraph::new();
        {
            let mut tx = Transaction::begin(&mut g);
            tx.create_node([], []);
            // dropped without commit
        }
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn commit_fails_and_rolls_back_on_dangling() {
        let mut g = PropertyGraph::new();
        let t = g.sym("ORDERED");
        let a = g.create_node([], []);
        let b = g.create_node([], []);
        g.create_rel(a, t, b, []).unwrap();
        g.commit(g.savepoint()); // not a root commit; just exercise the API

        let tx_result = {
            let mut tx = Transaction::begin(&mut g);
            tx.delete_node(a, DeleteNodeMode::Force).unwrap();
            assert!(tx.pending_violation().is_some());
            tx.commit()
        };
        assert!(matches!(
            tx_result,
            Err(GraphError::DanglingRelationships(_))
        ));
        // Rolled back: node `a` is live again.
        assert!(g.contains_node(a));
        g.integrity_check().unwrap();
    }

    #[test]
    fn explicit_rollback() {
        let mut g = PropertyGraph::new();
        let n = g.create_node([], []);
        let tx = {
            let mut tx = Transaction::begin(&mut g);
            tx.delete_node(n, DeleteNodeMode::Strict).unwrap();
            tx
        };
        tx.rollback();
        assert!(g.contains_node(n));
    }

    #[test]
    fn commit_unchecked_allows_illegal_state() {
        let mut g = PropertyGraph::new();
        let t = g.sym("T");
        let a = g.create_node([], []);
        let b = g.create_node([], []);
        g.create_rel(a, t, b, []).unwrap();
        let mut tx = Transaction::begin(&mut g);
        tx.delete_node(a, DeleteNodeMode::Force).unwrap();
        tx.commit_unchecked();
        assert_eq!(g.dangling_rels().len(), 1);
    }
}
