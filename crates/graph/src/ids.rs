//! Identifier newtypes for graph entities.
//!
//! The formal model of the paper (§8.2) treats nodes and relationships as
//! abstract identifiers; here they are dense `u64`s handed out by the store.
//! Identifiers are never reused within one [`crate::PropertyGraph`], which is
//! what allows the legacy engine to keep references to deleted ("zombie")
//! entities alive, as required to reproduce the §4.2 anomaly.

use std::fmt;

/// Identifier of a node in a property graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

/// Identifier of a relationship in a property graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u64);

/// A reference to either kind of updatable entity.
///
/// `SET`, `REMOVE` and `DELETE` operate uniformly on nodes and relationships;
/// this enum is the common currency for those code paths.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EntityRef {
    Node(NodeId),
    Rel(RelId),
}

/// The kind of a graph entity, without its identity.
///
/// The static analyzer tracks the kind a Cypher variable is bound to so it
/// can reject e.g. `DETACH DELETE r` on a relationship variable or a node
/// variable used in relationship position; the engine uses the same enum to
/// describe what an [`EntityRef`] points at.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EntityKind {
    Node,
    Relationship,
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntityKind::Node => write!(f, "node"),
            EntityKind::Relationship => write!(f, "relationship"),
        }
    }
}

impl EntityRef {
    /// The kind of entity this reference points at.
    #[inline]
    pub fn kind(self) -> EntityKind {
        match self {
            EntityRef::Node(_) => EntityKind::Node,
            EntityRef::Rel(_) => EntityKind::Relationship,
        }
    }
}

impl NodeId {
    /// Raw numeric value, e.g. for the Cypher `id()` function.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl RelId {
    /// Raw numeric value, e.g. for the Cypher `id()` function.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl From<NodeId> for EntityRef {
    fn from(id: NodeId) -> Self {
        EntityRef::Node(id)
    }
}

impl From<RelId> for EntityRef {
    fn from(id: RelId) -> Self {
        EntityRef::Rel(id)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for EntityRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntityRef::Node(n) => write!(f, "{n}"),
            EntityRef::Rel(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(RelId(3).to_string(), "r3");
        assert_eq!(EntityRef::from(NodeId(1)).to_string(), "n1");
        assert_eq!(EntityRef::from(RelId(2)).to_string(), "r2");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(NodeId(2) < NodeId(10));
        assert!(RelId(0) < RelId(1));
    }

    #[test]
    fn entity_ref_orders_nodes_before_rels() {
        assert!(EntityRef::Node(NodeId(99)) < EntityRef::Rel(RelId(0)));
    }

    #[test]
    fn entity_kind_of_refs() {
        assert_eq!(EntityRef::from(NodeId(1)).kind(), EntityKind::Node);
        assert_eq!(EntityRef::from(RelId(2)).kind(), EntityKind::Relationship);
        assert_eq!(EntityKind::Node.to_string(), "node");
        assert_eq!(EntityKind::Relationship.to_string(), "relationship");
    }
}
