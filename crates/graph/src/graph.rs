//! The property graph store.
//!
//! Implements the formal model of §8.2: a graph `G = ⟨N, R, src, tgt, ι, λ, τ⟩`
//! where `N` are nodes, `R` relationships, `src`/`tgt` endpoint functions,
//! `λ` the node-label function, `τ` the relationship-type function and `ι`
//! the property map. On top of the bare model the store maintains:
//!
//! * adjacency indexes (both directions) for pattern matching,
//! * a label index for `MATCH (n:Label)` scans,
//! * **tombstones** for deleted entities — required to reproduce the legacy
//!   (§4.2) behaviour where deleted entities remain addressable "zombies"
//!   and relationships may dangle mid-statement,
//! * an **undo journal** with savepoints, so a failing statement can be
//!   rolled back atomically (see [`crate::txn`]).
//!
//! Iteration orders are deterministic everywhere (`BTreeMap`/`BTreeSet`,
//! insertion-ordered adjacency): the paper is about *semantic*
//! nondeterminism, so the implementation itself must be reproducible —
//! the legacy engine exposes order-dependence through an explicit record
//! processing order, never through accidental hash-map ordering.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{GraphError, Result};
use crate::ids::{EntityRef, NodeId, RelId};
use crate::interner::{Interner, Symbol};
use crate::value::Value;

const EMPTY_ADJ: &[RelId] = &[];

/// Property map of a node or relationship: interned keys to storable values.
/// `null` is never stored — assigning `null` removes the key (Cypher rule).
pub type PropertyMap = BTreeMap<Symbol, Value>;

/// Stored state of a node.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeData {
    pub labels: BTreeSet<Symbol>,
    pub props: PropertyMap,
}

/// Stored state of a relationship. `src`/`tgt` may refer to tombstoned nodes
/// while a legacy statement is mid-flight (a *dangling* relationship).
#[derive(Clone, Debug, PartialEq)]
pub struct RelData {
    pub src: NodeId,
    pub tgt: NodeId,
    pub rel_type: Symbol,
    pub props: PropertyMap,
}

/// Direction selector for adjacency queries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Relationships whose source is the given node.
    Outgoing,
    /// Relationships whose target is the given node.
    Incoming,
    /// Both.
    Either,
}

/// Per-node adjacency: the canonical insertion-ordered list plus per-type
/// partitions, so typed traversals touch only matching relationships.
///
/// Invariant: `by_type[t]` is exactly the subsequence of `all` whose
/// relationships have type `t`, in the same relative order, and `loops`
/// counts the self-loops present in `all`. Undo restores positions in `all`,
/// and the partition insertion point is recomputed from the prefix, so the
/// invariant survives rollback.
#[derive(Clone, Debug, Default)]
struct AdjList {
    all: Vec<RelId>,
    by_type: BTreeMap<Symbol, Vec<RelId>>,
    loops: usize,
}

impl AdjList {
    fn push(&mut self, id: RelId, rel_type: Symbol, is_loop: bool) {
        self.all.push(id);
        self.by_type.entry(rel_type).or_default().push(id);
        if is_loop {
            self.loops += 1;
        }
    }

    /// Remove `id`, returning the position it occupied in `all`.
    fn remove(&mut self, id: RelId, rel_type: Symbol, is_loop: bool) -> Option<usize> {
        let pos = self.all.iter().position(|&r| r == id)?;
        self.all.remove(pos);
        if let Some(part) = self.by_type.get_mut(&rel_type) {
            if let Some(p) = part.iter().position(|&r| r == id) {
                part.remove(p);
            }
            if part.is_empty() {
                self.by_type.remove(&rel_type);
            }
        }
        if is_loop {
            self.loops -= 1;
        }
        Some(pos)
    }

    /// Re-insert `id` at `pos` of `all` (undo of a deletion). The partition
    /// insertion point is the number of same-type relationships before
    /// `pos`, which keeps `by_type` a stable filter of `all`.
    fn insert_at(
        &mut self,
        pos: usize,
        id: RelId,
        rel_type: Symbol,
        is_loop: bool,
        rels: &BTreeMap<RelId, RelData>,
    ) {
        let pos = pos.min(self.all.len());
        let part_pos = self.all[..pos]
            .iter()
            .filter(|r| rels.get(r).map(|d| d.rel_type == rel_type).unwrap_or(false))
            .count();
        self.all.insert(pos, id);
        let part = self.by_type.entry(rel_type).or_default();
        part.insert(part_pos.min(part.len()), id);
        if is_loop {
            self.loops += 1;
        }
    }

    /// Rebuild partitions from a plain ordered rel list (undo of a node
    /// deletion journals only `all`; every listed rel is live again by the
    /// time the node's deletion is undone, because undo runs in reverse).
    fn rebuild(all: Vec<RelId>, rels: &BTreeMap<RelId, RelData>) -> Self {
        let mut list = AdjList::default();
        for &id in &all {
            let Some(data) = rels.get(&id) else {
                unreachable!("adjacency refers to live rel {id}");
            };
            list.by_type.entry(data.rel_type).or_default().push(id);
            if data.src == data.tgt {
                list.loops += 1;
            }
        }
        list.all = all;
        list
    }
}

/// Borrowing iterator over a node's adjacency; see
/// [`PropertyGraph::rels_iter`] / [`PropertyGraph::rels_typed`]. Yields the
/// same relationships in the same order as [`PropertyGraph::rels_of`]
/// (filtered by type for the typed variant) without allocating.
pub struct AdjIter<'g> {
    first: std::slice::Iter<'g, RelId>,
    second: std::slice::Iter<'g, RelId>,
    /// `Some` when self-loops must be skipped in `second` (`Either` on a
    /// node that has at least one self-loop).
    dedup: Option<&'g BTreeMap<RelId, RelData>>,
}

impl Iterator for AdjIter<'_> {
    type Item = RelId;

    fn next(&mut self) -> Option<RelId> {
        if let Some(&r) = self.first.next() {
            return Some(r);
        }
        for &r in self.second.by_ref() {
            match self.dedup {
                None => return Some(r),
                Some(rels) => {
                    if rels.get(&r).map(|d| d.src != d.tgt).unwrap_or(true) {
                        return Some(r);
                    }
                }
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let lo = self.first.len()
            + if self.dedup.is_some() {
                0
            } else {
                self.second.len()
            };
        (lo, Some(self.first.len() + self.second.len()))
    }
}

/// Size and usage statistics of one composite property index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexStats {
    pub label: Symbol,
    pub key: Symbol,
    /// Total `(value, node)` postings.
    pub entries: usize,
    /// Distinct indexed values.
    pub distinct: usize,
    /// Probes that found at least one node.
    pub hits: u64,
    /// Probes that found none.
    pub misses: u64,
}

/// How to treat relationships attached to a node being deleted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeleteNodeMode {
    /// Fail if any relationship is still attached (revised `DELETE`).
    Strict,
    /// Also delete all attached relationships (`DETACH DELETE`).
    Detach,
    /// Delete the node and leave attached relationships dangling — the
    /// legacy Cypher 9 mid-statement behaviour of §4.2. The graph is
    /// illegal until those relationships are deleted too; committing in
    /// that state fails the integrity check.
    Force,
}

/// One reversible mutation, recorded in the undo journal.
#[derive(Clone, Debug)]
pub(crate) enum UndoOp {
    CreateNode(NodeId),
    CreateRel(RelId),
    DeleteRel {
        id: RelId,
        data: RelData,
        /// Position the rel occupied in its source's outgoing adjacency list
        /// (`None` if the source was already tombstoned).
        src_pos: Option<usize>,
        /// Position in the target's incoming adjacency list.
        tgt_pos: Option<usize>,
    },
    DeleteNode {
        id: NodeId,
        data: NodeData,
        out: Vec<RelId>,
        inc: Vec<RelId>,
    },
    AddLabel {
        node: NodeId,
        label: Symbol,
    },
    RemoveLabel {
        node: NodeId,
        label: Symbol,
    },
    SetProp {
        entity: EntityRef,
        key: Symbol,
        old: Option<Value>,
    },
}

/// Opaque marker for a journal position; see [`PropertyGraph::savepoint`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Savepoint(pub(crate) usize);

/// One logical mutation in *redo* form, captured for write-ahead logging
/// when [`PropertyGraph::enable_delta_capture`] is on.
///
/// Delta entries mirror the undo journal one-to-one: every journaled
/// mutation pushes exactly one `DeltaOp`, and [`PropertyGraph::rollback_to`]
/// pops the two stacks in lock-step, so the pending delta is always exactly
/// the net effect of operations that survived rollback. Compound mutations
/// decompose into their primitives — `DETACH DELETE` records each cascaded
/// relationship deletion as its own [`DeltaOp::DeleteRel`] before the
/// [`DeltaOp::DeleteNode`], and `SET n = {map}` records one
/// [`DeltaOp::SetProp`] per changed key — so replaying a delta in order
/// through the primitive mutation APIs reproduces the state transition
/// exactly, including mid-statement dangling phases of the legacy engine.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaOp {
    CreateNode {
        id: NodeId,
        labels: Vec<Symbol>,
        props: Vec<(Symbol, Value)>,
    },
    CreateRel {
        id: RelId,
        src: NodeId,
        tgt: NodeId,
        rel_type: Symbol,
        props: Vec<(Symbol, Value)>,
    },
    DeleteRel {
        id: RelId,
    },
    /// The node had no attached relationships at this point of the op
    /// sequence *unless* the legacy engine force-deleted it; replay with
    /// [`DeleteNodeMode::Force`] handles both.
    DeleteNode {
        id: NodeId,
    },
    AddLabel {
        node: NodeId,
        label: Symbol,
    },
    RemoveLabel {
        node: NodeId,
        label: Symbol,
    },
    /// `value: None` removes the key (Cypher's `SET n.k = null`).
    SetProp {
        entity: EntityRef,
        key: Symbol,
        value: Option<Value>,
    },
}

/// Property values wrapped with the global order, usable as index keys.
/// Equal keys are exactly *equivalent* values (so `1` and `1.0` share an
/// index slot, as `=` would conflate them).
#[derive(Clone, Debug)]
struct OrderedValue(Value);

impl PartialEq for OrderedValue {
    fn eq(&self, other: &Self) -> bool {
        self.0.global_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}

impl Eq for OrderedValue {}

impl PartialOrd for OrderedValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.global_cmp(&other.0)
    }
}

/// One composite property index with always-on usage counters. The counters
/// are atomics only so that probes can count through `&self`; the graph is
/// not otherwise concurrent.
#[derive(Debug, Default)]
struct PropIndex {
    map: BTreeMap<OrderedValue, BTreeSet<NodeId>>,
    /// Total `(value, node)` postings, maintained incrementally.
    entries: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Clone for PropIndex {
    fn clone(&self) -> Self {
        PropIndex {
            map: self.map.clone(),
            entries: self.entries,
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
        }
    }
}

/// An in-memory property graph with tombstones and an undo journal.
#[derive(Clone, Debug, Default)]
pub struct PropertyGraph {
    interner: Interner,
    nodes: BTreeMap<NodeId, NodeData>,
    rels: BTreeMap<RelId, RelData>,
    out_adj: BTreeMap<NodeId, AdjList>,
    in_adj: BTreeMap<NodeId, AdjList>,
    label_index: BTreeMap<Symbol, BTreeSet<NodeId>>,
    tomb_nodes: BTreeSet<NodeId>,
    tomb_rels: BTreeSet<RelId>,
    /// Composite property indexes: (label, key) → value → nodes. Maintained
    /// through every mutation including journal rollback.
    indexes: BTreeMap<(Symbol, Symbol), PropIndex>,
    /// Live relationships per type, maintained incrementally through every
    /// mutation including journal rollback (cardinality statistics).
    rel_type_counts: BTreeMap<Symbol, usize>,
    next_node: u64,
    next_rel: u64,
    journal: Vec<UndoOp>,
    /// Redo log mirroring `journal` (see [`DeltaOp`]); populated only while
    /// `delta_enabled`, drained by the durability layer after each commit.
    delta: Vec<DeltaOp>,
    delta_enabled: bool,
}

impl PropertyGraph {
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Vocabulary
    // ------------------------------------------------------------------

    /// Intern a label / relationship type / property key.
    pub fn sym(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Look up a symbol without interning (read-only paths).
    pub fn try_sym(&self, s: &str) -> Option<Symbol> {
        self.interner.get(s)
    }

    /// Resolve a symbol to its string.
    pub fn sym_str(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    pub fn node(&self, id: NodeId) -> Option<&NodeData> {
        self.nodes.get(&id)
    }

    pub fn rel(&self, id: RelId) -> Option<&RelData> {
        self.rels.get(&id)
    }

    pub fn contains_node(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    pub fn contains_rel(&self, id: RelId) -> bool {
        self.rels.contains_key(&id)
    }

    /// Was this entity deleted at some point? Zombie references (§4.2) stay
    /// addressable in the legacy engine and answer property reads with
    /// `null`.
    pub fn is_zombie(&self, entity: EntityRef) -> bool {
        match entity {
            EntityRef::Node(n) => self.tomb_nodes.contains(&n),
            EntityRef::Rel(r) => self.tomb_rels.contains(&r),
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn rel_count(&self) -> usize {
        self.rels.len()
    }

    /// All live node ids, ascending.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// All live relationship ids, ascending.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        self.rels.keys().copied()
    }

    /// Nodes carrying `label`, ascending by id.
    pub fn nodes_with_label(&self, label: Symbol) -> impl Iterator<Item = NodeId> + '_ {
        self.label_index
            .get(&label)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Relationships attached to `node` in the given direction, in insertion
    /// order. A self-loop is reported once for `Either`.
    ///
    /// Allocates a fresh `Vec`; hot paths should prefer the borrowing
    /// [`Self::rels_iter`] / [`Self::rels_typed`], which yield the same
    /// relationships in the same order.
    pub fn rels_of(&self, node: NodeId, dir: Direction) -> Vec<RelId> {
        self.rels_iter(node, dir).collect()
    }

    /// Outgoing adjacency of `node` as a borrowed slice, insertion order.
    pub fn rels_out(&self, node: NodeId) -> &[RelId] {
        self.out_adj
            .get(&node)
            .map(|l| l.all.as_slice())
            .unwrap_or(EMPTY_ADJ)
    }

    /// Incoming adjacency of `node` as a borrowed slice, insertion order.
    pub fn rels_in(&self, node: NodeId) -> &[RelId] {
        self.in_adj
            .get(&node)
            .map(|l| l.all.as_slice())
            .unwrap_or(EMPTY_ADJ)
    }

    /// Allocation-free version of [`Self::rels_of`]: same relationships in
    /// the same order, self-loops reported once for `Either`.
    pub fn rels_iter(&self, node: NodeId, dir: Direction) -> AdjIter<'_> {
        let out = self.rels_out(node);
        let inc_list = self.in_adj.get(&node);
        let inc = inc_list.map(|l| l.all.as_slice()).unwrap_or(EMPTY_ADJ);
        match dir {
            Direction::Outgoing => AdjIter {
                first: out.iter(),
                second: EMPTY_ADJ.iter(),
                dedup: None,
            },
            Direction::Incoming => AdjIter {
                first: inc.iter(),
                second: EMPTY_ADJ.iter(),
                dedup: None,
            },
            Direction::Either => AdjIter {
                first: out.iter(),
                second: inc.iter(),
                dedup: inc_list.filter(|l| l.loops > 0).map(|_| &self.rels),
            },
        }
    }

    /// Relationships of `node` in `dir` whose type is `ty`, via the per-type
    /// adjacency partitions: the order equals [`Self::rels_of`] filtered by
    /// type (partitions are stable filters of the insertion-ordered list).
    pub fn rels_typed(&self, node: NodeId, dir: Direction, ty: Symbol) -> AdjIter<'_> {
        let out = self
            .out_adj
            .get(&node)
            .and_then(|l| l.by_type.get(&ty))
            .map(Vec::as_slice)
            .unwrap_or(EMPTY_ADJ);
        let inc_list = self.in_adj.get(&node);
        let inc = inc_list
            .and_then(|l| l.by_type.get(&ty))
            .map(Vec::as_slice)
            .unwrap_or(EMPTY_ADJ);
        match dir {
            Direction::Outgoing => AdjIter {
                first: out.iter(),
                second: EMPTY_ADJ.iter(),
                dedup: None,
            },
            Direction::Incoming => AdjIter {
                first: inc.iter(),
                second: EMPTY_ADJ.iter(),
                dedup: None,
            },
            Direction::Either => AdjIter {
                first: out.iter(),
                second: inc.iter(),
                dedup: inc_list.filter(|l| l.loops > 0).map(|_| &self.rels),
            },
        }
    }

    /// Number of relationships attached to `node` (self-loops count once).
    /// O(1): list lengths minus the incoming self-loop count.
    pub fn degree(&self, node: NodeId) -> usize {
        let out = self.out_adj.get(&node).map(|l| l.all.len()).unwrap_or(0);
        let (inc, loops) = self
            .in_adj
            .get(&node)
            .map(|l| (l.all.len(), l.loops))
            .unwrap_or((0, 0));
        out + inc - loops
    }

    /// Number of relationships attached to `node` in one direction, O(1).
    pub fn degree_dir(&self, node: NodeId, dir: Direction) -> usize {
        match dir {
            Direction::Outgoing => self.rels_out(node).len(),
            Direction::Incoming => self.rels_in(node).len(),
            Direction::Either => self.degree(node),
        }
    }

    // ------------------------------------------------------------------
    // Cardinality statistics (always on, maintained incrementally)
    // ------------------------------------------------------------------

    /// Number of live nodes carrying `label` — O(log n) off the label index.
    pub fn label_count(&self, label: Symbol) -> usize {
        self.label_index.get(&label).map(BTreeSet::len).unwrap_or(0)
    }

    /// Number of live relationships of type `ty`, maintained incrementally.
    pub fn rel_type_count(&self, ty: Symbol) -> usize {
        self.rel_type_counts.get(&ty).copied().unwrap_or(0)
    }

    /// Live `(label, node count)` pairs, ascending by symbol, zero counts
    /// skipped.
    pub fn label_counts(&self) -> impl Iterator<Item = (Symbol, usize)> + '_ {
        self.label_index
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(&l, s)| (l, s.len()))
    }

    /// Live `(rel type, count)` pairs, ascending by symbol.
    pub fn rel_type_counts(&self) -> impl Iterator<Item = (Symbol, usize)> + '_ {
        self.rel_type_counts.iter().map(|(&t, &c)| (t, c))
    }

    /// Expected rows from an exact probe of the `(label, key)` index: the
    /// average bucket size. `None` if the index doesn't exist, `0.0` if it
    /// is empty.
    pub fn index_selectivity(&self, label: Symbol, key: Symbol) -> Option<f64> {
        let idx = self.indexes.get(&(label, key))?;
        if idx.map.is_empty() {
            return Some(0.0);
        }
        Some(idx.entries as f64 / idx.map.len() as f64)
    }

    /// Exact bucket size for a known probe value, without touching the
    /// hit/miss counters (planner estimation only).
    pub fn index_bucket_size(&self, label: Symbol, key: Symbol, value: &Value) -> Option<usize> {
        let idx = self.indexes.get(&(label, key))?;
        if value.is_null() {
            return Some(0);
        }
        Some(
            idx.map
                .get(&OrderedValue(value.clone()))
                .map(BTreeSet::len)
                .unwrap_or(0),
        )
    }

    /// Size and usage statistics for every index, ascending by (label, key).
    pub fn index_stats(&self) -> Vec<IndexStats> {
        self.indexes
            .iter()
            .map(|(&(label, key), idx)| IndexStats {
                label,
                key,
                entries: idx.entries,
                distinct: idx.map.len(),
                hits: idx.hits.load(Ordering::Relaxed),
                misses: idx.misses.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Read a property; `null` for missing keys, missing entities and
    /// zombies.
    pub fn prop(&self, entity: EntityRef, key: Symbol) -> Value {
        let map = match entity {
            EntityRef::Node(n) => self.nodes.get(&n).map(|d| &d.props),
            EntityRef::Rel(r) => self.rels.get(&r).map(|d| &d.props),
        };
        map.and_then(|m| m.get(&key))
            .cloned()
            .unwrap_or(Value::Null)
    }

    /// Full property map of an entity (empty for zombies).
    pub fn props(&self, entity: EntityRef) -> PropertyMap {
        match entity {
            EntityRef::Node(n) => self.nodes.get(&n).map(|d| d.props.clone()),
            EntityRef::Rel(r) => self.rels.get(&r).map(|d| d.props.clone()),
        }
        .unwrap_or_default()
    }

    /// Labels of a node (empty for zombies), ascending by symbol.
    pub fn labels(&self, node: NodeId) -> Vec<Symbol> {
        self.nodes
            .get(&node)
            .map(|d| d.labels.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Relationships whose source or target has been deleted. A legal graph
    /// has none (§2: "there may never be any dangling relationships").
    pub fn dangling_rels(&self) -> Vec<RelId> {
        self.rels
            .iter()
            .filter(|(_, d)| !self.nodes.contains_key(&d.src) || !self.nodes.contains_key(&d.tgt))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Check the no-dangling-relationships invariant.
    pub fn integrity_check(&self) -> Result<()> {
        let dangling = self.dangling_rels();
        if dangling.is_empty() {
            Ok(())
        } else {
            Err(GraphError::DanglingRelationships(dangling))
        }
    }

    // ------------------------------------------------------------------
    // Property indexes
    // ------------------------------------------------------------------

    /// Create a composite index on `(label, key)`, backfilled from the
    /// current graph. Returns `false` if it already existed. Index
    /// creation is schema-level and not journaled (it does not change
    /// graph *content*); rollback keeps indexes but restores their
    /// entries.
    pub fn create_index(&mut self, label: Symbol, key: Symbol) -> bool {
        if self.indexes.contains_key(&(label, key)) {
            return false;
        }
        let mut map: BTreeMap<OrderedValue, BTreeSet<NodeId>> = BTreeMap::new();
        let mut entries = 0usize;
        if let Some(nodes) = self.label_index.get(&label) {
            for &n in nodes {
                if let Some(v) = self.nodes.get(&n).and_then(|d| d.props.get(&key)) {
                    if map.entry(OrderedValue(v.clone())).or_default().insert(n) {
                        entries += 1;
                    }
                }
            }
        }
        self.indexes.insert(
            (label, key),
            PropIndex {
                map,
                entries,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            },
        );
        true
    }

    /// Drop an index; returns whether it existed.
    pub fn drop_index(&mut self, label: Symbol, key: Symbol) -> bool {
        self.indexes.remove(&(label, key)).is_some()
    }

    pub fn has_index(&self, label: Symbol, key: Symbol) -> bool {
        self.indexes.contains_key(&(label, key))
    }

    /// All existing indexes as (label, key) pairs.
    pub fn index_list(&self) -> Vec<(Symbol, Symbol)> {
        self.indexes.keys().copied().collect()
    }

    /// Exact-value lookup through an index. `None` when no index exists on
    /// `(label, key)`; `Some(vec![])` when the index exists but holds no
    /// such value. A `null` probe never matches (it is not stored). Every
    /// probe bumps the index's hit (≥1 node) or miss (0 nodes) counter.
    pub fn index_lookup(&self, label: Symbol, key: Symbol, value: &Value) -> Option<Vec<NodeId>> {
        let idx = self.indexes.get(&(label, key))?;
        if value.is_null() {
            idx.misses.fetch_add(1, Ordering::Relaxed);
            return Some(vec![]);
        }
        match idx.map.get(&OrderedValue(value.clone())) {
            Some(set) => {
                idx.hits.fetch_add(1, Ordering::Relaxed);
                Some(set.iter().copied().collect())
            }
            None => {
                idx.misses.fetch_add(1, Ordering::Relaxed);
                Some(vec![])
            }
        }
    }

    fn index_insert(&mut self, label: Symbol, key: Symbol, value: &Value, node: NodeId) {
        if let Some(idx) = self.indexes.get_mut(&(label, key)) {
            if idx
                .map
                .entry(OrderedValue(value.clone()))
                .or_default()
                .insert(node)
            {
                idx.entries += 1;
            }
        }
    }

    fn index_remove(&mut self, label: Symbol, key: Symbol, value: &Value, node: NodeId) {
        if let Some(idx) = self.indexes.get_mut(&(label, key)) {
            let probe = OrderedValue(value.clone());
            if let Some(set) = idx.map.get_mut(&probe) {
                if set.remove(&node) {
                    idx.entries -= 1;
                }
                if set.is_empty() {
                    idx.map.remove(&probe);
                }
            }
        }
    }

    /// Add all of a node's index entries (creation / delete-undo).
    fn index_node_full(&mut self, id: NodeId, data: &NodeData) {
        if self.indexes.is_empty() {
            return;
        }
        for &l in &data.labels {
            for (&k, v) in &data.props {
                let v = v.clone();
                self.index_insert(l, k, &v, id);
            }
        }
    }

    /// Remove all of a node's index entries (deletion / create-undo).
    fn deindex_node_full(&mut self, id: NodeId, data: &NodeData) {
        if self.indexes.is_empty() {
            return;
        }
        for &l in &data.labels {
            for (&k, v) in &data.props {
                let v = v.clone();
                self.index_remove(l, k, &v, id);
            }
        }
    }

    /// Maintain indexes across one property change on a node.
    fn reindex_prop(
        &mut self,
        node: NodeId,
        labels: &BTreeSet<Symbol>,
        key: Symbol,
        old: Option<&Value>,
        new: Option<&Value>,
    ) {
        if self.indexes.is_empty() {
            return;
        }
        for &l in labels {
            if let Some(v) = old {
                let v = v.clone();
                self.index_remove(l, key, &v, node);
            }
            if let Some(v) = new {
                let v = v.clone();
                self.index_insert(l, key, &v, node);
            }
        }
    }

    /// Maintain indexes across a label addition/removal on a node.
    fn reindex_label(&mut self, node: NodeId, label: Symbol, adding: bool) {
        if self.indexes.is_empty() {
            return;
        }
        let props: Vec<(Symbol, Value)> = self
            .nodes
            .get(&node)
            .map(|d| d.props.iter().map(|(&k, v)| (k, v.clone())).collect())
            .unwrap_or_default();
        for (k, v) in props {
            if adding {
                self.index_insert(label, k, &v, node);
            } else {
                self.index_remove(label, k, &v, node);
            }
        }
    }

    // ------------------------------------------------------------------
    // Mutations (all journaled)
    // ------------------------------------------------------------------

    /// See [`Value::storable_as_property`].
    fn storable(value: &Value) -> bool {
        value.storable_as_property()
    }

    /// Create a node with the given labels and properties. `null` property
    /// values are dropped.
    pub fn create_node<L, P>(&mut self, labels: L, props: P) -> NodeId
    where
        L: IntoIterator<Item = Symbol>,
        P: IntoIterator<Item = (Symbol, Value)>,
    {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        let labels: BTreeSet<Symbol> = labels.into_iter().collect();
        let props: PropertyMap = props
            .into_iter()
            .filter(|(_, v)| !v.is_null() && Self::storable(v))
            .collect();
        for &l in &labels {
            self.label_index.entry(l).or_default().insert(id);
        }
        let data = NodeData { labels, props };
        self.index_node_full(id, &data);
        if self.delta_enabled {
            self.delta.push(DeltaOp::CreateNode {
                id,
                labels: data.labels.iter().copied().collect(),
                props: data.props.iter().map(|(&k, v)| (k, v.clone())).collect(),
            });
        }
        self.nodes.insert(id, data);
        self.out_adj.insert(id, AdjList::default());
        self.in_adj.insert(id, AdjList::default());
        self.journal.push(UndoOp::CreateNode(id));
        id
    }

    /// Create a relationship. Both endpoints must be live nodes.
    pub fn create_rel<P>(
        &mut self,
        src: NodeId,
        rel_type: Symbol,
        tgt: NodeId,
        props: P,
    ) -> Result<RelId>
    where
        P: IntoIterator<Item = (Symbol, Value)>,
    {
        if !self.nodes.contains_key(&src) {
            return Err(GraphError::EndpointMissing { endpoint: src });
        }
        if !self.nodes.contains_key(&tgt) {
            return Err(GraphError::EndpointMissing { endpoint: tgt });
        }
        let id = RelId(self.next_rel);
        self.next_rel += 1;
        let props: PropertyMap = props
            .into_iter()
            .filter(|(_, v)| !v.is_null() && Self::storable(v))
            .collect();
        if self.delta_enabled {
            self.delta.push(DeltaOp::CreateRel {
                id,
                src,
                tgt,
                rel_type,
                props: props.iter().map(|(&k, v)| (k, v.clone())).collect(),
            });
        }
        self.rels.insert(
            id,
            RelData {
                src,
                tgt,
                rel_type,
                props,
            },
        );
        let is_loop = src == tgt;
        self.out_adj
            .entry(src)
            .or_default()
            .push(id, rel_type, is_loop);
        self.in_adj
            .entry(tgt)
            .or_default()
            .push(id, rel_type, is_loop);
        *self.rel_type_counts.entry(rel_type).or_default() += 1;
        self.journal.push(UndoOp::CreateRel(id));
        Ok(id)
    }

    /// Delete a relationship. Idempotent failure: deleting a zombie rel is
    /// reported as [`GraphError::RelNotFound`]; callers emulating legacy
    /// semantics treat that as a no-op.
    pub fn delete_rel(&mut self, id: RelId) -> Result<()> {
        let data = self.rels.remove(&id).ok_or(GraphError::RelNotFound(id))?;
        let src_pos = self.detach_from_adj(&data, id, Direction::Outgoing);
        let tgt_pos = self.detach_from_adj(&data, id, Direction::Incoming);
        self.note_rel_removed(data.rel_type);
        self.tomb_rels.insert(id);
        if self.delta_enabled {
            self.delta.push(DeltaOp::DeleteRel { id });
        }
        self.journal.push(UndoOp::DeleteRel {
            id,
            data,
            src_pos,
            tgt_pos,
        });
        Ok(())
    }

    fn detach_from_adj(&mut self, data: &RelData, id: RelId, dir: Direction) -> Option<usize> {
        let (map, node) = match dir {
            Direction::Outgoing => (&mut self.out_adj, data.src),
            Direction::Incoming => (&mut self.in_adj, data.tgt),
            Direction::Either => unreachable!(),
        };
        let list = map.get_mut(&node)?;
        list.remove(id, data.rel_type, data.src == data.tgt)
    }

    /// Decrement the per-type relationship counter.
    fn note_rel_removed(&mut self, ty: Symbol) {
        if let Some(c) = self.rel_type_counts.get_mut(&ty) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.rel_type_counts.remove(&ty);
            }
        }
    }

    /// Delete a node. Returns the ids of any relationships deleted alongside
    /// it (non-empty only for [`DeleteNodeMode::Detach`]).
    pub fn delete_node(&mut self, id: NodeId, mode: DeleteNodeMode) -> Result<Vec<RelId>> {
        if !self.nodes.contains_key(&id) {
            return Err(GraphError::NodeNotFound(id));
        }
        let attached = self.rels_of(id, Direction::Either);
        let mut cascaded = Vec::new();
        match mode {
            DeleteNodeMode::Strict if !attached.is_empty() => {
                return Err(GraphError::NodeStillHasRelationships {
                    node: id,
                    attached: attached.len(),
                });
            }
            DeleteNodeMode::Detach => {
                for r in attached {
                    self.delete_rel(r)?;
                    cascaded.push(r);
                }
            }
            _ => {}
        }
        let Some(data) = self.nodes.remove(&id) else {
            unreachable!("delete_node: liveness of {id} checked above");
        };
        self.deindex_node_full(id, &data);
        for &l in &data.labels {
            if let Some(set) = self.label_index.get_mut(&l) {
                set.remove(&id);
            }
        }
        let out = self.out_adj.remove(&id).unwrap_or_default().all;
        let inc = self.in_adj.remove(&id).unwrap_or_default().all;
        self.tomb_nodes.insert(id);
        if self.delta_enabled {
            self.delta.push(DeltaOp::DeleteNode { id });
        }
        self.journal.push(UndoOp::DeleteNode { id, data, out, inc });
        Ok(cascaded)
    }

    /// Add a label to a node. Returns whether the label set changed.
    pub fn add_label(&mut self, node: NodeId, label: Symbol) -> Result<bool> {
        let data = self
            .nodes
            .get_mut(&node)
            .ok_or(GraphError::NodeNotFound(node))?;
        let changed = data.labels.insert(label);
        if changed {
            self.label_index.entry(label).or_default().insert(node);
            self.reindex_label(node, label, true);
            if self.delta_enabled {
                self.delta.push(DeltaOp::AddLabel { node, label });
            }
            self.journal.push(UndoOp::AddLabel { node, label });
        }
        Ok(changed)
    }

    /// Remove a label from a node. Returns whether the label set changed.
    pub fn remove_label(&mut self, node: NodeId, label: Symbol) -> Result<bool> {
        let data = self
            .nodes
            .get_mut(&node)
            .ok_or(GraphError::NodeNotFound(node))?;
        let changed = data.labels.remove(&label);
        if changed {
            if let Some(set) = self.label_index.get_mut(&label) {
                set.remove(&node);
            }
            self.reindex_label(node, label, false);
            if self.delta_enabled {
                self.delta.push(DeltaOp::RemoveLabel { node, label });
            }
            self.journal.push(UndoOp::RemoveLabel { node, label });
        }
        Ok(changed)
    }

    /// Set one property. Assigning `null` removes the key. Non-storable
    /// values are rejected.
    pub fn set_prop(&mut self, entity: EntityRef, key: Symbol, value: Value) -> Result<()> {
        if !value.is_null() && !Self::storable(&value) {
            let key_name = self.sym_str(key).to_owned();
            return Err(GraphError::InvalidPropertyValue {
                entity,
                key: key_name,
            });
        }
        let new_for_index = if value.is_null() {
            None
        } else {
            Some(value.clone())
        };
        // A write that changes nothing is a complete no-op: no journal
        // entry, no delta op (the contract is one `SetProp` per *changed*
        // key — label ops already behave this way), no index churn.
        {
            let map = self.props_mut(entity)?;
            let unchanged = match &new_for_index {
                None => !map.contains_key(&key),
                Some(v) => map.get(&key) == Some(v),
            };
            if unchanged {
                return Ok(());
            }
        }
        let map = self.props_mut(entity)?;
        let old = if value.is_null() {
            map.remove(&key)
        } else {
            map.insert(key, value)
        };
        if let EntityRef::Node(n) = entity {
            if !self.indexes.is_empty() {
                let labels = self
                    .nodes
                    .get(&n)
                    .map(|d| d.labels.clone())
                    .unwrap_or_default();
                self.reindex_prop(n, &labels, key, old.as_ref(), new_for_index.as_ref());
            }
        }
        if self.delta_enabled {
            self.delta.push(DeltaOp::SetProp {
                entity,
                key,
                value: new_for_index,
            });
        }
        self.journal.push(UndoOp::SetProp { entity, key, old });
        Ok(())
    }

    /// Replace the entire property map of an entity (`SET n = {map}`).
    pub fn replace_props(&mut self, entity: EntityRef, new: PropertyMap) -> Result<()> {
        let existing: Vec<Symbol> = self.props_mut(entity)?.keys().copied().collect();
        for key in existing {
            if !new.contains_key(&key) {
                self.set_prop(entity, key, Value::Null)?;
            }
        }
        for (key, value) in new {
            self.set_prop(entity, key, value)?;
        }
        Ok(())
    }

    /// Merge properties into an entity (`SET n += {map}`): present keys are
    /// overwritten (null values remove), absent keys untouched.
    pub fn merge_props(&mut self, entity: EntityRef, extra: PropertyMap) -> Result<()> {
        for (key, value) in extra {
            self.set_prop(entity, key, value)?;
        }
        Ok(())
    }

    fn props_mut(&mut self, entity: EntityRef) -> Result<&mut PropertyMap> {
        match entity {
            EntityRef::Node(n) => self
                .nodes
                .get_mut(&n)
                .map(|d| &mut d.props)
                .ok_or(GraphError::NodeNotFound(n)),
            EntityRef::Rel(r) => self
                .rels
                .get_mut(&r)
                .map(|d| &mut d.props)
                .ok_or(GraphError::RelNotFound(r)),
        }
    }

    // ------------------------------------------------------------------
    // Journal / savepoints
    // ------------------------------------------------------------------

    /// Current journal position. Rolling back to it undoes everything that
    /// happened after this call.
    pub fn savepoint(&self) -> Savepoint {
        Savepoint(self.journal.len())
    }

    /// Undo all mutations after `sp`, restoring the exact prior state
    /// (including adjacency order and tombstones).
    pub fn rollback_to(&mut self, sp: Savepoint) {
        while self.journal.len() > sp.0 {
            // The loop condition guarantees the journal is longer than the
            // savepoint mark, so there is always an entry to pop.
            let Some(op) = self.journal.pop() else { break };
            if self.delta_enabled {
                // Journal and delta are pushed in lock-step, so popping one
                // redo entry per undo entry discards exactly the rolled-back
                // operations from the pending delta.
                if self.delta.pop().is_none() {
                    unreachable!("delta mirrors journal");
                }
            }
            self.undo(op);
        }
    }

    /// Undo *everything* in the journal, back to the last statement
    /// boundary. This is the recovery path for a panic that unwound out of
    /// a statement without running its transaction's rollback (the
    /// durability layer's post-panic reconciliation).
    pub fn rollback_all(&mut self) {
        self.rollback_to(Savepoint(0));
    }

    /// Forget journal entries after `sp` (they can no longer be undone).
    /// Forgetting from the very beginning clears the journal entirely.
    pub fn commit(&mut self, sp: Savepoint) {
        debug_assert!(sp.0 <= self.journal.len());
        if sp.0 == 0 {
            self.journal.clear();
            self.journal.shrink_to_fit();
        }
        // Entries between an outer savepoint and the journal head must stay,
        // so that an enclosing rollback can still undo them; only a root
        // commit truncates.
    }

    /// Number of pending journal entries (diagnostics / tests).
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    // ------------------------------------------------------------------
    // Delta capture (redo log for the durability layer)
    // ------------------------------------------------------------------

    /// Start recording a [`DeltaOp`] redo log alongside the undo journal.
    ///
    /// Must be called at a statement boundary (empty journal): the lock-step
    /// invariant between journal and delta only holds for operations
    /// recorded after capture begins.
    pub fn enable_delta_capture(&mut self) {
        assert!(
            self.journal.is_empty(),
            "delta capture must start at a statement boundary"
        );
        self.delta_enabled = true;
        self.delta.clear();
    }

    /// Stop recording and discard any pending delta.
    pub fn disable_delta_capture(&mut self) {
        self.delta_enabled = false;
        self.delta.clear();
    }

    pub fn delta_capture_enabled(&self) -> bool {
        self.delta_enabled
    }

    /// The redo entries of all operations recorded since the last
    /// [`Self::clear_delta`] that were not rolled back.
    pub fn delta(&self) -> &[DeltaOp] {
        &self.delta
    }

    /// Forget the pending delta — called by the durability layer once it has
    /// been written to the log. Only valid at a statement boundary (empty
    /// journal), otherwise a later rollback would desynchronise the stacks.
    pub fn clear_delta(&mut self) {
        debug_assert!(
            self.journal.is_empty(),
            "delta cleared mid-statement would desynchronise rollback"
        );
        self.delta.clear();
    }

    // ------------------------------------------------------------------
    // Restore (recovery-only; not journaled, not delta-captured)
    // ------------------------------------------------------------------

    /// Insert a node under an explicit id, as read from a snapshot. The id
    /// must be fresh. Adjacency starts empty and is rebuilt by the
    /// [`Self::restore_rel`] calls that follow; `next_node` advances past
    /// `id` so future creations never collide.
    pub fn restore_node(&mut self, id: NodeId, data: NodeData) {
        assert!(
            !self.nodes.contains_key(&id),
            "restore_node: {id:?} already exists"
        );
        for &l in &data.labels {
            self.label_index.entry(l).or_default().insert(id);
        }
        self.index_node_full(id, &data);
        self.nodes.insert(id, data);
        self.out_adj.insert(id, AdjList::default());
        self.in_adj.insert(id, AdjList::default());
        self.next_node = self.next_node.max(id.0 + 1);
    }

    /// Insert a relationship under an explicit id, as read from a snapshot
    /// or replayed from a log. Both endpoints must already be live.
    /// Restoring relationships in ascending id order reproduces the
    /// canonical adjacency order of a committed graph (adjacency lists are
    /// insertion-ordered, and at statement boundaries insertion order is id
    /// order).
    pub fn restore_rel(&mut self, id: RelId, data: RelData) -> Result<()> {
        assert!(
            !self.rels.contains_key(&id),
            "restore_rel: {id:?} already exists"
        );
        if !self.nodes.contains_key(&data.src) {
            return Err(GraphError::EndpointMissing { endpoint: data.src });
        }
        if !self.nodes.contains_key(&data.tgt) {
            return Err(GraphError::EndpointMissing { endpoint: data.tgt });
        }
        let is_loop = data.src == data.tgt;
        self.out_adj
            .entry(data.src)
            .or_default()
            .push(id, data.rel_type, is_loop);
        self.in_adj
            .entry(data.tgt)
            .or_default()
            .push(id, data.rel_type, is_loop);
        *self.rel_type_counts.entry(data.rel_type).or_default() += 1;
        self.next_rel = self.next_rel.max(id.0 + 1);
        self.rels.insert(id, data);
        Ok(())
    }

    /// Re-mark entities as formerly-deleted (zombie bookkeeping from a
    /// snapshot).
    pub fn restore_tombstones<N, R>(&mut self, nodes: N, rels: R)
    where
        N: IntoIterator<Item = NodeId>,
        R: IntoIterator<Item = RelId>,
    {
        self.tomb_nodes.extend(nodes);
        self.tomb_rels.extend(rels);
    }

    /// Force the id allocators forward (never backward) to the values a
    /// snapshot recorded, so ids deleted before the snapshot stay retired.
    pub fn restore_next_ids(&mut self, next_node: u64, next_rel: u64) {
        self.next_node = self.next_node.max(next_node);
        self.next_rel = self.next_rel.max(next_rel);
    }

    /// Current id allocator positions, for snapshotting.
    pub fn next_ids(&self) -> (u64, u64) {
        (self.next_node, self.next_rel)
    }

    /// Tombstoned node ids, ascending (for snapshotting).
    pub fn tomb_node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.tomb_nodes.iter().copied()
    }

    /// Tombstoned relationship ids, ascending (for snapshotting).
    pub fn tomb_rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        self.tomb_rels.iter().copied()
    }

    /// The interner, for serializing the symbol table.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    fn undo(&mut self, op: UndoOp) {
        match op {
            UndoOp::CreateNode(id) => {
                let Some(data) = self.nodes.remove(&id) else {
                    unreachable!("undo create: node {id} exists");
                };
                self.deindex_node_full(id, &data);
                for &l in &data.labels {
                    if let Some(set) = self.label_index.get_mut(&l) {
                        set.remove(&id);
                    }
                }
                self.out_adj.remove(&id);
                self.in_adj.remove(&id);
                // A node created after the savepoint was never visible
                // before it; it is not a tombstone.
                self.tomb_nodes.remove(&id);
                // Rewind the allocator: undo runs newest-first, so the
                // undone id is always the most recently allocated one.
                // Without this a rolled-back statement permanently skips
                // ids, and a replica replaying only committed statements
                // allocates differently from the primary.
                if id.0 + 1 == self.next_node {
                    self.next_node = id.0;
                }
            }
            UndoOp::CreateRel(id) => {
                let Some(data) = self.rels.remove(&id) else {
                    unreachable!("undo create: rel {id} exists");
                };
                let is_loop = data.src == data.tgt;
                if let Some(list) = self.out_adj.get_mut(&data.src) {
                    list.remove(id, data.rel_type, is_loop);
                }
                if let Some(list) = self.in_adj.get_mut(&data.tgt) {
                    list.remove(id, data.rel_type, is_loop);
                }
                self.note_rel_removed(data.rel_type);
                self.tomb_rels.remove(&id);
                // See the CreateNode arm: keep replicas id-faithful.
                if id.0 + 1 == self.next_rel {
                    self.next_rel = id.0;
                }
            }
            UndoOp::DeleteRel {
                id,
                data,
                src_pos,
                tgt_pos,
            } => {
                let is_loop = data.src == data.tgt;
                if let Some(pos) = src_pos {
                    if let Some(list) = self.out_adj.get_mut(&data.src) {
                        list.insert_at(pos, id, data.rel_type, is_loop, &self.rels);
                    }
                }
                if let Some(pos) = tgt_pos {
                    if let Some(list) = self.in_adj.get_mut(&data.tgt) {
                        list.insert_at(pos, id, data.rel_type, is_loop, &self.rels);
                    }
                }
                *self.rel_type_counts.entry(data.rel_type).or_default() += 1;
                self.rels.insert(id, data);
                self.tomb_rels.remove(&id);
            }
            UndoOp::DeleteNode { id, data, out, inc } => {
                for &l in &data.labels {
                    self.label_index.entry(l).or_default().insert(id);
                }
                self.index_node_full(id, &data);
                self.nodes.insert(id, data);
                // Undo runs newest-first, so every relationship listed here
                // is live again by now; partitions rebuild from their types.
                let out = AdjList::rebuild(out, &self.rels);
                let inc = AdjList::rebuild(inc, &self.rels);
                self.out_adj.insert(id, out);
                self.in_adj.insert(id, inc);
                self.tomb_nodes.remove(&id);
            }
            UndoOp::AddLabel { node, label } => {
                if let Some(d) = self.nodes.get_mut(&node) {
                    d.labels.remove(&label);
                }
                if let Some(set) = self.label_index.get_mut(&label) {
                    set.remove(&node);
                }
                self.reindex_label(node, label, false);
            }
            UndoOp::RemoveLabel { node, label } => {
                if let Some(d) = self.nodes.get_mut(&node) {
                    d.labels.insert(label);
                }
                self.label_index.entry(label).or_default().insert(node);
                self.reindex_label(node, label, true);
            }
            UndoOp::SetProp { entity, key, old } => {
                // The entity may have been deleted and restored by an
                // earlier undo step in the same rollback; it must exist now.
                let mut replaced: Option<Value> = None;
                if let Ok(map) = self.props_mut(entity) {
                    replaced = match &old {
                        Some(v) => map.insert(key, v.clone()),
                        None => map.remove(&key),
                    };
                }
                if let EntityRef::Node(n) = entity {
                    if !self.indexes.is_empty() && self.nodes.contains_key(&n) {
                        let labels = self
                            .nodes
                            .get(&n)
                            .map(|d| d.labels.clone())
                            .unwrap_or_default();
                        self.reindex_prop(n, &labels, key, replaced.as_ref(), old.as_ref());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marketplace() -> (PropertyGraph, Vec<NodeId>) {
        let mut g = PropertyGraph::new();
        let product = g.sym("Product");
        let user = g.sym("User");
        let id_k = g.sym("id");
        let name_k = g.sym("name");
        let ordered = g.sym("ORDERED");
        let p1 = g.create_node(
            [product],
            [(id_k, Value::Int(125)), (name_k, Value::str("laptop"))],
        );
        let u1 = g.create_node(
            [user],
            [(id_k, Value::Int(89)), (name_k, Value::str("Bob"))],
        );
        g.create_rel(u1, ordered, p1, []).unwrap();
        (g, vec![p1, u1])
    }

    #[test]
    fn create_and_read_back() {
        let (g, ids) = marketplace();
        let p1 = ids[0];
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.rel_count(), 1);
        let id_k = g.try_sym("id").unwrap();
        assert_eq!(g.prop(p1.into(), id_k), Value::Int(125));
        let product = g.try_sym("Product").unwrap();
        assert_eq!(g.nodes_with_label(product).collect::<Vec<_>>(), vec![p1]);
    }

    #[test]
    fn null_properties_are_not_stored() {
        let mut g = PropertyGraph::new();
        let k = g.sym("id");
        let n = g.create_node([], [(k, Value::Null)]);
        assert!(g.node(n).unwrap().props.is_empty());
        g.set_prop(n.into(), k, Value::Int(1)).unwrap();
        g.set_prop(n.into(), k, Value::Null).unwrap();
        assert!(g.node(n).unwrap().props.is_empty());
        assert_eq!(g.prop(n.into(), k), Value::Null);
    }

    #[test]
    fn non_storable_property_rejected() {
        let mut g = PropertyGraph::new();
        let k = g.sym("bad");
        let n = g.create_node([], []);
        let err = g
            .set_prop(n.into(), k, Value::Map(Default::default()))
            .unwrap_err();
        assert!(matches!(err, GraphError::InvalidPropertyValue { .. }));
        let err = g
            .set_prop(n.into(), k, Value::list([Value::Node(n)]))
            .unwrap_err();
        assert!(matches!(err, GraphError::InvalidPropertyValue { .. }));
    }

    #[test]
    fn strict_delete_fails_with_attached_rels() {
        let (mut g, ids) = marketplace();
        let err = g.delete_node(ids[0], DeleteNodeMode::Strict).unwrap_err();
        assert!(matches!(
            err,
            GraphError::NodeStillHasRelationships { attached: 1, .. }
        ));
    }

    #[test]
    fn detach_delete_cascades() {
        let (mut g, ids) = marketplace();
        let cascaded = g.delete_node(ids[0], DeleteNodeMode::Detach).unwrap();
        assert_eq!(cascaded.len(), 1);
        assert_eq!(g.rel_count(), 0);
        assert_eq!(g.node_count(), 1);
        g.integrity_check().unwrap();
    }

    #[test]
    fn force_delete_leaves_dangling_rel() {
        let (mut g, ids) = marketplace();
        g.delete_node(ids[0], DeleteNodeMode::Force).unwrap();
        assert_eq!(g.rel_count(), 1);
        let dangling = g.dangling_rels();
        assert_eq!(dangling.len(), 1);
        assert!(g.integrity_check().is_err());
        assert!(g.is_zombie(ids[0].into()));
        // Zombie reads are empty / null.
        assert_eq!(g.prop(ids[0].into(), g.try_sym("id").unwrap()), Value::Null);
        assert!(g.labels(ids[0]).is_empty());
    }

    #[test]
    fn rel_to_missing_endpoint_rejected() {
        let mut g = PropertyGraph::new();
        let t = g.sym("KNOWS");
        let a = g.create_node([], []);
        let err = g.create_rel(a, t, NodeId(999), []).unwrap_err();
        assert_eq!(
            err,
            GraphError::EndpointMissing {
                endpoint: NodeId(999)
            }
        );
    }

    #[test]
    fn self_loop_counted_once_in_either_direction() {
        let mut g = PropertyGraph::new();
        let t = g.sym("LOOP");
        let a = g.create_node([], []);
        let r = g.create_rel(a, t, a, []).unwrap();
        assert_eq!(g.rels_of(a, Direction::Either), vec![r]);
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.rels_of(a, Direction::Outgoing), vec![r]);
        assert_eq!(g.rels_of(a, Direction::Incoming), vec![r]);
    }

    #[test]
    fn label_add_remove_keeps_index_consistent() {
        let mut g = PropertyGraph::new();
        let l = g.sym("User");
        let n = g.create_node([], []);
        assert!(g.add_label(n, l).unwrap());
        assert!(!g.add_label(n, l).unwrap());
        assert_eq!(g.nodes_with_label(l).count(), 1);
        assert!(g.remove_label(n, l).unwrap());
        assert!(!g.remove_label(n, l).unwrap());
        assert_eq!(g.nodes_with_label(l).count(), 0);
    }

    #[test]
    fn rollback_restores_everything() {
        let (mut g, ids) = marketplace();
        let before = g.clone();
        let sp = g.savepoint();

        let id_k = g.sym("id");
        let vendor = g.sym("Vendor");
        let offers = g.sym("OFFERS");
        let v = g.create_node([vendor], [(id_k, Value::Int(60))]);
        g.create_rel(v, offers, ids[0], []).unwrap();
        g.set_prop(ids[0].into(), id_k, Value::Int(999)).unwrap();
        g.add_label(ids[1], vendor).unwrap();
        g.delete_node(ids[0], DeleteNodeMode::Force).unwrap();

        g.rollback_to(sp);

        assert_eq!(g.node_count(), before.node_count());
        assert_eq!(g.rel_count(), before.rel_count());
        assert_eq!(g.node(ids[0]), before.node(ids[0]));
        assert_eq!(g.node(ids[1]), before.node(ids[1]));
        assert!(!g.is_zombie(ids[0].into()));
        g.integrity_check().unwrap();
        assert_eq!(g.nodes_with_label(vendor).count(), 0);
    }

    #[test]
    fn rollback_restores_adjacency_order() {
        let mut g = PropertyGraph::new();
        let t = g.sym("T");
        let a = g.create_node([], []);
        let b = g.create_node([], []);
        let r1 = g.create_rel(a, t, b, []).unwrap();
        let r2 = g.create_rel(a, t, b, []).unwrap();
        let r3 = g.create_rel(a, t, b, []).unwrap();
        let sp = g.savepoint();
        g.delete_rel(r2).unwrap();
        assert_eq!(g.rels_of(a, Direction::Outgoing), vec![r1, r3]);
        g.rollback_to(sp);
        assert_eq!(g.rels_of(a, Direction::Outgoing), vec![r1, r2, r3]);
    }

    #[test]
    fn commit_at_root_clears_journal() {
        let (mut g, _) = marketplace();
        assert!(g.journal_len() > 0);
        g.commit(Savepoint(0));
        assert_eq!(g.journal_len(), 0);
    }

    #[test]
    fn replace_props_removes_stale_keys() {
        let mut g = PropertyGraph::new();
        let a_k = g.sym("a");
        let b_k = g.sym("b");
        let n = g.create_node([], [(a_k, Value::Int(1)), (b_k, Value::Int(2))]);
        let mut new = PropertyMap::new();
        new.insert(b_k, Value::Int(20));
        g.replace_props(n.into(), new).unwrap();
        assert_eq!(g.prop(n.into(), a_k), Value::Null);
        assert_eq!(g.prop(n.into(), b_k), Value::Int(20));
    }

    #[test]
    fn merge_props_keeps_absent_keys() {
        let mut g = PropertyGraph::new();
        let a_k = g.sym("a");
        let b_k = g.sym("b");
        let n = g.create_node([], [(a_k, Value::Int(1))]);
        let mut extra = PropertyMap::new();
        extra.insert(b_k, Value::Int(2));
        g.merge_props(n.into(), extra).unwrap();
        assert_eq!(g.prop(n.into(), a_k), Value::Int(1));
        assert_eq!(g.prop(n.into(), b_k), Value::Int(2));
    }

    #[test]
    fn ids_are_never_reused() {
        let mut g = PropertyGraph::new();
        let a = g.create_node([], []);
        g.delete_node(a, DeleteNodeMode::Strict).unwrap();
        let b = g.create_node([], []);
        assert_ne!(a, b);
    }

    #[test]
    fn delete_rel_then_node_strict_succeeds() {
        let (mut g, ids) = marketplace();
        let rels = g.rels_of(ids[0], Direction::Either);
        for r in rels {
            g.delete_rel(r).unwrap();
        }
        g.delete_node(ids[0], DeleteNodeMode::Strict).unwrap();
        g.integrity_check().unwrap();
    }

    /// Check `rels_iter`/`rels_typed`/`degree` against the reference
    /// `rels_of` on every node and direction.
    fn check_adjacency_consistency(g: &PropertyGraph) {
        use Direction::*;
        let types: Vec<Symbol> = g.rel_type_counts().map(|(t, _)| t).collect();
        for n in g.node_ids() {
            for dir in [Outgoing, Incoming, Either] {
                let reference = g.rels_of(n, dir);
                assert_eq!(g.rels_iter(n, dir).collect::<Vec<_>>(), reference);
                for &ty in &types {
                    let filtered: Vec<RelId> = reference
                        .iter()
                        .copied()
                        .filter(|r| g.rel(*r).map(|d| d.rel_type == ty).unwrap_or(false))
                        .collect();
                    assert_eq!(g.rels_typed(n, dir, ty).collect::<Vec<_>>(), filtered);
                }
            }
            assert_eq!(g.degree(n), g.rels_of(n, Either).len());
        }
    }

    #[test]
    fn typed_partitions_match_filtered_adjacency() {
        let mut g = PropertyGraph::new();
        let a_t = g.sym("A");
        let b_t = g.sym("B");
        let n1 = g.create_node([], []);
        let n2 = g.create_node([], []);
        g.create_rel(n1, a_t, n2, []).unwrap();
        g.create_rel(n1, b_t, n2, []).unwrap();
        let r3 = g.create_rel(n2, a_t, n1, []).unwrap();
        g.create_rel(n1, a_t, n1, []).unwrap(); // self-loop
        g.create_rel(n1, a_t, n2, []).unwrap();
        check_adjacency_consistency(&g);
        g.delete_rel(r3).unwrap();
        check_adjacency_consistency(&g);
    }

    #[test]
    fn partitions_survive_rollback() {
        let mut g = PropertyGraph::new();
        let a_t = g.sym("A");
        let b_t = g.sym("B");
        let n1 = g.create_node([], []);
        let n2 = g.create_node([], []);
        let r1 = g.create_rel(n1, a_t, n2, []).unwrap();
        let r2 = g.create_rel(n1, b_t, n2, []).unwrap();
        let r3 = g.create_rel(n1, a_t, n2, []).unwrap();
        let sp = g.savepoint();
        g.delete_rel(r1).unwrap();
        g.create_rel(n1, a_t, n2, []).unwrap();
        g.delete_node(n2, DeleteNodeMode::Detach).unwrap();
        g.rollback_to(sp);
        check_adjacency_consistency(&g);
        assert_eq!(g.rels_of(n1, Direction::Outgoing), vec![r1, r2, r3]);
        assert_eq!(
            g.rels_typed(n1, Direction::Outgoing, a_t)
                .collect::<Vec<_>>(),
            vec![r1, r3]
        );
        assert_eq!(g.rel_type_count(a_t), 2);
        assert_eq!(g.rel_type_count(b_t), 1);
    }

    #[test]
    fn self_loop_rollback_keeps_loop_count() {
        let mut g = PropertyGraph::new();
        let t = g.sym("LOOP");
        let a = g.create_node([], []);
        let r = g.create_rel(a, t, a, []).unwrap();
        let sp = g.savepoint();
        g.delete_rel(r).unwrap();
        assert_eq!(g.degree(a), 0);
        g.rollback_to(sp);
        assert_eq!(g.degree(a), 1);
        check_adjacency_consistency(&g);
        let sp2 = g.savepoint();
        g.delete_node(a, DeleteNodeMode::Detach).unwrap();
        g.rollback_to(sp2);
        assert_eq!(g.degree(a), 1);
        check_adjacency_consistency(&g);
    }

    #[test]
    fn rel_type_counts_track_mutations() {
        let (mut g, ids) = marketplace();
        let ordered = g.try_sym("ORDERED").unwrap();
        assert_eq!(g.rel_type_count(ordered), 1);
        let sp = g.savepoint();
        g.delete_node(ids[1], DeleteNodeMode::Detach).unwrap();
        assert_eq!(g.rel_type_count(ordered), 0);
        g.rollback_to(sp);
        assert_eq!(g.rel_type_count(ordered), 1);
        assert_eq!(g.rel_type_counts().collect::<Vec<_>>(), vec![(ordered, 1)]);
    }

    #[test]
    fn label_counts_skip_emptied_labels() {
        let mut g = PropertyGraph::new();
        let l = g.sym("User");
        let n = g.create_node([l], []);
        assert_eq!(g.label_count(l), 1);
        g.remove_label(n, l).unwrap();
        assert_eq!(g.label_count(l), 0);
        assert!(g.label_counts().next().is_none());
    }

    #[test]
    fn index_counters_and_selectivity() {
        let mut g = PropertyGraph::new();
        let user = g.sym("User");
        let id_k = g.sym("id");
        for i in 0..4 {
            g.create_node([user], [(id_k, Value::Int(i))]);
        }
        g.create_index(user, id_k);
        assert_eq!(g.index_selectivity(user, id_k), Some(1.0));
        assert_eq!(g.index_bucket_size(user, id_k, &Value::Int(2)), Some(1));
        g.index_lookup(user, id_k, &Value::Int(2)).unwrap();
        g.index_lookup(user, id_k, &Value::Int(99)).unwrap();
        let stats = g.index_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].entries, 4);
        assert_eq!(stats[0].distinct, 4);
        assert_eq!(stats[0].hits, 1);
        assert_eq!(stats[0].misses, 1);
        // Estimation probes do not count.
        g.index_bucket_size(user, id_k, &Value::Int(3));
        assert_eq!(g.index_stats()[0].hits, 1);
    }

    #[test]
    fn nested_savepoints() {
        let mut g = PropertyGraph::new();
        let outer = g.savepoint();
        let a = g.create_node([], []);
        let inner = g.savepoint();
        let b = g.create_node([], []);
        g.rollback_to(inner);
        assert!(g.contains_node(a));
        assert!(!g.contains_node(b));
        g.rollback_to(outer);
        assert!(!g.contains_node(a));
        assert_eq!(g.node_count(), 0);
    }
}
