//! Graph comparison up to identifier renaming.
//!
//! §8.2 notes that the representative choices in `MERGE SAME` "do not make
//! the semantics nondeterministic: the output graph-table pairs are the same
//! up to id renaming". Verifying the paper's figures therefore needs graph
//! isomorphism over *attributed* graphs: two graphs are the same figure when
//! there is a bijection between their nodes preserving labels, properties
//! and relationship structure (type, properties, multiplicity, direction).
//!
//! The implementation is a signature-pruned backtracking search. Paper
//! figures have ≤ 12 nodes; the search is also used by property tests on
//! modest random graphs, where signature pruning keeps it fast in practice.

use std::collections::BTreeMap;

use crate::graph::PropertyGraph;
use crate::ids::NodeId;
use crate::value::Value;

/// Label + property + degree fingerprint of a node, with vocabulary resolved
/// to strings so graphs with different interners compare correctly.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct NodeSig {
    labels: Vec<String>,
    props: Vec<(String, CanonValue)>,
    out_degree: usize,
    in_degree: usize,
}

/// Orderable stand-in for property values (properties are storable values
/// only, so no graph references appear).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum CanonValue {
    Bool(bool),
    Int(i64),
    /// Total order via bit pattern, with NaN and -0.0 normalized so the
    /// comparison matches value equivalence.
    Float(u64),
    Str(String),
    List(Vec<CanonValue>),
    Other(String),
}

impl CanonValue {
    fn of(v: &Value) -> CanonValue {
        match v {
            Value::Bool(b) => CanonValue::Bool(*b),
            Value::Int(i) => CanonValue::Int(*i),
            Value::Float(f) => {
                // Normalize: all NaNs are one key (matching equivalence),
                // and -0.0 equals 0.0.
                let f = if f.is_nan() {
                    f64::NAN
                } else if *f == 0.0 {
                    0.0
                } else {
                    *f
                };
                CanonValue::Float(f.to_bits())
            }
            Value::Str(s) => CanonValue::Str(s.clone()),
            Value::List(items) => CanonValue::List(items.iter().map(CanonValue::of).collect()),
            other => CanonValue::Other(other.to_string()),
        }
    }
}

fn node_sig(g: &PropertyGraph, id: NodeId) -> NodeSig {
    let Some(data) = g.node(id) else {
        unreachable!("node_ids yields only live nodes");
    };
    // Labels are stored as interned symbols ordered by interning sequence;
    // resolve and sort by *name* so graphs built in different vocabulary
    // orders compare equal.
    let mut labels: Vec<String> = data
        .labels
        .iter()
        .map(|&l| g.sym_str(l).to_owned())
        .collect();
    labels.sort_unstable();
    NodeSig {
        labels,
        props: {
            let mut props: Vec<(String, CanonValue)> = data
                .props
                .iter()
                .map(|(&k, v)| (g.sym_str(k).to_owned(), CanonValue::of(v)))
                .collect();
            props.sort_by(|(a, _), (b, _)| a.cmp(b));
            props
        },
        out_degree: g.rels_of(id, crate::graph::Direction::Outgoing).len(),
        in_degree: g.rels_of(id, crate::graph::Direction::Incoming).len(),
    }
}

type RelKey = (usize, usize, String, Vec<(String, CanonValue)>);

fn rel_multiset(
    g: &PropertyGraph,
    index_of: &BTreeMap<NodeId, usize>,
) -> Option<BTreeMap<RelKey, usize>> {
    let mut out: BTreeMap<RelKey, usize> = BTreeMap::new();
    for r in g.rel_ids() {
        let Some(d) = g.rel(r) else {
            unreachable!("rel_ids yields only live rels");
        };
        let src = *index_of.get(&d.src)?;
        let tgt = *index_of.get(&d.tgt)?;
        let mut props: Vec<(String, CanonValue)> = d
            .props
            .iter()
            .map(|(&k, v)| (g.sym_str(k).to_owned(), CanonValue::of(v)))
            .collect();
        props.sort_by(|(a, _), (b, _)| a.cmp(b));
        let key = (src, tgt, g.sym_str(d.rel_type).to_owned(), props);
        *out.entry(key).or_default() += 1;
    }
    Some(out)
}

/// Are `a` and `b` the same property graph up to id renaming?
///
/// Returns `false` for graphs containing dangling relationships (an illegal
/// graph is not "a figure").
pub fn isomorphic(a: &PropertyGraph, b: &PropertyGraph) -> bool {
    if a.node_count() != b.node_count() || a.rel_count() != b.rel_count() {
        return false;
    }
    if a.integrity_check().is_err() || b.integrity_check().is_err() {
        return false;
    }

    let a_nodes: Vec<NodeId> = a.node_ids().collect();
    let b_nodes: Vec<NodeId> = b.node_ids().collect();
    let a_sigs: Vec<NodeSig> = a_nodes.iter().map(|&n| node_sig(a, n)).collect();
    let b_sigs: Vec<NodeSig> = b_nodes.iter().map(|&n| node_sig(b, n)).collect();

    // Quick reject: signature multisets must agree.
    let mut a_hist: BTreeMap<&NodeSig, usize> = BTreeMap::new();
    let mut b_hist: BTreeMap<&NodeSig, usize> = BTreeMap::new();
    for s in &a_sigs {
        *a_hist.entry(s).or_default() += 1;
    }
    for s in &b_sigs {
        *b_hist.entry(s).or_default() += 1;
    }
    if a_hist != b_hist {
        return false;
    }

    // Backtracking assignment of a-nodes (by position) to b-node positions.
    let n = a_nodes.len();
    let mut assignment: Vec<usize> = vec![usize::MAX; n];
    let mut used = vec![false; n];

    // Process most-constrained nodes first: rarer signatures earlier.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (a_hist[&a_sigs[i]], i));

    #[allow(clippy::too_many_arguments)]
    fn search(
        depth: usize,
        order: &[usize],
        assignment: &mut [usize],
        used: &mut [bool],
        a_sigs: &[NodeSig],
        b_sigs: &[NodeSig],
        a: &PropertyGraph,
        b: &PropertyGraph,
        a_nodes: &[NodeId],
        b_nodes: &[NodeId],
    ) -> bool {
        if depth == order.len() {
            let a_index: BTreeMap<NodeId, usize> = a_nodes
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, assignment[i]))
                .collect();
            let b_index: BTreeMap<NodeId, usize> =
                b_nodes.iter().enumerate().map(|(i, &id)| (id, i)).collect();
            return rel_multiset(a, &a_index) == rel_multiset(b, &b_index);
        }
        let ai = order[depth];
        for bi in 0..b_sigs.len() {
            if used[bi] || a_sigs[ai] != b_sigs[bi] {
                continue;
            }
            assignment[ai] = bi;
            used[bi] = true;
            if search(
                depth + 1,
                order,
                assignment,
                used,
                a_sigs,
                b_sigs,
                a,
                b,
                a_nodes,
                b_nodes,
            ) {
                return true;
            }
            used[bi] = false;
            assignment[ai] = usize::MAX;
        }
        false
    }

    search(
        0,
        &order,
        &mut assignment,
        &mut used,
        &a_sigs,
        &b_sigs,
        a,
        b,
        &a_nodes,
        &b_nodes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(ids: &[i64]) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let user = g.sym("User");
        let k = g.sym("id");
        let t = g.sym("KNOWS");
        let mut prev = None;
        for &i in ids {
            let n = g.create_node([user], [(k, Value::Int(i))]);
            if let Some(p) = prev {
                g.create_rel(p, t, n, []).unwrap();
            }
            prev = Some(n);
        }
        g
    }

    #[test]
    fn identical_graphs_are_isomorphic() {
        let a = chain(&[1, 2, 3]);
        let b = chain(&[1, 2, 3]);
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn id_renaming_is_ignored() {
        let a = chain(&[1, 2, 3]);
        let mut b = PropertyGraph::new();
        // Build the same chain but create nodes in a different order so the
        // internal ids differ.
        let user = b.sym("User");
        let k = b.sym("id");
        let t = b.sym("KNOWS");
        let n3 = b.create_node([user], [(k, Value::Int(3))]);
        let n1 = b.create_node([user], [(k, Value::Int(1))]);
        let n2 = b.create_node([user], [(k, Value::Int(2))]);
        b.create_rel(n1, t, n2, []).unwrap();
        b.create_rel(n2, t, n3, []).unwrap();
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn direction_matters() {
        let mut a = PropertyGraph::new();
        let t = a.sym("T");
        let x = a.create_node([], []);
        let y = a.create_node([], []);
        a.create_rel(x, t, y, []).unwrap();

        let mut b = PropertyGraph::new();
        let t2 = b.sym("T");
        let x2 = b.create_node([], []);
        let y2 = b.create_node([], []);
        b.create_rel(y2, t2, x2, []).unwrap();
        // Two unlabeled property-less nodes and one edge: direction flip is
        // still isomorphic (swap the nodes).
        assert!(isomorphic(&a, &b));

        // Pin the nodes with distinct properties; now direction flips are
        // distinguishable.
        let k = a.sym("id");
        a.set_prop(x.into(), k, Value::Int(1)).unwrap();
        a.set_prop(y.into(), k, Value::Int(2)).unwrap();
        let k2 = b.sym("id");
        b.set_prop(x2.into(), k2, Value::Int(1)).unwrap();
        b.set_prop(y2.into(), k2, Value::Int(2)).unwrap();
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn multiplicity_matters() {
        let mut a = PropertyGraph::new();
        let t = a.sym("TO");
        let x = a.create_node([], []);
        let y = a.create_node([], []);
        a.create_rel(x, t, y, []).unwrap();
        a.create_rel(x, t, y, []).unwrap();

        let mut b = a.clone();
        let extra = b.rel_ids().next().unwrap();
        b.delete_rel(extra).unwrap();
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn property_values_matter() {
        let a = chain(&[1, 2]);
        let b = chain(&[1, 99]);
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn label_differences_matter() {
        let mut a = PropertyGraph::new();
        let l = a.sym("User");
        a.create_node([l], []);
        let mut b = PropertyGraph::new();
        let l2 = b.sym("Vendor");
        b.create_node([l2], []);
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn dangling_graphs_never_match() {
        let mut a = PropertyGraph::new();
        let t = a.sym("T");
        let x = a.create_node([], []);
        let y = a.create_node([], []);
        a.create_rel(x, t, y, []).unwrap();
        let b = a.clone();
        let mut a2 = a.clone();
        a2.delete_node(x, crate::graph::DeleteNodeMode::Force)
            .unwrap();
        assert!(!isomorphic(&a2, &b));
    }

    #[test]
    fn vocabulary_interning_order_is_irrelevant() {
        // Same logical graph, labels and keys interned in opposite orders.
        let mut a = PropertyGraph::new();
        let (a_l0, a_l1) = (a.sym("L0"), a.sym("L1"));
        let (a_k0, a_k1) = (a.sym("k0"), a.sym("k1"));
        a.create_node([a_l0, a_l1], [(a_k0, Value::Int(1)), (a_k1, Value::Int(2))]);

        let mut b = PropertyGraph::new();
        let (b_l1, b_l0) = (b.sym("L1"), b.sym("L0"));
        let (b_k1, b_k0) = (b.sym("k1"), b.sym("k0"));
        b.create_node([b_l0, b_l1], [(b_k0, Value::Int(1)), (b_k1, Value::Int(2))]);

        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn symmetric_structure_with_automorphisms() {
        // A 4-cycle of identical nodes has many automorphisms; isomorphism
        // must still be found.
        fn cycle() -> PropertyGraph {
            let mut g = PropertyGraph::new();
            let t = g.sym("E");
            let ns: Vec<_> = (0..4).map(|_| g.create_node([], [])).collect();
            for i in 0..4 {
                g.create_rel(ns[i], t, ns[(i + 1) % 4], []).unwrap();
            }
            g
        }
        assert!(isomorphic(&cycle(), &cycle()));
    }
}
