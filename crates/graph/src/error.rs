//! Error types for graph store operations.

use std::fmt;

use crate::ids::{EntityRef, NodeId, RelId};

/// Errors raised by [`crate::PropertyGraph`] mutations and integrity checks.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphError {
    /// A node id did not resolve to a live node.
    NodeNotFound(NodeId),
    /// A relationship id did not resolve to a live relationship.
    RelNotFound(RelId),
    /// Strict deletion of a node that still has relationships attached
    /// (the paper's §3 example: `DELETE p` fails while `p4` still has an
    /// `:ORDERED` relationship).
    NodeStillHasRelationships { node: NodeId, attached: usize },
    /// A relationship creation named an endpoint that does not exist.
    EndpointMissing { endpoint: NodeId },
    /// The graph contains dangling relationships — relationships whose
    /// source or target node has been deleted. A legal property graph may
    /// "never have dangling relationships" (§2), so this is a commit-time
    /// failure for the legacy engine.
    DanglingRelationships(Vec<RelId>),
    /// An attempt to store a non-storable value (map, node, relationship,
    /// path, or a list containing one) as a property.
    InvalidPropertyValue { entity: EntityRef, key: String },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeNotFound(n) => write!(f, "node {n} not found"),
            GraphError::RelNotFound(r) => write!(f, "relationship {r} not found"),
            GraphError::NodeStillHasRelationships { node, attached } => write!(
                f,
                "cannot delete node {node}: {attached} relationship(s) still attached \
                 (use DETACH DELETE)"
            ),
            GraphError::EndpointMissing { endpoint } => {
                write!(f, "relationship endpoint {endpoint} does not exist")
            }
            GraphError::DanglingRelationships(rels) => {
                write!(f, "graph has {} dangling relationship(s): ", rels.len())?;
                for (i, r) in rels.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                Ok(())
            }
            GraphError::InvalidPropertyValue { entity, key } => {
                write!(f, "value not storable as property {key} of {entity}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenience alias.
pub type Result<T, E = GraphError> = std::result::Result<T, E>;
