//! Write-epoch snapshot publication.
//!
//! The paper's statement-atomicity guarantee (§4.2/§8: a statement maps one
//! legal graph to another, with no observable intermediate state) gives a
//! natural unit for multi-session isolation: a *snapshot* taken at a
//! statement boundary is always a legal graph. [`EpochSnapshots`] tracks a
//! monotonically increasing **write epoch** — bumped by whoever owns the
//! mutable graph, once per committed batch of statements — and caches at
//! most one published [`Arc<PropertyGraph>`] clone per epoch.
//!
//! The intended protocol (used by the `cypher-server` apply queue):
//!
//! 1. the single writer applies statements, then calls [`bump`] — an
//!    `O(1)` atomic increment that invalidates the cached snapshot;
//! 2. a reader calls [`cached`]; a hit is a cheap `Arc` clone and involves
//!    no synchronization with the writer at all;
//! 3. on a miss the reader asks the writer (through its queue) to
//!    [`publish`] at the next statement boundary — the only place a full
//!    graph clone happens, at most **once per epoch** no matter how many
//!    readers arrive.
//!
//! Readers therefore never block the writer while *executing* a query (they
//! hold their own `Arc`), and the writer never waits for readers: epoch
//! bumps and cache invalidation are wait-free.
//!
//! [`bump`]: EpochSnapshots::bump
//! [`cached`]: EpochSnapshots::cached
//! [`publish`]: EpochSnapshots::publish

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::graph::PropertyGraph;

/// Epoch counter plus the (at most one) snapshot published for the current
/// epoch. Cheap to share: readers touch the atomic and a short critical
/// section around an `Option<Arc>`.
#[derive(Debug, Default)]
pub struct EpochSnapshots {
    /// The current write epoch. Even a freshly created cell starts at 0
    /// with nothing published, so `cached()` is `None` until the first
    /// `publish`.
    epoch: AtomicU64,
    /// Snapshot published for `epoch`, if any. The tag detects the race
    /// where a publish from epoch `e` lands after a bump to `e + 1`.
    published: Mutex<Option<(u64, Arc<PropertyGraph>)>>,
}

impl EpochSnapshots {
    pub fn new() -> Self {
        Self::default()
    }

    /// The current write epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Record that the graph changed: advance the epoch and drop the cached
    /// snapshot. Called by the writer at a statement (or commit-batch)
    /// boundary. Returns the new epoch.
    pub fn bump(&self) -> u64 {
        let next = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        *self.lock() = None;
        next
    }

    /// The snapshot published for the *current* epoch, if one exists.
    /// A stale snapshot (published before the last [`bump`](Self::bump))
    /// is never returned.
    pub fn cached(&self) -> Option<Arc<PropertyGraph>> {
        let guard = self.lock();
        match &*guard {
            Some((e, snap)) if *e == self.epoch() => Some(Arc::clone(snap)),
            _ => None,
        }
    }

    /// Publish a snapshot of `graph` for the current epoch and return it.
    /// Must be called with the graph at a statement boundary (the caller is
    /// the graph's owner, so it is the only one who can know). The clone is
    /// skipped when a snapshot for this epoch is already cached.
    pub fn publish(&self, graph: &PropertyGraph) -> Arc<PropertyGraph> {
        let epoch = self.epoch();
        let mut guard = self.lock();
        if let Some((e, snap)) = &*guard {
            if *e == epoch {
                return Arc::clone(snap);
            }
        }
        // Snapshots must not inherit delta-capture state: the clone is a
        // read-only view, and keeping capture on would make it accumulate
        // a phantom delta if anyone ever cloned-and-mutated it.
        let mut clone = graph.clone();
        clone.disable_delta_capture();
        let snap = Arc::new(clone);
        *guard = Some((epoch, Arc::clone(&snap)));
        snap
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Option<(u64, Arc<PropertyGraph>)>> {
        // A poisoned publish cache only ever holds a complete value or
        // `None`; recovering the data is always safe.
        self.published
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cell_has_no_snapshot() {
        let s = EpochSnapshots::new();
        assert_eq!(s.epoch(), 0);
        assert!(s.cached().is_none());
    }

    #[test]
    fn publish_caches_one_clone_per_epoch() {
        let s = EpochSnapshots::new();
        let mut g = PropertyGraph::new();
        g.create_node([], []);
        let a = s.publish(&g);
        let b = s.publish(&g);
        assert!(Arc::ptr_eq(&a, &b), "second publish reuses the cache");
        assert_eq!(s.cached().map(|c| c.node_count()), Some(1));
    }

    #[test]
    fn bump_invalidates_the_cache() {
        let s = EpochSnapshots::new();
        let mut g = PropertyGraph::new();
        let old = s.publish(&g);
        assert_eq!(s.bump(), 1);
        assert!(s.cached().is_none(), "stale snapshot never served");
        g.create_node([], []);
        let new = s.publish(&g);
        assert!(!Arc::ptr_eq(&old, &new));
        assert_eq!(new.node_count(), 1);
        assert_eq!(old.node_count(), 0, "readers keep their old view");
    }

    #[test]
    fn published_snapshot_has_delta_capture_off() {
        let s = EpochSnapshots::new();
        let mut g = PropertyGraph::new();
        g.enable_delta_capture();
        let snap = s.publish(&g);
        assert!(!snap.delta_capture_enabled());
        assert!(g.delta_capture_enabled(), "source graph untouched");
    }

    #[test]
    fn epochs_are_monotonic_across_threads() {
        let s = Arc::new(EpochSnapshots::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    s.bump();
                }
            }));
        }
        for h in handles {
            h.join().expect("bumper thread panicked");
        }
        assert_eq!(s.epoch(), 400);
    }
}
