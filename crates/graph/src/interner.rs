//! String interning for labels, relationship types and property keys.
//!
//! A property graph mentions the same small set of strings (`:Product`,
//! `:ORDERED`, `id`, `name`, …) millions of times. Interning turns every
//! occurrence into a 4-byte [`Symbol`], which makes label sets, property maps
//! and the collapsibility checks of `MERGE SAME` (Defs. 1–2 in the paper)
//! cheap set/map comparisons over integers.
//!
//! Labels, types and keys live in separate namespaces in Cypher, but nothing
//! is gained by separating the tables: a symbol only ever flows into the slot
//! it was created for, so one shared table is used.

use std::collections::HashMap;
use std::fmt;

/// An interned string. Cheap to copy, compare and hash.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; the store guarantees all symbols in one graph come from its own
/// interner.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Raw index into the interner's table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Append-only string interner.
///
/// Interned strings are never freed; graphs are long-lived and vocabulary
/// is small, so this is the right trade-off.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    lookup: HashMap<Box<str>, Symbol>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let Ok(idx) = u32::try_from(self.strings.len()) else {
            panic!("interner overflow: more than u32::MAX interned strings");
        };
        let sym = Symbol(idx);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, sym);
        sym
    }

    /// Look up a symbol for `s` without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.lookup.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// All interned strings in symbol order: the `i`-th item is the string
    /// of the symbol with [`Symbol::index`] `i`. Re-interning them in this
    /// order into a fresh interner reproduces identical symbols, which is
    /// how snapshots keep raw symbol ids valid across a restart.
    pub fn strings(&self) -> impl Iterator<Item = &str> {
        self.strings.iter().map(|s| &**s)
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Product");
        let b = i.intern("Product");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("User");
        let b = i.intern("Vendor");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "User");
        assert_eq!(i.resolve(b), "Vendor");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("ORDERED"), None);
        let s = i.intern("ORDERED");
        assert_eq!(i.get("ORDERED"), Some(s));
    }

    #[test]
    fn empty_string_is_internable() {
        let mut i = Interner::new();
        let s = i.intern("");
        assert_eq!(i.resolve(s), "");
    }

    #[test]
    fn case_sensitive() {
        let mut i = Interner::new();
        assert_ne!(i.intern("product"), i.intern("Product"));
    }
}
