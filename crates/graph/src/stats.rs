//! Graph summaries for experiment reporting.
//!
//! The paper's figures are compared by *shape*: node count, relationship
//! count, and label/type histograms. [`GraphSummary`] captures exactly that
//! and is what EXPERIMENTS.md records as "measured".

use std::collections::BTreeMap;
use std::fmt;

use crate::graph::PropertyGraph;

/// Live cardinality statistics, read off the store's incrementally
/// maintained counters in O(labels + types + indexes) — no graph scan.
/// This is what the planner consults and what the shell's `:stats` prints.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct CardinalityStats {
    pub nodes: usize,
    pub rels: usize,
    /// Live nodes per label (zero counts omitted).
    pub labels: BTreeMap<String, usize>,
    /// Live relationships per type.
    pub rel_types: BTreeMap<String, usize>,
    /// Per-index: (label, key, postings, distinct values, hits, misses).
    pub indexes: Vec<(String, String, usize, usize, u64, u64)>,
}

impl CardinalityStats {
    pub fn of(graph: &PropertyGraph) -> Self {
        CardinalityStats {
            nodes: graph.node_count(),
            rels: graph.rel_count(),
            labels: graph
                .label_counts()
                .map(|(l, c)| (graph.sym_str(l).to_owned(), c))
                .collect(),
            rel_types: graph
                .rel_type_counts()
                .map(|(t, c)| (graph.sym_str(t).to_owned(), c))
                .collect(),
            indexes: graph
                .index_stats()
                .into_iter()
                .map(|s| {
                    (
                        graph.sym_str(s.label).to_owned(),
                        graph.sym_str(s.key).to_owned(),
                        s.entries,
                        s.distinct,
                        s.hits,
                        s.misses,
                    )
                })
                .collect(),
        }
    }
}

impl fmt::Display for CardinalityStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} nodes, {} rels", self.nodes, self.rels)?;
        for (l, c) in &self.labels {
            writeln!(f, "  label :{l} × {c}")?;
        }
        for (t, c) in &self.rel_types {
            writeln!(f, "  type :{t} × {c}")?;
        }
        if self.indexes.is_empty() {
            write!(f, "  no indexes")?;
        } else {
            for (i, (l, k, entries, distinct, hits, misses)) in self.indexes.iter().enumerate() {
                if i > 0 {
                    writeln!(f)?;
                }
                write!(
                    f,
                    "  index :{l}({k}): {entries} entries, {distinct} distinct, \
                     {hits} hits, {misses} misses"
                )?;
            }
        }
        Ok(())
    }
}

/// Shape summary of a property graph.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct GraphSummary {
    pub nodes: usize,
    pub rels: usize,
    /// Count of nodes per label (a node with two labels counts in both).
    pub labels: BTreeMap<String, usize>,
    /// Count of relationships per type.
    pub types: BTreeMap<String, usize>,
    /// Relationships whose endpoint(s) have been deleted.
    pub dangling: usize,
}

impl GraphSummary {
    /// Summarize a graph.
    pub fn of(graph: &PropertyGraph) -> Self {
        let mut labels: BTreeMap<String, usize> = BTreeMap::new();
        for n in graph.node_ids() {
            for l in graph.labels(n) {
                *labels.entry(graph.sym_str(l).to_owned()).or_default() += 1;
            }
        }
        let mut types: BTreeMap<String, usize> = BTreeMap::new();
        for r in graph.rel_ids() {
            let Some(data) = graph.rel(r) else { continue };
            *types
                .entry(graph.sym_str(data.rel_type).to_owned())
                .or_default() += 1;
        }
        GraphSummary {
            nodes: graph.node_count(),
            rels: graph.rel_count(),
            labels,
            types,
            dangling: graph.dangling_rels().len(),
        }
    }
}

impl fmt::Display for GraphSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} nodes, {} rels", self.nodes, self.rels)?;
        if !self.labels.is_empty() {
            write!(f, "; labels: ")?;
            for (i, (l, c)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, ":{l}×{c}")?;
            }
        }
        if !self.types.is_empty() {
            write!(f, "; types: ")?;
            for (i, (t, c)) in self.types.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, ":{t}×{c}")?;
            }
        }
        if self.dangling > 0 {
            write!(f, "; {} DANGLING", self.dangling)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn summary_counts_labels_and_types() {
        let mut g = PropertyGraph::new();
        let user = g.sym("User");
        let product = g.sym("Product");
        let ordered = g.sym("ORDERED");
        let k = g.sym("id");
        let u = g.create_node([user], [(k, Value::Int(1))]);
        let p = g.create_node([product], []);
        let q = g.create_node([product], []);
        g.create_rel(u, ordered, p, []).unwrap();
        g.create_rel(u, ordered, q, []).unwrap();
        let s = GraphSummary::of(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.rels, 2);
        assert_eq!(s.labels["User"], 1);
        assert_eq!(s.labels["Product"], 2);
        assert_eq!(s.types["ORDERED"], 2);
        assert_eq!(s.dangling, 0);
        assert_eq!(
            s.to_string(),
            "3 nodes, 2 rels; labels: :Product×2, :User×1; types: :ORDERED×2"
        );
    }

    #[test]
    fn summary_multi_label_node_counts_in_each() {
        let mut g = PropertyGraph::new();
        let a = g.sym("A");
        let b = g.sym("B");
        g.create_node([a, b], []);
        let s = GraphSummary::of(&g);
        assert_eq!(s.labels["A"], 1);
        assert_eq!(s.labels["B"], 1);
    }
}
