//! Property-index behaviour: backfill, maintenance across every mutation,
//! and consistency through rollback.

use cypher_graph::{DeleteNodeMode, NodeId, PropertyGraph, Value};

fn setup() -> (PropertyGraph, Vec<NodeId>) {
    let mut g = PropertyGraph::new();
    let user = g.sym("User");
    let id_k = g.sym("id");
    let nodes: Vec<NodeId> = (0..5)
        .map(|i| g.create_node([user], [(id_k, Value::Int(i % 3))]))
        .collect();
    (g, nodes)
}

#[test]
fn backfill_on_create_index() {
    let (mut g, nodes) = setup();
    let user = g.sym("User");
    let id_k = g.sym("id");
    assert!(g.create_index(user, id_k));
    assert!(!g.create_index(user, id_k), "second creation is a no-op");
    assert!(g.has_index(user, id_k));
    assert_eq!(
        g.index_lookup(user, id_k, &Value::Int(0)).unwrap(),
        vec![nodes[0], nodes[3]]
    );
    assert_eq!(
        g.index_lookup(user, id_k, &Value::Int(9)).unwrap(),
        Vec::<NodeId>::new()
    );
    let nope = g.sym("nope");
    assert_eq!(g.index_lookup(user, nope, &Value::Int(0)), None);
}

#[test]
fn index_tracks_creations_and_deletions() {
    let (mut g, nodes) = setup();
    let user = g.sym("User");
    let id_k = g.sym("id");
    g.create_index(user, id_k);
    let extra = g.create_node([user], [(id_k, Value::Int(0))]);
    assert_eq!(
        g.index_lookup(user, id_k, &Value::Int(0)).unwrap(),
        vec![nodes[0], nodes[3], extra]
    );
    g.delete_node(nodes[0], DeleteNodeMode::Strict).unwrap();
    assert_eq!(
        g.index_lookup(user, id_k, &Value::Int(0)).unwrap(),
        vec![nodes[3], extra]
    );
}

#[test]
fn index_tracks_property_updates() {
    let (mut g, nodes) = setup();
    let user = g.sym("User");
    let id_k = g.sym("id");
    g.create_index(user, id_k);
    g.set_prop(nodes[0].into(), id_k, Value::Int(99)).unwrap();
    assert_eq!(
        g.index_lookup(user, id_k, &Value::Int(0)).unwrap(),
        vec![nodes[3]]
    );
    assert_eq!(
        g.index_lookup(user, id_k, &Value::Int(99)).unwrap(),
        vec![nodes[0]]
    );
    // Removing the property removes the entry.
    g.set_prop(nodes[0].into(), id_k, Value::Null).unwrap();
    assert!(g
        .index_lookup(user, id_k, &Value::Int(99))
        .unwrap()
        .is_empty());
}

#[test]
fn index_tracks_label_changes() {
    let (mut g, nodes) = setup();
    let user = g.sym("User");
    let vip = g.sym("Vip");
    let id_k = g.sym("id");
    g.create_index(vip, id_k);
    assert!(g
        .index_lookup(vip, id_k, &Value::Int(0))
        .unwrap()
        .is_empty());
    g.add_label(nodes[0], vip).unwrap();
    assert_eq!(
        g.index_lookup(vip, id_k, &Value::Int(0)).unwrap(),
        vec![nodes[0]]
    );
    g.remove_label(nodes[0], vip).unwrap();
    assert!(g
        .index_lookup(vip, id_k, &Value::Int(0))
        .unwrap()
        .is_empty());
    let _ = user;
}

#[test]
fn index_consistent_after_rollback() {
    let (mut g, nodes) = setup();
    let user = g.sym("User");
    let id_k = g.sym("id");
    g.create_index(user, id_k);
    let before = g.index_lookup(user, id_k, &Value::Int(0)).unwrap();

    let sp = g.savepoint();
    g.set_prop(nodes[0].into(), id_k, Value::Int(77)).unwrap();
    g.create_node([user], [(id_k, Value::Int(0))]);
    g.delete_node(nodes[3], DeleteNodeMode::Strict).unwrap();
    g.remove_label(nodes[0], user).unwrap();
    g.rollback_to(sp);

    assert_eq!(g.index_lookup(user, id_k, &Value::Int(0)).unwrap(), before);
    assert!(g
        .index_lookup(user, id_k, &Value::Int(77))
        .unwrap()
        .is_empty());
}

#[test]
fn numeric_equivalence_in_index_keys() {
    // 1 and 1.0 share an index slot, matching `=` semantics.
    let mut g = PropertyGraph::new();
    let l = g.sym("N");
    let k = g.sym("v");
    let a = g.create_node([l], [(k, Value::Int(1))]);
    let b = g.create_node([l], [(k, Value::Float(1.0))]);
    g.create_index(l, k);
    assert_eq!(g.index_lookup(l, k, &Value::Int(1)).unwrap(), vec![a, b]);
    assert_eq!(
        g.index_lookup(l, k, &Value::Float(1.0)).unwrap(),
        vec![a, b]
    );
}

#[test]
fn null_probe_never_matches() {
    let (mut g, _) = setup();
    let user = g.sym("User");
    let id_k = g.sym("id");
    g.create_index(user, id_k);
    assert!(g.index_lookup(user, id_k, &Value::Null).unwrap().is_empty());
}

#[test]
fn drop_index() {
    let (mut g, _) = setup();
    let user = g.sym("User");
    let id_k = g.sym("id");
    g.create_index(user, id_k);
    assert_eq!(g.index_list(), vec![(user, id_k)]);
    assert!(g.drop_index(user, id_k));
    assert!(!g.drop_index(user, id_k));
    assert_eq!(g.index_lookup(user, id_k, &Value::Int(0)), None);
}

#[test]
fn multi_label_node_is_indexed_under_each_label() {
    let mut g = PropertyGraph::new();
    let a = g.sym("A");
    let b = g.sym("B");
    let k = g.sym("id");
    g.create_index(a, k);
    g.create_index(b, k);
    let n = g.create_node([a, b], [(k, Value::Int(7))]);
    assert_eq!(g.index_lookup(a, k, &Value::Int(7)).unwrap(), vec![n]);
    assert_eq!(g.index_lookup(b, k, &Value::Int(7)).unwrap(), vec![n]);
    g.delete_node(n, DeleteNodeMode::Strict).unwrap();
    assert!(g.index_lookup(a, k, &Value::Int(7)).unwrap().is_empty());
    assert!(g.index_lookup(b, k, &Value::Int(7)).unwrap().is_empty());
}
