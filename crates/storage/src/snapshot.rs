//! Full-graph snapshots.
//!
//! A snapshot is a complete, self-contained serialization of a
//! [`PropertyGraph`] at a statement boundary:
//!
//! ```text
//! [8-byte magic "CYSNAPv1"]
//! [u32 body_crc]                  CRC-32 of everything after this field
//! body:
//!   u64 covered_txid              highest WAL txid folded into this snapshot
//!   symbol table                  u32 count + strings, in symbol-id order
//!   u64 next_node, u64 next_rel   id allocator positions
//!   tombstones                    u64 count + node ids; u64 count + rel ids
//!   index schemas                 u32 count + (label sym, key sym) pairs
//!   nodes                         u64 count + (id, labels, props), id order
//!   rels                          u64 count + (id, src, tgt, type, props), id order
//! ```
//!
//! Symbols inside the body are raw `u32` table indexes — valid because the
//! loader re-interns the symbol table *in order* into the fresh graph,
//! reproducing identical ids. Relationships are written (and restored) in
//! ascending id order, which reproduces the canonical adjacency-list order
//! of a committed graph.
//!
//! Snapshots are written atomically: serialize to `<path>.tmp`, fsync,
//! rename over `<path>`, fsync the directory. A crash mid-write leaves the
//! previous snapshot untouched; a crash mid-rename is resolved by POSIX
//! rename atomicity.

use std::io;
use std::path::Path;

use cypher_graph::{NodeData, NodeId, PropertyGraph, RelData, RelId, Symbol};

use crate::crc::crc32;
use crate::fs::StorageFs;
use crate::record::{arr, put_u32, put_u64, Reader};

pub const MAGIC: &[u8; 8] = b"CYSNAPv1";

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn encode_body(g: &PropertyGraph, covered_txid: u64) -> io::Result<Vec<u8>> {
    let mut b = Vec::with_capacity(4096);
    put_u64(&mut b, covered_txid);

    let interner = g.interner();
    put_u32(&mut b, interner.len() as u32);
    for s in interner.strings() {
        put_u32(&mut b, s.len() as u32);
        b.extend_from_slice(s.as_bytes());
    }

    let (next_node, next_rel) = g.next_ids();
    put_u64(&mut b, next_node);
    put_u64(&mut b, next_rel);

    let tomb_nodes: Vec<NodeId> = g.tomb_node_ids().collect();
    put_u64(&mut b, tomb_nodes.len() as u64);
    for id in tomb_nodes {
        put_u64(&mut b, id.0);
    }
    let tomb_rels: Vec<RelId> = g.tomb_rel_ids().collect();
    put_u64(&mut b, tomb_rels.len() as u64);
    for id in tomb_rels {
        put_u64(&mut b, id.0);
    }

    let indexes = g.index_list();
    put_u32(&mut b, indexes.len() as u32);
    for (label, key) in indexes {
        put_u32(&mut b, label.index() as u32);
        put_u32(&mut b, key.index() as u32);
    }

    put_u64(&mut b, g.node_count() as u64);
    for id in g.node_ids().collect::<Vec<_>>() {
        let data = g.node(id).ok_or_else(|| {
            io::Error::other(format!(
                "graph invariant broken: listed node {id:?} missing"
            ))
        })?;
        put_u64(&mut b, id.0);
        put_u32(&mut b, data.labels.len() as u32);
        for &l in &data.labels {
            put_u32(&mut b, l.index() as u32);
        }
        put_u32(&mut b, data.props.len() as u32);
        for (&k, v) in &data.props {
            put_u32(&mut b, k.index() as u32);
            crate::record::encode_value(&mut b, v);
        }
    }

    put_u64(&mut b, g.rel_count() as u64);
    for id in g.rel_ids().collect::<Vec<_>>() {
        let data = g.rel(id).ok_or_else(|| {
            io::Error::other(format!("graph invariant broken: listed rel {id:?} missing"))
        })?;
        put_u64(&mut b, id.0);
        put_u64(&mut b, data.src.0);
        put_u64(&mut b, data.tgt.0);
        put_u32(&mut b, data.rel_type.index() as u32);
        put_u32(&mut b, data.props.len() as u32);
        for (&k, v) in &data.props {
            put_u32(&mut b, k.index() as u32);
            crate::record::encode_value(&mut b, v);
        }
    }
    Ok(b)
}

/// Serialize `g` into complete snapshot-file bytes (magic + CRC + body).
///
/// This is the exact byte sequence [`write`] stages to disk; replication
/// ships it over the wire as the bootstrap payload for a replica that is
/// too far behind to catch up from the retained log.
pub fn encode_bytes(g: &PropertyGraph, covered_txid: u64) -> io::Result<Vec<u8>> {
    let body = encode_body(g, covered_txid)?;
    let mut out = Vec::with_capacity(MAGIC.len() + 4 + body.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Write a snapshot of `g` to `path`, atomically. `covered_txid` is the
/// highest WAL transaction already reflected in `g`; recovery uses it to
/// skip WAL units the snapshot has absorbed (the crash window between
/// snapshot rename and WAL truncation).
///
/// The write is all-or-nothing from the reader's point of view: serialize
/// to `<path>.tmp`, fsync, rename over `<path>`, fsync the directory. On
/// any error before the rename the previous snapshot is untouched; the
/// stray temp file is removed best-effort (recovery ignores it regardless).
pub fn write(
    fs: &dyn StorageFs,
    g: &PropertyGraph,
    path: &Path,
    covered_txid: u64,
) -> io::Result<()> {
    let bytes = encode_bytes(g, covered_txid)?;
    write_bytes(fs, &bytes, path)
}

/// Stage pre-encoded snapshot bytes to `path` with the same atomic
/// tmp + fsync + rename + dir-sync sequence as [`write`]. The bytes must
/// be a complete snapshot file (e.g. from [`encode_bytes`]); a replica
/// installing a shipped bootstrap payload uses this directly.
pub fn write_bytes(fs: &dyn StorageFs, bytes: &[u8], path: &Path) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    let staged = (|| -> io::Result<()> {
        let mut f = fs.create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
        Ok(())
    })();
    if let Err(e) = staged {
        let _ = fs.remove_file(&tmp);
        return Err(e);
    }
    fs.rename(&tmp, path)?;
    // Make the rename itself durable. Best-effort: some filesystems reject
    // directory fsync, and losing it only risks the rename after a crash —
    // in which case the previous snapshot + WAL still recover.
    if let Some(dir) = path.parent() {
        let _ = fs.sync_dir(dir);
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------

/// A loaded snapshot: the reconstructed graph plus the WAL horizon it
/// covers.
#[derive(Debug)]
pub struct Loaded {
    pub graph: PropertyGraph,
    pub covered_txid: u64,
}

/// Load a snapshot file. Unlike WAL scanning, *any* damage is an error:
/// a snapshot is written atomically, so a corrupt one means real data loss
/// that must be surfaced, not silently repaired around.
pub fn load(fs: &dyn StorageFs, path: &Path) -> io::Result<Loaded> {
    let data = fs.read(path)?;
    decode_bytes(&data).map_err(|e| corrupt(format!("snapshot {}: {e}", path.display())))
}

/// Decode complete snapshot-file bytes (magic + CRC + body) into a graph.
/// Strict like [`load`]: bad magic, CRC mismatch, or trailing bytes are
/// all errors — a shipped bootstrap payload gets no more trust than a file.
pub fn decode_bytes(data: &[u8]) -> io::Result<Loaded> {
    if data.len() < MAGIC.len() + 4 || &data[..MAGIC.len()] != MAGIC {
        return Err(corrupt("not a snapshot (bad magic)"));
    }
    let crc = u32::from_le_bytes(arr(&data[MAGIC.len()..MAGIC.len() + 4]));
    let body = &data[MAGIC.len() + 4..];
    if crc32(body) != crc {
        return Err(corrupt("snapshot fails CRC"));
    }

    let mut r = Reader::new(body);
    let covered_txid = r.u64()?;

    let mut g = PropertyGraph::new();
    // Re-intern the symbol table in order; table index i becomes syms[i].
    let n_syms = r.u32()? as usize;
    let mut syms: Vec<Symbol> = Vec::with_capacity(n_syms);
    for _ in 0..n_syms {
        syms.push(g.sym(&r.str()?));
    }
    let sym = |r: &mut Reader<'_>, syms: &[Symbol]| -> io::Result<Symbol> {
        let i = r.u32()? as usize;
        syms.get(i)
            .copied()
            .ok_or_else(|| corrupt(format!("symbol index {i} out of range")))
    };

    let next_node = r.u64()?;
    let next_rel = r.u64()?;

    let n_tomb_nodes = r.u64()? as usize;
    let mut tomb_nodes = Vec::with_capacity(n_tomb_nodes.min(1 << 20));
    for _ in 0..n_tomb_nodes {
        tomb_nodes.push(NodeId(r.u64()?));
    }
    let n_tomb_rels = r.u64()? as usize;
    let mut tomb_rels = Vec::with_capacity(n_tomb_rels.min(1 << 20));
    for _ in 0..n_tomb_rels {
        tomb_rels.push(RelId(r.u64()?));
    }
    g.restore_tombstones(tomb_nodes, tomb_rels);

    // Indexes are created empty *before* nodes are restored; restore_node
    // back-fills them entry by entry.
    let n_indexes = r.u32()? as usize;
    for _ in 0..n_indexes {
        let label = sym(&mut r, &syms)?;
        let key = sym(&mut r, &syms)?;
        g.create_index(label, key);
    }

    let n_nodes = r.u64()? as usize;
    for _ in 0..n_nodes {
        let id = NodeId(r.u64()?);
        let n_labels = r.u32()? as usize;
        let mut data = NodeData::default();
        for _ in 0..n_labels {
            data.labels.insert(sym(&mut r, &syms)?);
        }
        let n_props = r.u32()? as usize;
        for _ in 0..n_props {
            let k = sym(&mut r, &syms)?;
            data.props.insert(k, r.value()?);
        }
        g.restore_node(id, data);
    }

    let n_rels = r.u64()? as usize;
    for _ in 0..n_rels {
        let id = RelId(r.u64()?);
        let src = NodeId(r.u64()?);
        let tgt = NodeId(r.u64()?);
        let rel_type = sym(&mut r, &syms)?;
        let n_props = r.u32()? as usize;
        let mut props = cypher_graph::PropertyMap::new();
        for _ in 0..n_props {
            let k = sym(&mut r, &syms)?;
            props.insert(k, r.value()?);
        }
        g.restore_rel(
            id,
            RelData {
                src,
                tgt,
                rel_type,
                props,
            },
        )
        .map_err(|e| corrupt(format!("snapshot relationship {id:?}: {e}")))?;
    }

    if !r.is_empty() {
        return Err(corrupt("trailing bytes after snapshot body"));
    }
    g.restore_next_ids(next_node, next_rel);
    Ok(Loaded {
        graph: g,
        covered_txid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::RealFs;
    use cypher_graph::{isomorphic, DeleteNodeMode, Value};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cypher-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let user = g.sym("User");
        let product = g.sym("Product");
        let ordered = g.sym("ORDERED");
        let id_k = g.sym("id");
        let name_k = g.sym("name");
        g.create_index(user, id_k);
        let u = g.create_node(
            [user],
            [(id_k, Value::Int(89)), (name_k, Value::str("Bob"))],
        );
        let p = g.create_node([product], [(id_k, Value::Int(125))]);
        g.create_rel(u, ordered, p, [(id_k, Value::Int(1))])
            .unwrap();
        g.create_rel(u, ordered, p, []).unwrap(); // parallel edge
        g.create_rel(u, ordered, u, []).unwrap(); // self-loop
                                                  // Leave a tombstone behind.
        let dead = g.create_node([], []);
        g.delete_node(dead, DeleteNodeMode::Strict).unwrap();
        g
    }

    #[test]
    fn round_trip_preserves_everything() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("snapshot.bin");
        let g = sample_graph();
        write(&RealFs, &g, &path, 42).unwrap();
        let loaded = load(&RealFs, &path).unwrap();
        assert_eq!(loaded.covered_txid, 42);
        let h = loaded.graph;
        assert!(isomorphic(&g, &h));
        // Stronger than isomorphism: ids, allocators, tombstones, indexes.
        assert_eq!(
            g.node_ids().collect::<Vec<_>>(),
            h.node_ids().collect::<Vec<_>>()
        );
        assert_eq!(
            g.rel_ids().collect::<Vec<_>>(),
            h.rel_ids().collect::<Vec<_>>()
        );
        assert_eq!(g.next_ids(), h.next_ids());
        assert_eq!(
            g.tomb_node_ids().collect::<Vec<_>>(),
            h.tomb_node_ids().collect::<Vec<_>>()
        );
        let user = h.try_sym("User").unwrap();
        let id_k = h.try_sym("id").unwrap();
        assert!(h.has_index(user, id_k));
        assert_eq!(
            h.index_lookup(user, id_k, &Value::Int(89)).unwrap().len(),
            1
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn adjacency_order_is_canonical_after_load() {
        let dir = tmpdir("adjacency");
        let path = dir.join("snapshot.bin");
        let g = sample_graph();
        write(&RealFs, &g, &path, 0).unwrap();
        let h = load(&RealFs, &path).unwrap().graph;
        for n in g.node_ids() {
            assert_eq!(
                g.rels_of(n, cypher_graph::Direction::Outgoing),
                h.rels_of(n, cypher_graph::Direction::Outgoing),
                "outgoing adjacency of {n:?}"
            );
            assert_eq!(
                g.rels_of(n, cypher_graph::Direction::Incoming),
                h.rels_of(n, cypher_graph::Direction::Incoming),
                "incoming adjacency of {n:?}"
            );
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_an_error() {
        let dir = tmpdir("corrupt");
        let path = dir.join("snapshot.bin");
        write(&RealFs, &sample_graph(), &path, 0).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(
            load(&RealFs, &path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn empty_graph_round_trips() {
        let dir = tmpdir("empty");
        let path = dir.join("snapshot.bin");
        let g = PropertyGraph::new();
        write(&RealFs, &g, &path, 0).unwrap();
        let h = load(&RealFs, &path).unwrap().graph;
        assert_eq!(h.node_count(), 0);
        assert_eq!(h.rel_count(), 0);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
