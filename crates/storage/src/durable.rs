//! [`DurableGraph`] — a property graph with crash-safe persistence.
//!
//! ## Commit → fsync ordering contract
//!
//! In-memory statement atomicity is owned by the engine/transaction layer:
//! a failing statement rolls back before [`DurableGraph::apply`] sees the
//! error, so its mutations never reach the log. What `apply` adds is the
//! durability boundary: after the closure succeeds, the net mutation delta
//! is framed as one `Begin…Commit` unit, appended to the WAL with a single
//! write, and **fsynced before `apply` returns**. A result observed by the
//! caller therefore survives any later crash; a crash before the fsync
//! completes loses at most the in-flight unit, never a prefix of it (the
//! recovery scan discards units without their `Commit` frame).
//!
//! If the WAL append itself fails mid-way (disk full, I/O error), memory is
//! ahead of the log and the two can no longer be reconciled; the handle
//! **poisons** itself and refuses further writes rather than risk silently
//! diverging state.

use std::io;
use std::path::{Path, PathBuf};

use cypher_graph::PropertyGraph;

use crate::record::Record;
use crate::recover::{recover, SNAPSHOT_FILE, WAL_FILE};
use crate::wal::Wal;

/// A [`PropertyGraph`] bound to a storage directory (`snapshot.bin` +
/// `wal.bin`), with write-ahead logging of every committed mutation.
#[derive(Debug)]
pub struct DurableGraph {
    dir: PathBuf,
    graph: PropertyGraph,
    wal: Wal,
    next_txid: u64,
    poisoned: bool,
}

impl DurableGraph {
    /// Open (or create) a storage directory, recovering the last committed
    /// state: load the snapshot, replay committed WAL units, truncate any
    /// torn tail, and enable delta capture for future mutations.
    pub fn open(dir: &Path) -> io::Result<DurableGraph> {
        std::fs::create_dir_all(dir)?;
        let rec = recover(dir)?;
        let wal_path = dir.join(WAL_FILE);
        let wal = match rec.wal_committed_len {
            Some(committed) => Wal::open_append(&wal_path, committed)?,
            None => Wal::create(&wal_path)?,
        };
        let mut graph = rec.graph;
        graph.enable_delta_capture();
        Ok(DurableGraph {
            dir: dir.to_owned(),
            graph,
            wal,
            next_txid: rec.last_txid + 1,
            poisoned: false,
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Read-only view of the graph.
    pub fn graph(&self) -> &PropertyGraph {
        &self.graph
    }

    /// Number of committed units this handle has appended (diagnostics).
    pub fn next_txid(&self) -> u64 {
        self.next_txid
    }

    /// Run a mutation (typically one engine statement) against the graph
    /// and make its effects durable.
    ///
    /// The closure must leave the graph at a statement boundary — every
    /// engine entry point does: it either commits its transaction or rolls
    /// it back. Whatever net delta remains afterwards (empty when the
    /// statement failed and rolled back) is appended to the WAL as one
    /// commit unit and fsynced. The outer `Result` is the storage layer's;
    /// the inner one is the closure's own outcome, returned verbatim.
    pub fn apply<T, E>(
        &mut self,
        f: impl FnOnce(&mut PropertyGraph) -> Result<T, E>,
    ) -> io::Result<Result<T, E>> {
        self.check_poisoned()?;
        debug_assert_eq!(
            self.graph.journal_len(),
            0,
            "apply must start at a statement boundary"
        );
        let out = f(&mut self.graph);
        if self.graph.journal_len() != 0 {
            // The closure left an open transaction; durability cannot be
            // defined for half a statement.
            self.poisoned = true;
            return Err(io::Error::other("closure left an uncommitted transaction"));
        }
        if !self.graph.delta().is_empty() {
            let records: Vec<Record> = self
                .graph
                .delta()
                .iter()
                .map(|op| Record::from_delta(op, &self.graph))
                .collect();
            let txid = self.next_txid;
            if let Err(e) = self.wal.append_commit_unit(txid, &records) {
                self.poisoned = true;
                return Err(e);
            }
            self.next_txid += 1;
            self.graph.clear_delta();
        }
        Ok(out)
    }

    /// Write a full snapshot and truncate the WAL.
    ///
    /// Ordering makes this crash-safe at every point: the snapshot is
    /// written atomically (temp file + rename) and records the txid horizon
    /// it covers *before* the WAL is reset; a crash in between leaves both
    /// a complete snapshot and a WAL whose units are all ≤ the horizon,
    /// which recovery skips via the txid guard.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        self.check_poisoned()?;
        let covered = self.next_txid - 1;
        crate::snapshot::write(&self.graph, &self.dir.join(SNAPSHOT_FILE), covered)?;
        self.wal.reset()?;
        Ok(())
    }

    /// Checkpoint and consume the handle, returning the in-memory graph
    /// (with delta capture switched off). The directory then holds a fresh
    /// snapshot and an empty log — the cheapest possible next `open`.
    pub fn close(mut self) -> io::Result<PropertyGraph> {
        self.checkpoint()?;
        self.graph.disable_delta_capture();
        Ok(self.graph)
    }

    fn check_poisoned(&self) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "durable graph is poisoned: a previous WAL write failed and \
                 memory may be ahead of the log; reopen to recover",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_graph::{isomorphic, DeleteNodeMode, GraphError, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cypher-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn mutations_survive_reopen() {
        let dir = tmpdir("reopen");
        let mut d = DurableGraph::open(&dir).unwrap();
        d.apply(|g| -> Result<(), GraphError> {
            let sp = g.savepoint();
            let user = g.sym("User");
            let id_k = g.sym("id");
            g.create_node([user], [(id_k, Value::Int(89))]);
            g.commit(sp);
            Ok(())
        })
        .unwrap()
        .unwrap();
        let before = d.graph().clone();
        drop(d);

        let d = DurableGraph::open(&dir).unwrap();
        assert!(isomorphic(&before, d.graph()));
        assert_eq!(d.graph().node_count(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn failed_statement_writes_nothing() {
        let dir = tmpdir("failed");
        let mut d = DurableGraph::open(&dir).unwrap();
        let wal_before = d.wal.len().unwrap();
        let result: Result<(), GraphError> = d
            .apply(|g| {
                let sp = g.savepoint();
                g.create_node([], []);
                // Statement fails: roll back like the engine would.
                g.rollback_to(sp);
                Err(GraphError::NodeNotFound(cypher_graph::NodeId(42)))
            })
            .unwrap();
        assert!(result.is_err());
        assert_eq!(d.wal.len().unwrap(), wal_before, "no unit appended");
        assert_eq!(d.graph().node_count(), 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_reopen_matches() {
        let dir = tmpdir("checkpoint");
        let mut d = DurableGraph::open(&dir).unwrap();
        for i in 0..5i64 {
            d.apply(|g| -> Result<(), GraphError> {
                let sp = g.savepoint();
                let k = g.sym("i");
                g.create_node([], [(k, Value::Int(i))]);
                g.commit(sp);
                Ok(())
            })
            .unwrap()
            .unwrap();
        }
        assert!(!d.wal.is_empty().unwrap());
        d.checkpoint().unwrap();
        assert!(d.wal.is_empty().unwrap());

        // More work after the checkpoint lands in the (fresh) WAL.
        d.apply(|g| -> Result<(), GraphError> {
            let sp = g.savepoint();
            let dead = g.create_node([], []);
            g.delete_node(dead, DeleteNodeMode::Strict).unwrap();
            g.commit(sp);
            Ok(())
        })
        .unwrap()
        .unwrap();
        let before = d.graph().clone();
        drop(d);

        let d = DurableGraph::open(&dir).unwrap();
        assert!(isomorphic(&before, d.graph()));
        assert_eq!(d.graph().next_ids(), before.next_ids());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn stale_wal_units_skipped_after_checkpoint_crash() {
        // Simulate a crash *between* snapshot rename and WAL truncation:
        // take a checkpoint, then restore the pre-checkpoint WAL bytes.
        let dir = tmpdir("staleskip");
        let mut d = DurableGraph::open(&dir).unwrap();
        d.apply(|g| -> Result<(), GraphError> {
            let sp = g.savepoint();
            g.create_node([], []);
            g.commit(sp);
            Ok(())
        })
        .unwrap()
        .unwrap();
        let wal_bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let before = d.graph().clone();
        d.checkpoint().unwrap();
        drop(d);
        std::fs::write(dir.join(WAL_FILE), &wal_bytes).unwrap();

        let d = DurableGraph::open(&dir).unwrap();
        // The unit is still in the WAL but covered by the snapshot; replaying
        // it would collide on the node id.
        assert!(isomorphic(&before, d.graph()));
        assert_eq!(d.graph().node_count(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn close_leaves_fresh_snapshot_and_empty_wal() {
        let dir = tmpdir("close");
        let mut d = DurableGraph::open(&dir).unwrap();
        d.apply(|g| -> Result<(), GraphError> {
            let sp = g.savepoint();
            g.create_node([], []);
            g.commit(sp);
            Ok(())
        })
        .unwrap()
        .unwrap();
        let before = d.graph().clone();
        d.close().unwrap();
        assert!(dir.join(SNAPSHOT_FILE).exists());

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.replayed, 0, "everything came from the snapshot");
        assert!(isomorphic(&before, &rec.graph));
        std::fs::remove_dir_all(dir).unwrap();
    }
}
