//! [`DurableGraph`] — a property graph with crash-safe persistence.
//!
//! ## Commit → fsync ordering contract
//!
//! In-memory statement atomicity is owned by the engine/transaction layer:
//! a failing statement rolls back before [`DurableGraph::apply`] sees the
//! error, so its mutations never reach the log. What `apply` adds is the
//! durability boundary: after the closure succeeds, the net mutation delta
//! is framed as one `Begin…Commit` unit, appended to the WAL with a single
//! write, and **fsynced before `apply` returns**. A result observed by the
//! caller therefore survives any later crash; a crash before the fsync
//! completes loses at most the in-flight unit, never a prefix of it (the
//! recovery scan discards units without their `Commit` frame).
//!
//! ## Seal semantics
//!
//! If the WAL append itself fails (fsync failure, short write, `ENOSPC`),
//! memory is ahead of the log and the two can no longer be reconciled by
//! appending; the handle **seals** itself read-only. A sealed handle:
//!
//! * rejects [`apply`](DurableGraph::apply) with the typed
//!   [`StorageError::Sealed`] — no silent divergence, ever;
//! * still serves reads via [`graph`](DurableGraph::graph);
//! * still accepts [`checkpoint`](DurableGraph::checkpoint) (and the
//!   bounded-retry [`checkpoint_with_retry`](DurableGraph::checkpoint_with_retry)):
//!   a snapshot captures the *current* in-memory state — including the
//!   delta the WAL refused — atomically, so a successful checkpoint
//!   re-establishes the memory-equals-disk invariant and **unseals** the
//!   handle.
//!
//! A failed *snapshot* write does not seal: nothing durable changed, the
//! previous snapshot and the WAL are intact, and the operation can simply
//! be retried. A failed WAL truncation after a successful snapshot does
//! seal — the handle's append cursor can no longer be trusted — but the
//! next checkpoint attempt (or a reopen) reconciles via the snapshot's
//! covered-txid guard.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use cypher_graph::PropertyGraph;

use crate::error::StorageError;
use crate::fs::{RealFs, StorageFs};
use crate::record::Record;
use crate::recover::{recover_with, SNAPSHOT_FILE, WAL_FILE};
use crate::wal::{SyncTicket, Wal};

/// Durable fence marker: its presence means this data directory was the
/// primary of a replication group that failed over, and must never ack
/// another write.
///
/// Contents, line-oriented UTF-8:
///
/// ```text
/// epoch=<u64>          (optional first line: the epoch the fencer rules in)
/// <new-primary addr>   (may be empty/absent when unknown)
/// ```
///
/// The original format was the bare address; readers accept both, so a
/// directory fenced by an older build still restarts fenced.
pub const FENCE_FILE: &str = "fence.bin";

/// A [`PropertyGraph`] bound to a storage directory (`snapshot.bin` +
/// `wal.bin`), with write-ahead logging of every committed mutation.
#[derive(Debug)]
pub struct DurableGraph {
    dir: PathBuf,
    graph: PropertyGraph,
    wal: Wal,
    next_txid: u64,
    fs: Arc<dyn StorageFs>,
    /// `Some(reason)` once a commit-unit failure sealed the handle.
    sealed: Option<String>,
    /// `Some(new_primary)` once a failover fenced this directory. Unlike a
    /// seal, a fence is durable (a marker file) and permanent — no
    /// checkpoint clears it.
    fenced: Option<Option<String>>,
    /// The epoch the fencer ruled in (0 when unfenced, or when fenced by a
    /// build that predates epochs). A fenced ex-primary's own epoch is by
    /// construction lower.
    fence_epoch: u64,
    /// `covered_txid` of the snapshot recovery started from.
    recovered_base: u64,
    /// `(txid, dialect, text)` statements recovered from the WAL, i.e. the
    /// still-shippable commit-log suffix since the last checkpoint.
    recovered_stmts: Vec<(u64, u8, String)>,
    /// The delta of the most recent [`apply_buffered_logged`] call, stashed
    /// just before the graph's own mirror is cleared so downstream
    /// consumers (the incremental view maintainer) can take it. Empty when
    /// the last statement was read-only or rolled back.
    last_delta: Vec<cypher_graph::DeltaOp>,
}

impl DurableGraph {
    /// Open (or create) a storage directory on the real filesystem,
    /// recovering the last committed state: load the snapshot, replay
    /// committed WAL units, truncate any torn tail, and enable delta
    /// capture for future mutations.
    pub fn open(dir: &Path) -> Result<DurableGraph, StorageError> {
        DurableGraph::open_with(RealFs::arc(), dir)
    }

    /// [`open`](DurableGraph::open) through an arbitrary [`StorageFs`] —
    /// the fault-injection entry point.
    pub fn open_with(fs: Arc<dyn StorageFs>, dir: &Path) -> Result<DurableGraph, StorageError> {
        fs.create_dir_all(dir)?;
        let (fenced, fence_epoch) = read_fence(fs.as_ref(), dir)?;
        let rec = recover_with(fs.as_ref(), dir)?;
        let wal_path = dir.join(WAL_FILE);
        let wal = match rec.wal_committed_len {
            Some(committed) => Wal::open_append(fs.as_ref(), &wal_path, committed)?,
            None => Wal::create(fs.as_ref(), &wal_path)?,
        };
        let mut graph = rec.graph;
        graph.enable_delta_capture();
        Ok(DurableGraph {
            dir: dir.to_owned(),
            graph,
            wal,
            next_txid: rec.last_txid + 1,
            fs,
            sealed: None,
            fenced,
            fence_epoch,
            recovered_base: rec.covered_txid,
            recovered_stmts: rec.statements,
            last_delta: Vec::new(),
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Read-only view of the graph. Always available, sealed or not.
    pub fn graph(&self) -> &PropertyGraph {
        &self.graph
    }

    /// Number of committed units this handle has appended (diagnostics).
    pub fn next_txid(&self) -> u64 {
        self.next_txid
    }

    /// Is the handle sealed read-only after a commit-unit failure?
    pub fn is_sealed(&self) -> bool {
        self.sealed.is_some()
    }

    /// Why the handle sealed, if it did.
    pub fn seal_reason(&self) -> Option<&str> {
        self.sealed.as_deref()
    }

    fn seal(&mut self, reason: impl Into<String>) {
        if self.sealed.is_none() {
            self.sealed = Some(reason.into());
        }
    }

    fn check_sealed(&self) -> Result<(), StorageError> {
        self.check_fenced()?;
        match &self.sealed {
            Some(reason) => Err(StorageError::Sealed {
                reason: reason.clone(),
            }),
            None => Ok(()),
        }
    }

    fn check_fenced(&self) -> Result<(), StorageError> {
        match &self.fenced {
            Some(new_primary) => Err(StorageError::Fenced {
                new_primary: new_primary.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Is the handle fenced after a failover?
    pub fn is_fenced(&self) -> bool {
        self.fenced.is_some()
    }

    /// Address of the promoted primary, when the fencer supplied one.
    pub fn fence_target(&self) -> Option<&str> {
        self.fenced.as_ref().and_then(|t| t.as_deref())
    }

    /// The epoch this directory was fenced in (0 when unfenced or fenced
    /// without one). Any primary that restarts over this directory served
    /// a strictly lower epoch.
    pub fn fence_epoch(&self) -> u64 {
        self.fence_epoch
    }

    /// Fence this data directory: refuse every future write, durably.
    /// `epoch` is the election epoch the fencer rules in (0 = unknown).
    ///
    /// The in-memory fence takes effect *before* the marker file is
    /// staged, so even if persisting the marker fails (the error is
    /// returned) this handle can no longer ack a write; only the
    /// restart-survives-fencing guarantee is weakened in that case.
    /// Idempotent; a later fence may add a `new_primary` or raise the
    /// epoch a first one lacked, but never clears either.
    pub fn fence(&mut self, new_primary: Option<&str>, epoch: u64) -> Result<(), StorageError> {
        match &mut self.fenced {
            Some(existing) => {
                if existing.is_none() {
                    *existing = new_primary.map(str::to_owned);
                }
            }
            None => self.fenced = Some(new_primary.map(str::to_owned)),
        }
        self.fence_epoch = self.fence_epoch.max(epoch);
        let target = self.fence_target().map(str::to_owned);
        let path = self.dir.join(FENCE_FILE);
        let mut f = self.fs.create(&path)?;
        let mut contents = format!("epoch={}\n", self.fence_epoch);
        contents.push_str(target.as_deref().unwrap_or(""));
        f.write_all(contents.as_bytes())?;
        f.sync_data()?;
        let _ = self.fs.sync_dir(&self.dir);
        Ok(())
    }

    /// Run a mutation (typically one engine statement) against the graph
    /// and make its effects durable.
    ///
    /// The closure must leave the graph at a statement boundary — every
    /// engine entry point does: it either commits its transaction or rolls
    /// it back. Whatever net delta remains afterwards (empty when the
    /// statement failed and rolled back) is appended to the WAL as one
    /// commit unit and fsynced. The outer `Result` is the storage layer's;
    /// the inner one is the closure's own outcome, returned verbatim.
    ///
    /// If the append fails, the handle seals (see the module docs) and the
    /// outer error reports the I/O failure; every subsequent `apply`
    /// returns [`StorageError::Sealed`] until a checkpoint reconciles.
    pub fn apply<T, E>(
        &mut self,
        f: impl FnOnce(&mut PropertyGraph) -> Result<T, E>,
    ) -> Result<Result<T, E>, StorageError> {
        let out = self.apply_buffered(f)?;
        self.flush()?;
        Ok(out)
    }

    /// [`apply`](DurableGraph::apply) without the trailing fsync — the
    /// **group-commit** fast path. The statement's commit unit is written
    /// to the WAL but sits in the un-synced window until the next
    /// successful [`flush`](DurableGraph::flush); the caller must not
    /// acknowledge the statement to anyone before that flush returns `Ok`.
    ///
    /// A server's apply queue uses this to amortize one fsync over a batch
    /// of statements: run each through `apply_buffered`, `flush` once, then
    /// acknowledge the whole batch.
    pub fn apply_buffered<T, E>(
        &mut self,
        f: impl FnOnce(&mut PropertyGraph) -> Result<T, E>,
    ) -> Result<Result<T, E>, StorageError> {
        Ok(self.apply_buffered_logged(None, f)?.0)
    }

    /// [`apply_buffered`](DurableGraph::apply_buffered) with statement
    /// provenance: when `stmt` is `Some((dialect, text))` and the closure
    /// produced a non-empty delta, a [`Record::Stmt`] carrying the source
    /// statement is written as the unit's first record — same unit, same
    /// single fsync at the next flush. Replication ships these recovered
    /// statements; state replay skips them.
    ///
    /// Also reports the txid the unit was appended under (`None` when the
    /// delta was empty and nothing was logged) — the sequence number a
    /// replication hub publishes for this commit.
    pub fn apply_buffered_logged<T, E>(
        &mut self,
        stmt: Option<(u8, &str)>,
        f: impl FnOnce(&mut PropertyGraph) -> Result<T, E>,
    ) -> Result<(Result<T, E>, Option<u64>), StorageError> {
        self.check_sealed()?;
        debug_assert_eq!(
            self.graph.journal_len(),
            0,
            "apply must start at a statement boundary"
        );
        self.last_delta.clear();
        let out = f(&mut self.graph);
        if self.graph.journal_len() != 0 {
            // The closure left an open transaction; durability cannot be
            // defined for half a statement.
            self.seal("a mutation closure left an uncommitted transaction");
            return Err(StorageError::Io(std::io::Error::other(
                "closure left an uncommitted transaction",
            )));
        }
        let mut logged = None;
        if !self.graph.delta().is_empty() {
            let mut records: Vec<Record> = Vec::with_capacity(self.graph.delta().len() + 1);
            if let Some((dialect, text)) = stmt {
                records.push(Record::Stmt {
                    dialect,
                    text: text.to_owned(),
                });
            }
            records.extend(
                self.graph
                    .delta()
                    .iter()
                    .map(|op| Record::from_delta(op, &self.graph)),
            );
            let txid = self.next_txid;
            if let Err(e) = self.wal.append_commit_unit_buffered(txid, &records) {
                // Memory is ahead of the log — and the failed write rolled
                // the file back to the durable horizon, discarding every
                // pending unit of the batch with it. Seal: the snapshot
                // taken by the next checkpoint reconciles all of it.
                self.seal(format!("WAL append for txn {txid} failed: {e}"));
                return Err(StorageError::Io(e));
            }
            self.next_txid += 1;
            self.last_delta = self.graph.delta().to_vec();
            self.graph.clear_delta();
            logged = Some(txid);
        }
        Ok((out, logged))
    }

    /// Take the committed delta of the most recent
    /// [`apply_buffered_logged`](DurableGraph::apply_buffered_logged) call
    /// (empty when that statement was read-only, rolled back, or the delta
    /// was already taken). The ops are in exact execution order — the same
    /// order the WAL logged them in — which is the replay contract the
    /// incremental view maintainer depends on (DESIGN.md §15).
    pub fn take_last_delta(&mut self) -> Vec<cypher_graph::DeltaOp> {
        std::mem::take(&mut self.last_delta)
    }

    /// Fsync the group-commit window opened by
    /// [`apply_buffered`](DurableGraph::apply_buffered). On success every
    /// buffered statement of the batch is durable. On failure **none** of
    /// them is: the WAL is rolled back to the durable horizon, memory is
    /// ahead of the log, and the handle seals (checkpoint reconciles, as
    /// for any commit-unit failure). A no-op when nothing is pending.
    ///
    /// Errors with [`StorageError::Sealed`] when an earlier append already
    /// sealed the handle: that append's rollback discarded **every**
    /// pending unit of the batch, so the window being empty means the
    /// batch was lost, not that it is durable — the caller must not
    /// acknowledge any statement buffered before the seal.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        self.check_sealed()?;
        if let Err(e) = self.wal.sync() {
            self.seal(format!("WAL group-commit fsync failed: {e}"));
            return Err(StorageError::Io(e));
        }
        Ok(())
    }

    /// First half of a **pipelined** [`flush`](DurableGraph::flush): stage
    /// the group-commit window for an off-thread fsync. The returned
    /// [`SyncTicket`]'s [`sync`](SyncTicket::sync) runs elsewhere
    /// (overlapping the next batch's
    /// [`apply_buffered`](DurableGraph::apply_buffered) calls on this
    /// handle); its outcome comes back through
    /// [`complete_flush`](DurableGraph::complete_flush). Returns `None`
    /// when the window is empty — nothing to sync, the flush is trivially
    /// complete.
    ///
    /// Fails with [`StorageError::Sealed`] exactly as `flush` does when an
    /// earlier append already sealed the handle (the emptied window means
    /// the batch was discarded, not durable). Failing to obtain the second
    /// file handle also seals: the batch cannot be proven durable.
    pub fn stage_flush(&mut self) -> Result<Option<SyncTicket>, StorageError> {
        self.check_sealed()?;
        if self.wal.pending() == 0 {
            return Ok(None);
        }
        match self.wal.stage_sync() {
            Ok(ticket) => Ok(Some(ticket)),
            Err(e) => {
                self.seal(format!("WAL group-commit stage failed: {e}"));
                Err(StorageError::Io(e))
            }
        }
    }

    /// Second half of a pipelined flush: record the staged fsync's
    /// outcome. `Ok` makes every statement of the staged batch durable —
    /// even on a handle sealed *after* the stage by a later batch's append
    /// failure, because the staged bytes were already in the file below
    /// the failure. `Err` rolls the WAL back to the durable horizon —
    /// discarding the staged batch **and** any units buffered since — and
    /// seals; the caller must [`reopen`](DurableGraph::reopen) (or
    /// checkpoint) to reconcile, and must not acknowledge anything
    /// buffered after the failed stage either.
    pub fn complete_flush(&mut self, outcome: std::io::Result<()>) -> Result<(), StorageError> {
        if let Err(e) = self.wal.complete_sync(outcome) {
            self.seal(format!("WAL group-commit fsync failed: {e}"));
            return Err(StorageError::Io(e));
        }
        Ok(())
    }

    /// Statements buffered but not yet durable (diagnostics for the apply
    /// queue: non-zero between `apply_buffered` and `flush`).
    pub fn pending_bytes(&self) -> u64 {
        self.wal.pending()
    }

    /// Write a full snapshot and truncate the WAL.
    ///
    /// Ordering makes this crash-safe at every point: the snapshot is
    /// written atomically (temp file + rename) and records the txid horizon
    /// it covers *before* the WAL is reset; a crash in between leaves both
    /// a complete snapshot and a WAL whose units are all ≤ the horizon,
    /// which recovery skips via the txid guard.
    ///
    /// Unlike [`apply`](DurableGraph::apply), a checkpoint is attemptable
    /// on a **sealed** handle — it is the reconciliation path: on success
    /// the snapshot has absorbed everything in memory (including any delta
    /// the WAL refused), so the handle unseals.
    pub fn checkpoint(&mut self) -> Result<(), StorageError> {
        if self.graph.journal_len() != 0 {
            return Err(StorageError::Io(std::io::Error::other(
                "cannot checkpoint mid-statement (open transaction)",
            )));
        }
        let covered = self.next_txid - 1;
        crate::snapshot::write(
            self.fs.as_ref(),
            &self.graph,
            &self.dir.join(SNAPSHOT_FILE),
            covered,
        )?;
        // The snapshot is durable and self-contained from here on. A WAL
        // truncation failure leaves an untrustworthy append cursor, so it
        // seals; recovery (and the next checkpoint attempt) stay correct
        // via the covered-txid guard.
        if let Err(e) = self.wal.reset() {
            self.seal(format!("WAL truncation after checkpoint failed: {e}"));
            return Err(StorageError::Io(e));
        }
        if self.sealed.take().is_some() {
            // The snapshot folded in the delta the WAL refused earlier.
            self.graph.clear_delta();
        }
        Ok(())
    }

    /// [`checkpoint`](DurableGraph::checkpoint) with bounded retry and
    /// exponential backoff, for transient errors (`ENOSPC` after space is
    /// reclaimed, intermittent fsync failures). Tries up to `attempts`
    /// times, sleeping `backoff`, `2×backoff`, … between tries. Returns the
    /// last error if every attempt fails.
    pub fn checkpoint_with_retry(
        &mut self,
        attempts: u32,
        backoff: Duration,
    ) -> Result<(), StorageError> {
        let mut wait = backoff;
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(wait);
                wait = wait.saturating_mul(2);
            }
            match self.checkpoint() {
                Ok(()) => return Ok(()),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            StorageError::Io(std::io::Error::other(
                "checkpoint retry loop ran zero attempts",
            ))
        }))
    }

    /// Re-establish the statement-boundary invariants after a panic
    /// unwound through a mutation closure.
    ///
    /// The engine's transaction RAII already rolls back the in-memory
    /// mutations (journal and delta shrink in lock-step during unwind), so
    /// in the common case this is a no-op. If the panic struck outside a
    /// transaction scope and left residue behind, the graph is rolled back
    /// to the last statement boundary; if un-logged delta remains even so,
    /// the handle seals — a checkpoint then reconciles, exactly as for a
    /// failed append.
    pub fn reconcile_after_panic(&mut self) {
        if self.graph.journal_len() != 0 {
            self.graph.rollback_all();
        }
        if !self.graph.delta().is_empty() {
            self.seal("a panic left uncommitted changes in memory");
        }
    }

    /// Checkpoint and consume the handle, returning the in-memory graph
    /// (with delta capture switched off). The directory then holds a fresh
    /// snapshot and an empty log — the cheapest possible next `open`.
    ///
    /// Works on a sealed handle too (the checkpoint is the reconciliation).
    pub fn close(mut self) -> Result<PropertyGraph, StorageError> {
        self.checkpoint()?;
        self.graph.disable_delta_capture();
        Ok(self.graph)
    }

    /// `covered_txid` of the snapshot this handle recovered from: units at
    /// or below it have no recoverable statement text.
    pub fn recovered_base(&self) -> u64 {
        self.recovered_base
    }

    /// Take the `(txid, dialect, text)` statements recovered from the WAL
    /// (the commit-log suffix since the last checkpoint). A server's apply
    /// worker seeds its in-memory statement mirror from this once.
    pub fn take_recovered_statements(&mut self) -> Vec<(u64, u8, String)> {
        std::mem::take(&mut self.recovered_stmts)
    }

    /// Discard in-memory state and re-run recovery from disk, rolling the
    /// graph back to the durable horizon.
    ///
    /// This is the replication-safe alternative to seal-then-checkpoint: a
    /// checkpoint on a sealed handle folds never-logged (and therefore
    /// never-shipped) mutations into the snapshot, silently diverging any
    /// replica. Reopening instead forgets exactly the units that were
    /// never acked and never shipped. On failure the handle stays sealed
    /// and keeps refusing writes. A fence always survives (it is re-read
    /// from its marker file).
    pub fn reopen(&mut self) -> Result<(), StorageError> {
        let fresh = DurableGraph::open_with(Arc::clone(&self.fs), &self.dir)?;
        *self = fresh;
        Ok(())
    }

    /// Complete snapshot-file bytes of the current graph, covering every
    /// unit this handle has committed — the bootstrap payload shipped to a
    /// replica too far behind for log catch-up. Returns `(covered_txid,
    /// bytes)`.
    pub fn encode_snapshot_bytes(&self) -> Result<(u64, Vec<u8>), StorageError> {
        let covered = self.next_txid - 1;
        let bytes = crate::snapshot::encode_bytes(&self.graph, covered)?;
        Ok((covered, bytes))
    }

    /// Replace this handle's entire state with a shipped snapshot payload
    /// (see [`encode_snapshot_bytes`](DurableGraph::encode_snapshot_bytes)).
    ///
    /// The payload is decoded (strict CRC) *before* anything durable
    /// changes; it is then staged to `snapshot.bin` with the atomic
    /// checkpoint sequence and the WAL is truncated, so a crash at any
    /// point recovers either the old state or the new one, never a blend.
    /// Clears a seal (the installed state is self-contained); refused on a
    /// fenced handle. Returns the snapshot's `covered_txid` — the sequence
    /// number tailing resumes from.
    pub fn install_snapshot(&mut self, bytes: &[u8]) -> Result<u64, StorageError> {
        self.check_fenced()?;
        let loaded = crate::snapshot::decode_bytes(bytes)?;
        crate::snapshot::write_bytes(self.fs.as_ref(), bytes, &self.dir.join(SNAPSHOT_FILE))?;
        if let Err(e) = self.wal.reset() {
            self.seal(format!("WAL truncation after snapshot install failed: {e}"));
            return Err(StorageError::Io(e));
        }
        let mut graph = loaded.graph;
        graph.enable_delta_capture();
        self.graph = graph;
        self.next_txid = loaded.covered_txid + 1;
        self.recovered_base = loaded.covered_txid;
        self.recovered_stmts.clear();
        self.sealed = None;
        Ok(loaded.covered_txid)
    }
}

/// Read the fence marker, if present. Absence is the normal case. Returns
/// `(fence, epoch)`; the bare-address legacy format reads as epoch 0.
fn read_fence(
    fs: &dyn StorageFs,
    dir: &Path,
) -> Result<(Option<Option<String>>, u64), StorageError> {
    let path = dir.join(FENCE_FILE);
    if !fs.exists(&path) {
        return Ok((None, 0));
    }
    let bytes = fs.read(&path)?;
    let text = String::from_utf8_lossy(&bytes);
    let mut epoch = 0u64;
    let addr = match text.split_once('\n') {
        Some((first, rest)) if first.trim().starts_with("epoch=") => {
            epoch = first
                .trim()
                .trim_start_matches("epoch=")
                .parse()
                .unwrap_or(0);
            rest.trim().to_owned()
        }
        _ => text.trim().to_owned(),
    };
    Ok((Some(if addr.is_empty() { None } else { Some(addr) }), epoch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{FaultFs, FaultKind, OpKind};
    use cypher_graph::{isomorphic, DeleteNodeMode, GraphError, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cypher-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn create_one(g: &mut PropertyGraph) -> Result<(), GraphError> {
        let sp = g.savepoint();
        g.create_node([], []);
        g.commit(sp);
        Ok(())
    }

    #[test]
    fn mutations_survive_reopen() {
        let dir = tmpdir("reopen");
        let mut d = DurableGraph::open(&dir).unwrap();
        d.apply(|g| -> Result<(), GraphError> {
            let sp = g.savepoint();
            let user = g.sym("User");
            let id_k = g.sym("id");
            g.create_node([user], [(id_k, Value::Int(89))]);
            g.commit(sp);
            Ok(())
        })
        .unwrap()
        .unwrap();
        let before = d.graph().clone();
        drop(d);

        let d = DurableGraph::open(&dir).unwrap();
        assert!(isomorphic(&before, d.graph()));
        assert_eq!(d.graph().node_count(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn failed_statement_writes_nothing() {
        let dir = tmpdir("failed");
        let mut d = DurableGraph::open(&dir).unwrap();
        let wal_before = d.wal.len().unwrap();
        let result: Result<(), GraphError> = d
            .apply(|g| {
                let sp = g.savepoint();
                g.create_node([], []);
                // Statement fails: roll back like the engine would.
                g.rollback_to(sp);
                Err(GraphError::NodeNotFound(cypher_graph::NodeId(42)))
            })
            .unwrap();
        assert!(result.is_err());
        assert_eq!(d.wal.len().unwrap(), wal_before, "no unit appended");
        assert_eq!(d.graph().node_count(), 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_reopen_matches() {
        let dir = tmpdir("checkpoint");
        let mut d = DurableGraph::open(&dir).unwrap();
        for i in 0..5i64 {
            d.apply(|g| -> Result<(), GraphError> {
                let sp = g.savepoint();
                let k = g.sym("i");
                g.create_node([], [(k, Value::Int(i))]);
                g.commit(sp);
                Ok(())
            })
            .unwrap()
            .unwrap();
        }
        assert!(!d.wal.is_empty().unwrap());
        d.checkpoint().unwrap();
        assert!(d.wal.is_empty().unwrap());

        // More work after the checkpoint lands in the (fresh) WAL.
        d.apply(|g| -> Result<(), GraphError> {
            let sp = g.savepoint();
            let dead = g.create_node([], []);
            g.delete_node(dead, DeleteNodeMode::Strict).unwrap();
            g.commit(sp);
            Ok(())
        })
        .unwrap()
        .unwrap();
        let before = d.graph().clone();
        drop(d);

        let d = DurableGraph::open(&dir).unwrap();
        assert!(isomorphic(&before, d.graph()));
        assert_eq!(d.graph().next_ids(), before.next_ids());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn stale_wal_units_skipped_after_checkpoint_crash() {
        // Simulate a crash *between* snapshot rename and WAL truncation:
        // take a checkpoint, then restore the pre-checkpoint WAL bytes.
        let dir = tmpdir("staleskip");
        let mut d = DurableGraph::open(&dir).unwrap();
        d.apply(create_one).unwrap().unwrap();
        let wal_bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let before = d.graph().clone();
        d.checkpoint().unwrap();
        drop(d);
        std::fs::write(dir.join(WAL_FILE), &wal_bytes).unwrap();

        let d = DurableGraph::open(&dir).unwrap();
        // The unit is still in the WAL but covered by the snapshot; replaying
        // it would collide on the node id.
        assert!(isomorphic(&before, d.graph()));
        assert_eq!(d.graph().node_count(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn close_leaves_fresh_snapshot_and_empty_wal() {
        let dir = tmpdir("close");
        let mut d = DurableGraph::open(&dir).unwrap();
        d.apply(create_one).unwrap().unwrap();
        let before = d.graph().clone();
        d.close().unwrap();
        assert!(dir.join(SNAPSHOT_FILE).exists());

        let rec = crate::recover::recover(&dir).unwrap();
        assert_eq!(rec.replayed, 0, "everything came from the snapshot");
        assert!(isomorphic(&before, &rec.graph));
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A failed commit-unit fsync seals the handle; further applies return
    /// the typed `Sealed` error and in-memory state is preserved.
    #[test]
    fn failed_append_seals_the_handle() {
        let dir = tmpdir("seal");
        let mut d = DurableGraph::open(&dir).unwrap();
        d.apply(create_one).unwrap().unwrap();
        drop(d);

        // Measure how many fs ops a reopen of this dir costs, then plan a
        // fault at the fsync of the next append (reopen + write + sync).
        let counting = FaultFs::counting();
        drop(DurableGraph::open_with(counting.arc(), &dir).unwrap());
        let open_ops = counting.ops();

        let fault = FaultFs::fail_at(open_ops + 1);
        let mut d = DurableGraph::open_with(fault.arc(), &dir).unwrap();
        let err = d.apply(create_one).unwrap_err();
        assert!(
            matches!(err, StorageError::Io(_)),
            "first failure is the I/O error"
        );
        assert!(d.is_sealed());
        assert!(fault.triggered());

        // Reads still work; writes are refused with the typed Sealed error.
        assert_eq!(d.graph().node_count(), 2, "memory kept the mutation");
        let err = d.apply(create_one).unwrap_err();
        assert!(matches!(err, StorageError::Sealed { .. }));
        assert!(err.to_string().contains("sealed"));

        // On-disk state is still the last committed one.
        let rec = crate::recover::recover(&dir).unwrap();
        assert_eq!(rec.graph.node_count(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A successful checkpoint reconciles a sealed handle: the snapshot
    /// absorbs the refused delta, the handle unseals, and new applies work.
    #[test]
    fn checkpoint_unseals_and_preserves_memory_state() {
        let dir = tmpdir("unseal");
        drop(DurableGraph::open(&dir).unwrap());

        // Reopening a header-only log does no fsync, so the first sync
        // after this open is the first append's commit fsync.
        let fault = FaultFs::fail_on(OpKind::Sync, 0, FaultKind::SyncFailure);
        let mut d = DurableGraph::open_with(fault.arc(), &dir).unwrap();
        d.apply(create_one).unwrap_err();
        assert!(d.is_sealed());

        // Checkpoint (fault is one-shot, storage is healthy again).
        d.checkpoint().unwrap();
        assert!(!d.is_sealed());
        d.apply(create_one).unwrap().unwrap();
        assert_eq!(d.graph().node_count(), 2);
        let before = d.graph().clone();
        drop(d);

        let d = DurableGraph::open(&dir).unwrap();
        assert!(isomorphic(&before, d.graph()));
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// `checkpoint_with_retry` survives a transient snapshot-write failure.
    #[test]
    fn checkpoint_retry_recovers_from_transient_fault() {
        let dir = tmpdir("retry");
        let mut d = DurableGraph::open(&dir).unwrap();
        d.apply(create_one).unwrap().unwrap();
        drop(d);

        // Reopen does no `create`; the first one is the snapshot temp file
        // of the first checkpoint attempt.
        let fault = FaultFs::fail_on(OpKind::Create, 0, FaultKind::NoSpace);
        let mut d = DurableGraph::open_with(fault.arc(), &dir).unwrap();
        d.checkpoint_with_retry(3, Duration::from_millis(1))
            .unwrap();
        assert!(!d.is_sealed());
        assert!(d.wal.is_empty().unwrap());
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Group commit: a batch of buffered applies becomes durable with a
    /// single fsync, and a reopen replays every statement of the batch.
    #[test]
    fn buffered_batch_is_durable_after_one_flush() {
        let dir = tmpdir("groupbatch");
        let counting = FaultFs::counting();
        let mut d = DurableGraph::open_with(counting.arc(), &dir).unwrap();
        let syncs_before = counting.ops_of(OpKind::Sync);
        for _ in 0..5 {
            d.apply_buffered(create_one).unwrap().unwrap();
        }
        assert!(d.pending_bytes() > 0);
        d.flush().unwrap();
        assert_eq!(d.pending_bytes(), 0);
        assert_eq!(
            counting.ops_of(OpKind::Sync) - syncs_before,
            1,
            "five statements, one fsync"
        );
        let before = d.graph().clone();
        drop(d);
        let d = DurableGraph::open(&dir).unwrap();
        assert!(isomorphic(&before, d.graph()));
        assert_eq!(d.graph().node_count(), 5);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A failed batch flush seals the handle; on-disk state is the last
    /// durable prefix (none of the batch), memory keeps everything, and a
    /// checkpoint reconciles + unseals.
    #[test]
    fn failed_flush_seals_and_checkpoint_reconciles() {
        let dir = tmpdir("groupflushfail");
        drop(DurableGraph::open(&dir).unwrap());
        // Reopening a header-only log does no fsync, so the first sync
        // after this open is the batch flush.
        let fault = FaultFs::fail_on(OpKind::Sync, 0, FaultKind::SyncFailure);
        let mut d = DurableGraph::open_with(fault.arc(), &dir).unwrap();
        d.apply_buffered(create_one).unwrap().unwrap();
        d.apply_buffered(create_one).unwrap().unwrap();
        let err = d.flush().unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        assert!(d.is_sealed());
        assert_eq!(d.graph().node_count(), 2, "memory kept the batch");

        // On-disk: nothing from the batch survived the rollback.
        let rec = crate::recover::recover(&dir).unwrap();
        assert_eq!(rec.graph.node_count(), 0);

        // Checkpoint reconciles (fault was one-shot) and unseals.
        d.checkpoint().unwrap();
        assert!(!d.is_sealed());
        let before = d.graph().clone();
        drop(d);
        let d = DurableGraph::open(&dir).unwrap();
        assert!(isomorphic(&before, d.graph()));
        assert_eq!(d.graph().node_count(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Pipelined flush: batch N stages, batch N+1 applies while N's fsync
    /// is "in flight", completion retires N, a second flush covers N+1 —
    /// and reopen replays both batches.
    #[test]
    fn staged_flush_overlaps_next_batch() {
        let dir = tmpdir("stagedpipeline");
        let counting = FaultFs::counting();
        let mut d = DurableGraph::open_with(counting.arc(), &dir).unwrap();
        let syncs_before = counting.ops_of(OpKind::Sync);
        d.apply_buffered(create_one).unwrap().unwrap();
        let mut ticket = d.stage_flush().unwrap().unwrap();
        // Batch N+1 applies while N's ticket is outstanding.
        d.apply_buffered(create_one).unwrap().unwrap();
        assert!(d.pending_bytes() > 0);
        d.complete_flush(ticket.sync()).unwrap();
        d.flush().unwrap();
        assert_eq!(
            counting.ops_of(OpKind::Sync) - syncs_before,
            2,
            "one fsync per batch"
        );
        let before = d.graph().clone();
        drop(d);
        let d = DurableGraph::open(&dir).unwrap();
        assert!(isomorphic(&before, d.graph()));
        assert_eq!(d.graph().node_count(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// An empty window stages as `None` — trivially complete.
    #[test]
    fn stage_flush_with_nothing_pending_is_none() {
        let dir = tmpdir("stagednone");
        let mut d = DurableGraph::open(&dir).unwrap();
        assert!(d.stage_flush().unwrap().is_none());
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A failed staged fsync seals and discards the staged batch plus
    /// everything buffered after it; `reopen` rolls memory back to the
    /// durable horizon.
    #[test]
    fn failed_staged_flush_seals_and_reopen_recovers() {
        let dir = tmpdir("stagedflushfail");
        drop(DurableGraph::open(&dir).unwrap());
        // Reopening a header-only log does no fsync; sync 0 is the staged
        // batch fsync.
        let fault = FaultFs::fail_on(OpKind::Sync, 0, FaultKind::SyncFailure);
        let mut d = DurableGraph::open_with(fault.arc(), &dir).unwrap();
        d.apply_buffered(create_one).unwrap().unwrap();
        let mut ticket = d.stage_flush().unwrap().unwrap();
        d.apply_buffered(create_one).unwrap().unwrap(); // batch N+1
        let err = d.complete_flush(ticket.sync()).unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        assert!(d.is_sealed());
        assert_eq!(d.graph().node_count(), 2, "memory ran ahead");

        d.reopen().unwrap();
        assert!(!d.is_sealed());
        assert_eq!(d.graph().node_count(), 0, "nothing was durable");
        d.apply(create_one).unwrap().unwrap();
        assert_eq!(d.graph().node_count(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A later batch's append failure (which seals) must not retroactively
    /// downgrade the staged batch: its bytes were already below the
    /// failure point, and `complete_flush(Ok)` retires it as durable.
    #[test]
    fn later_append_failure_does_not_lose_staged_batch() {
        let dir = tmpdir("stagedlaterfail");
        // Write 0 is the WAL header; write 1 is batch N's unit; write 2
        // (batch N+1's unit) fails short and seals.
        let fault = FaultFs::fail_on(OpKind::Write, 2, FaultKind::ShortWrite);
        let mut d = DurableGraph::open_with(fault.arc(), &dir).unwrap();
        d.apply_buffered(create_one).unwrap().unwrap();
        let mut ticket = d.stage_flush().unwrap().unwrap();
        let err = d.apply_buffered(create_one).unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        assert!(d.is_sealed());

        // Batch N still becomes durable despite the seal.
        d.complete_flush(ticket.sync()).unwrap();
        let rec = crate::recover::recover(&dir).unwrap();
        assert_eq!(rec.graph.node_count(), 1, "batch N survived");

        d.reopen().unwrap();
        assert_eq!(d.graph().node_count(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A mid-batch append failure rolls back every pending unit (including
    /// earlier statements of the batch) and seals; a subsequent `flush`
    /// must report `Sealed` instead of silently no-opping over the emptied
    /// window — otherwise the caller would acknowledge discarded units.
    #[test]
    fn flush_after_midbatch_append_failure_reports_sealed() {
        let dir = tmpdir("midbatchseal");
        // Write 0 is the WAL header; write 1 is the first buffered unit;
        // write 2 (the second unit) fails and rolls the file back to the
        // durable horizon, discarding write 1 with it.
        let fault = FaultFs::fail_on(OpKind::Write, 2, FaultKind::ShortWrite);
        let mut d = DurableGraph::open_with(fault.arc(), &dir).unwrap();
        d.apply_buffered(create_one).unwrap().unwrap();
        assert!(d.pending_bytes() > 0);
        let err = d.apply_buffered(create_one).unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        assert!(d.is_sealed());
        // The rollback emptied the window; a bare WAL sync would no-op.
        assert_eq!(d.pending_bytes(), 0);
        let err = d.flush().unwrap_err();
        assert!(matches!(err, StorageError::Sealed { .. }));
        // On disk nothing of the batch survived.
        let rec = crate::recover::recover(&dir).unwrap();
        assert_eq!(rec.graph.node_count(), 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// `flush` on an empty window is free and `apply` still means
    /// buffered-apply + flush (durability before acknowledge).
    #[test]
    fn flush_with_nothing_pending_is_ok() {
        let dir = tmpdir("emptyflush");
        let mut d = DurableGraph::open(&dir).unwrap();
        d.flush().unwrap();
        d.apply(create_one).unwrap().unwrap();
        assert_eq!(d.pending_bytes(), 0, "apply flushes its own unit");
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Statement provenance rides inside the commit unit and is recovered
    /// on reopen; state replay is unaffected.
    #[test]
    fn logged_statements_are_recovered_in_order() {
        let dir = tmpdir("stmtlog");
        let mut d = DurableGraph::open(&dir).unwrap();
        for (i, text) in ["CREATE (:A)", "CREATE (:B)"].iter().enumerate() {
            let (out, txid) = d
                .apply_buffered_logged(Some((1, text)), create_one)
                .unwrap();
            out.unwrap();
            assert_eq!(txid, Some(i as u64 + 1));
        }
        // A statement with an empty delta logs nothing.
        let (_, txid) = d
            .apply_buffered_logged(Some((1, "MATCH (n) RETURN n")), |_g| {
                Ok::<(), GraphError>(())
            })
            .unwrap();
        assert_eq!(txid, None);
        d.flush().unwrap();
        drop(d);

        let mut d = DurableGraph::open(&dir).unwrap();
        assert_eq!(d.graph().node_count(), 2);
        assert_eq!(d.recovered_base(), 0);
        assert_eq!(
            d.take_recovered_statements(),
            vec![
                (1, 1, "CREATE (:A)".to_owned()),
                (2, 1, "CREATE (:B)".to_owned()),
            ]
        );
        assert!(d.take_recovered_statements().is_empty(), "take drains");

        // A checkpoint absorbs the units; their text is gone afterwards.
        d.checkpoint().unwrap();
        drop(d);
        let mut d = DurableGraph::open(&dir).unwrap();
        assert_eq!(d.recovered_base(), 2);
        assert!(d.take_recovered_statements().is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A fence refuses writes with the typed error, survives reopen via its
    /// marker file, and is NOT cleared by a checkpoint.
    #[test]
    fn fence_is_durable_and_checkpoint_does_not_clear_it() {
        let dir = tmpdir("fence");
        let mut d = DurableGraph::open(&dir).unwrap();
        d.apply(create_one).unwrap().unwrap();
        d.fence(Some("10.0.0.2:7878"), 3).unwrap();
        assert!(d.is_fenced());
        assert_eq!(d.fence_target(), Some("10.0.0.2:7878"));
        assert_eq!(d.fence_epoch(), 3);

        let err = d.apply(create_one).unwrap_err();
        assert!(matches!(
            &err,
            StorageError::Fenced { new_primary: Some(a) } if a == "10.0.0.2:7878"
        ));
        assert!(err.is_fenced() && !err.is_sealed());

        // Checkpoint still works (shutdown path) but does not unfence.
        d.checkpoint().unwrap();
        assert!(d.is_fenced());
        assert!(d.apply(create_one).unwrap_err().is_fenced());
        drop(d);

        // The zombie restarts: still fenced, reads intact.
        let mut d = DurableGraph::open(&dir).unwrap();
        assert!(d.is_fenced());
        assert_eq!(d.fence_target(), Some("10.0.0.2:7878"));
        assert_eq!(d.fence_epoch(), 3, "epoch survives the restart");
        assert_eq!(d.graph().node_count(), 1);
        assert!(d.apply(create_one).unwrap_err().is_fenced());
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A marker written by the pre-epoch format (bare address) still fences
    /// on open, reading as epoch 0; re-fencing upgrades it in place.
    #[test]
    fn legacy_fence_marker_still_fences() {
        let dir = tmpdir("fencelegacy");
        drop(DurableGraph::open(&dir).unwrap());
        std::fs::write(dir.join(FENCE_FILE), b"10.0.0.7:7878").unwrap();
        let mut d = DurableGraph::open(&dir).unwrap();
        assert!(d.is_fenced());
        assert_eq!(d.fence_target(), Some("10.0.0.7:7878"));
        assert_eq!(d.fence_epoch(), 0);
        // Re-fencing with an epoch upgrades the marker without clearing
        // the recorded primary.
        d.fence(None, 5).unwrap();
        drop(d);
        let d = DurableGraph::open(&dir).unwrap();
        assert_eq!(d.fence_target(), Some("10.0.0.7:7878"));
        assert_eq!(d.fence_epoch(), 5);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// The in-memory fence holds even when persisting the marker fails.
    #[test]
    fn fence_refuses_writes_even_if_marker_write_fails() {
        let dir = tmpdir("fencefault");
        drop(DurableGraph::open(&dir).unwrap());
        let fault = FaultFs::fail_on(OpKind::Create, 0, FaultKind::NoSpace);
        let mut d = DurableGraph::open_with(fault.arc(), &dir).unwrap();
        assert!(d.fence(None, 1).is_err(), "marker write failed");
        assert!(d.is_fenced(), "process-local fence still holds");
        assert!(d.apply(create_one).unwrap_err().is_fenced());
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// install_snapshot replaces graph + WAL with the shipped state and
    /// re-bases the txid counter; a corrupt payload changes nothing.
    #[test]
    fn install_snapshot_rebases_onto_shipped_state() {
        let primary_dir = tmpdir("shipsrc");
        let replica_dir = tmpdir("shipdst");
        let mut primary = DurableGraph::open(&primary_dir).unwrap();
        for _ in 0..4 {
            primary.apply(create_one).unwrap().unwrap();
        }
        let (covered, bytes) = primary.encode_snapshot_bytes().unwrap();
        assert_eq!(covered, 4);

        let mut replica = DurableGraph::open(&replica_dir).unwrap();
        replica.apply(create_one).unwrap().unwrap(); // stale local state

        // Corrupt payload: typed error, local state untouched.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(replica.install_snapshot(&bad).is_err());
        assert_eq!(replica.graph().node_count(), 1);

        assert_eq!(replica.install_snapshot(&bytes).unwrap(), 4);
        assert_eq!(replica.next_txid(), 5);
        assert!(isomorphic(primary.graph(), replica.graph()));

        // Tail from here: the next unit gets txid 5, and everything
        // survives a replica restart.
        replica.apply(create_one).unwrap().unwrap();
        let before = replica.graph().clone();
        drop(replica);
        let replica = DurableGraph::open(&replica_dir).unwrap();
        assert!(isomorphic(&before, replica.graph()));
        assert_eq!(replica.next_txid(), 6);
        std::fs::remove_dir_all(primary_dir).unwrap();
        std::fs::remove_dir_all(replica_dir).unwrap();
    }

    /// `reopen` rolls memory back to the durable horizon after a failed
    /// flush — the replication-safe alternative to seal-then-checkpoint.
    #[test]
    fn reopen_rolls_back_to_durable_horizon() {
        let dir = tmpdir("reopenroll");
        let mut d = DurableGraph::open(&dir).unwrap();
        d.apply(create_one).unwrap().unwrap();
        drop(d);

        let counting = FaultFs::counting();
        drop(DurableGraph::open_with(counting.arc(), &dir).unwrap());
        let open_ops = counting.ops();

        let fault = FaultFs::fail_at(open_ops + 1);
        let mut d = DurableGraph::open_with(fault.arc(), &dir).unwrap();
        d.apply(create_one).unwrap_err();
        assert!(d.is_sealed());
        assert_eq!(d.graph().node_count(), 2, "memory ran ahead");

        d.reopen().unwrap();
        assert!(!d.is_sealed());
        assert_eq!(d.graph().node_count(), 1, "memory back at durable state");
        d.apply(create_one).unwrap().unwrap();
        assert_eq!(d.graph().node_count(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A failed snapshot write does NOT seal: nothing durable changed.
    #[test]
    fn failed_snapshot_write_does_not_seal() {
        let dir = tmpdir("snapfail");
        let fault = FaultFs::counting();
        let mut d = DurableGraph::open_with(fault.arc(), &dir).unwrap();
        d.apply(create_one).unwrap().unwrap();
        drop(d);

        let fault = FaultFs::fail_on(OpKind::Rename, 0, FaultKind::RenameFailure);
        let mut d = DurableGraph::open_with(fault.arc(), &dir).unwrap();
        let err = d.checkpoint().unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        assert!(!d.is_sealed(), "snapshot failure is retryable, not sealing");
        d.apply(create_one).unwrap().unwrap();
        assert_eq!(d.graph().node_count(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
