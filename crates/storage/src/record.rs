//! Logical WAL records and their binary encoding.
//!
//! A record is one primitive graph mutation (or a transaction boundary
//! marker). Records are *logical*: labels, relationship types and property
//! keys are carried as strings, never as interner symbols, so a log written
//! by one process replays correctly in another with a freshly-built
//! interner. Entity ids, by contrast, are physical — recovery must
//! reproduce them exactly, because committed query results may have exposed
//! them (`id(n)`).
//!
//! ## Wire format
//!
//! All integers are little-endian. A record's *payload* is a one-byte tag
//! followed by its fields:
//!
//! ```text
//! u64            as 8 bytes LE
//! i64            as 8 bytes LE (two's complement)
//! f64            as 8 bytes LE (IEEE-754 bit pattern)
//! string         u32 length + UTF-8 bytes
//! value          1 tag byte + body (see `encode_value`)
//! props          u32 count + (string key, value) pairs
//! labels         u32 count + strings
//! ```
//!
//! Framing (length prefix + CRC) is the WAL's job, not the record's — see
//! [`crate::wal`].

use std::io;

use cypher_graph::{EntityRef, NodeId, RelId, Value};

/// One logical mutation record, or a transaction boundary.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// Start of a committed unit. `txid`s are strictly increasing within
    /// one log file.
    Begin {
        txid: u64,
    },
    /// End of a committed unit. A unit whose `Commit` never made it to disk
    /// is discarded wholesale by recovery.
    Commit {
        txid: u64,
    },
    /// The source statement that produced this unit, written by the server
    /// as the unit's first record. Replay for *state* skips it (the
    /// mutation records that follow are authoritative); replication and the
    /// commit-log oracle recover it to re-ship or re-run the statement.
    Stmt {
        /// Dialect byte as the server encodes it (0 = Cypher 9, 1 = revised).
        dialect: u8,
        text: String,
    },
    CreateNode {
        id: u64,
        labels: Vec<String>,
        props: Vec<(String, Value)>,
    },
    CreateRel {
        id: u64,
        src: u64,
        tgt: u64,
        rel_type: String,
        props: Vec<(String, Value)>,
    },
    DeleteNode {
        id: u64,
    },
    DeleteRel {
        id: u64,
    },
    AddLabel {
        node: u64,
        label: String,
    },
    RemoveLabel {
        node: u64,
        label: String,
    },
    SetProp {
        entity: EntityRef,
        key: String,
        /// `None` removes the key.
        value: Option<Value>,
    },
}

// Record tags. Gaps are deliberate headroom for future record kinds.
const TAG_BEGIN: u8 = 0x01;
const TAG_COMMIT: u8 = 0x02;
const TAG_STMT: u8 = 0x03;
const TAG_CREATE_NODE: u8 = 0x10;
const TAG_CREATE_REL: u8 = 0x11;
const TAG_DELETE_NODE: u8 = 0x12;
const TAG_DELETE_REL: u8 = 0x13;
const TAG_ADD_LABEL: u8 = 0x14;
const TAG_REMOVE_LABEL: u8 = 0x15;
const TAG_SET_PROP: u8 = 0x16;

// Value tags.
const VTAG_BOOL: u8 = 0x01;
const VTAG_INT: u8 = 0x02;
const VTAG_FLOAT: u8 = 0x03;
const VTAG_STR: u8 = 0x04;
const VTAG_LIST: u8 = 0x05;

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------

/// Copy a slice into a fixed-size array. Callers guarantee `s.len() == N`
/// (every call site sizes the slice with a bounds-checked `take`/range), so
/// this is the panic-free spelling of `try_into().unwrap()`.
pub(crate) fn arr<const N: usize>(s: &[u8]) -> [u8; N] {
    let mut a = [0u8; N];
    a.copy_from_slice(s);
    a
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    // Strings come from interned symbols and property values; a 4 GiB one
    // cannot be constructed through the engine. Saturating keeps the
    // encoder total; the decoder's bounds checks reject the frame anyway.
    debug_assert!(s.len() <= u32::MAX as usize, "string longer than u32::MAX");
    put_u32(buf, u32::try_from(s.len()).unwrap_or(u32::MAX));
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Bool(b) => {
            buf.push(VTAG_BOOL);
            buf.push(*b as u8);
        }
        Value::Int(i) => {
            buf.push(VTAG_INT);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(VTAG_FLOAT);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(VTAG_STR);
            put_str(buf, s);
        }
        Value::List(items) => {
            buf.push(VTAG_LIST);
            put_u32(buf, items.len() as u32);
            for item in items {
                encode_value(buf, item);
            }
        }
        other => unreachable!("non-storable value in a mutation record: {other:?}"),
    }
}

fn put_props(buf: &mut Vec<u8>, props: &[(String, Value)]) {
    put_u32(buf, props.len() as u32);
    for (k, v) in props {
        put_str(buf, k);
        encode_value(buf, v);
    }
}

fn put_strings(buf: &mut Vec<u8>, items: &[String]) {
    put_u32(buf, items.len() as u32);
    for s in items {
        put_str(buf, s);
    }
}

// ---------------------------------------------------------------------
// Primitive readers — every read is bounds-checked so that a corrupt
// payload yields `InvalidData`, never a panic.
// ---------------------------------------------------------------------

pub(crate) struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos == self.data.len()
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| corrupt("record payload truncated"))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(arr(self.take(4)?)))
    }

    pub(crate) fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(arr(self.take(8)?)))
    }

    pub(crate) fn i64(&mut self) -> io::Result<i64> {
        Ok(i64::from_le_bytes(arr(self.take(8)?)))
    }

    pub(crate) fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid UTF-8 in record string"))
    }

    pub(crate) fn value(&mut self) -> io::Result<Value> {
        match self.u8()? {
            VTAG_BOOL => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                b => Err(corrupt(format!("invalid bool byte {b:#x}"))),
            },
            VTAG_INT => Ok(Value::Int(self.i64()?)),
            VTAG_FLOAT => Ok(Value::Float(f64::from_bits(self.u64()?))),
            VTAG_STR => Ok(Value::Str(self.str()?)),
            VTAG_LIST => {
                let n = self.u32()? as usize;
                // Each element is at least 2 bytes; reject absurd counts
                // before allocating.
                if n > self.data.len() - self.pos {
                    return Err(corrupt("list length exceeds payload"));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Ok(Value::List(items))
            }
            t => Err(corrupt(format!("unknown value tag {t:#x}"))),
        }
    }

    fn props(&mut self) -> io::Result<Vec<(String, Value)>> {
        let n = self.u32()? as usize;
        if n > self.data.len() - self.pos {
            return Err(corrupt("property count exceeds payload"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let k = self.str()?;
            let v = self.value()?;
            out.push((k, v));
        }
        Ok(out)
    }

    fn strings(&mut self) -> io::Result<Vec<String>> {
        let n = self.u32()? as usize;
        if n > self.data.len() - self.pos {
            return Err(corrupt("string count exceeds payload"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.str()?);
        }
        Ok(out)
    }
}

impl Record {
    /// Append this record's payload (tag + fields, no framing) to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Record::Begin { txid } => {
                buf.push(TAG_BEGIN);
                put_u64(buf, *txid);
            }
            Record::Commit { txid } => {
                buf.push(TAG_COMMIT);
                put_u64(buf, *txid);
            }
            Record::Stmt { dialect, text } => {
                buf.push(TAG_STMT);
                buf.push(*dialect);
                put_str(buf, text);
            }
            Record::CreateNode { id, labels, props } => {
                buf.push(TAG_CREATE_NODE);
                put_u64(buf, *id);
                put_strings(buf, labels);
                put_props(buf, props);
            }
            Record::CreateRel {
                id,
                src,
                tgt,
                rel_type,
                props,
            } => {
                buf.push(TAG_CREATE_REL);
                put_u64(buf, *id);
                put_u64(buf, *src);
                put_u64(buf, *tgt);
                put_str(buf, rel_type);
                put_props(buf, props);
            }
            Record::DeleteNode { id } => {
                buf.push(TAG_DELETE_NODE);
                put_u64(buf, *id);
            }
            Record::DeleteRel { id } => {
                buf.push(TAG_DELETE_REL);
                put_u64(buf, *id);
            }
            Record::AddLabel { node, label } => {
                buf.push(TAG_ADD_LABEL);
                put_u64(buf, *node);
                put_str(buf, label);
            }
            Record::RemoveLabel { node, label } => {
                buf.push(TAG_REMOVE_LABEL);
                put_u64(buf, *node);
                put_str(buf, label);
            }
            Record::SetProp { entity, key, value } => {
                buf.push(TAG_SET_PROP);
                match entity {
                    EntityRef::Node(n) => {
                        buf.push(0);
                        put_u64(buf, n.0);
                    }
                    EntityRef::Rel(r) => {
                        buf.push(1);
                        put_u64(buf, r.0);
                    }
                }
                put_str(buf, key);
                match value {
                    None => buf.push(0),
                    Some(v) => {
                        buf.push(1);
                        encode_value(buf, v);
                    }
                }
            }
        }
    }

    /// Decode one record from a complete payload. The whole payload must be
    /// consumed — trailing bytes mean corruption the CRC happened to miss.
    pub fn decode(payload: &[u8]) -> io::Result<Record> {
        let mut r = Reader::new(payload);
        let record = match r.u8()? {
            TAG_BEGIN => Record::Begin { txid: r.u64()? },
            TAG_COMMIT => Record::Commit { txid: r.u64()? },
            TAG_STMT => Record::Stmt {
                dialect: r.u8()?,
                text: r.str()?,
            },
            TAG_CREATE_NODE => Record::CreateNode {
                id: r.u64()?,
                labels: r.strings()?,
                props: r.props()?,
            },
            TAG_CREATE_REL => Record::CreateRel {
                id: r.u64()?,
                src: r.u64()?,
                tgt: r.u64()?,
                rel_type: r.str()?,
                props: r.props()?,
            },
            TAG_DELETE_NODE => Record::DeleteNode { id: r.u64()? },
            TAG_DELETE_REL => Record::DeleteRel { id: r.u64()? },
            TAG_ADD_LABEL => Record::AddLabel {
                node: r.u64()?,
                label: r.str()?,
            },
            TAG_REMOVE_LABEL => Record::RemoveLabel {
                node: r.u64()?,
                label: r.str()?,
            },
            TAG_SET_PROP => {
                let entity = match r.u8()? {
                    0 => EntityRef::Node(NodeId(r.u64()?)),
                    1 => EntityRef::Rel(RelId(r.u64()?)),
                    b => return Err(corrupt(format!("invalid entity kind {b:#x}"))),
                };
                let key = r.str()?;
                let value = match r.u8()? {
                    0 => None,
                    1 => Some(r.value()?),
                    b => return Err(corrupt(format!("invalid option byte {b:#x}"))),
                };
                Record::SetProp { entity, key, value }
            }
            t => return Err(corrupt(format!("unknown record tag {t:#x}"))),
        };
        if !r.is_empty() {
            return Err(corrupt("trailing bytes after record"));
        }
        Ok(record)
    }

    /// Translate one captured [`DeltaOp`](cypher_graph::DeltaOp) into its
    /// logical record, resolving symbols against the graph that produced it.
    pub fn from_delta(op: &cypher_graph::DeltaOp, g: &cypher_graph::PropertyGraph) -> Record {
        use cypher_graph::DeltaOp as D;
        let s = |sym| g.sym_str(sym).to_owned();
        match op {
            D::CreateNode { id, labels, props } => Record::CreateNode {
                id: id.0,
                labels: labels.iter().map(|&l| s(l)).collect(),
                props: props.iter().map(|(k, v)| (s(*k), v.clone())).collect(),
            },
            D::CreateRel {
                id,
                src,
                tgt,
                rel_type,
                props,
            } => Record::CreateRel {
                id: id.0,
                src: src.0,
                tgt: tgt.0,
                rel_type: s(*rel_type),
                props: props.iter().map(|(k, v)| (s(*k), v.clone())).collect(),
            },
            D::DeleteRel { id } => Record::DeleteRel { id: id.0 },
            D::DeleteNode { id } => Record::DeleteNode { id: id.0 },
            D::AddLabel { node, label } => Record::AddLabel {
                node: node.0,
                label: s(*label),
            },
            D::RemoveLabel { node, label } => Record::RemoveLabel {
                node: node.0,
                label: s(*label),
            },
            D::SetProp { entity, key, value } => Record::SetProp {
                entity: *entity,
                key: s(*key),
                value: value.clone(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(r: Record) {
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(Record::decode(&buf).unwrap(), r, "payload {buf:?}");
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(Record::Begin { txid: 7 });
        round_trip(Record::Commit { txid: u64::MAX });
        round_trip(Record::Stmt {
            dialect: 1,
            text: "CREATE (:User {name: 'Ann'})".into(),
        });
        round_trip(Record::Stmt {
            dialect: 0,
            text: String::new(),
        });
        round_trip(Record::CreateNode {
            id: 3,
            labels: vec!["User".into(), "Vendor".into()],
            props: vec![
                ("id".into(), Value::Int(-89)),
                ("name".into(), Value::Str("Bob".into())),
                ("score".into(), Value::Float(1.5)),
                ("active".into(), Value::Bool(true)),
                (
                    "tags".into(),
                    Value::List(vec![Value::Str("a".into()), Value::Int(2)]),
                ),
            ],
        });
        round_trip(Record::CreateRel {
            id: 0,
            src: 1,
            tgt: 1,
            rel_type: "SELF".into(),
            props: vec![],
        });
        round_trip(Record::DeleteNode { id: 12 });
        round_trip(Record::DeleteRel { id: 0 });
        round_trip(Record::AddLabel {
            node: 4,
            label: "Product".into(),
        });
        round_trip(Record::RemoveLabel {
            node: 4,
            label: "".into(),
        });
        round_trip(Record::SetProp {
            entity: EntityRef::Node(NodeId(9)),
            key: "k".into(),
            value: Some(Value::Float(f64::NEG_INFINITY)),
        });
        round_trip(Record::SetProp {
            entity: EntityRef::Rel(RelId(2)),
            key: "k".into(),
            value: None,
        });
    }

    #[test]
    fn nan_survives_bit_exactly() {
        let mut buf = Vec::new();
        Record::SetProp {
            entity: EntityRef::Node(NodeId(0)),
            key: "x".into(),
            value: Some(Value::Float(f64::NAN)),
        }
        .encode(&mut buf);
        match Record::decode(&buf).unwrap() {
            Record::SetProp {
                value: Some(Value::Float(f)),
                ..
            } => assert!(f.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_invalid_data_not_panic() {
        let mut buf = Vec::new();
        Record::CreateNode {
            id: 1,
            labels: vec!["User".into()],
            props: vec![("id".into(), Value::Int(5))],
        }
        .encode(&mut buf);
        for cut in 0..buf.len() {
            let err = Record::decode(&buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Vec::new();
        Record::Begin { txid: 1 }.encode(&mut buf);
        buf.push(0xAA);
        assert!(Record::decode(&buf).is_err());
    }
}
