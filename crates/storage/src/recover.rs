//! Crash recovery: snapshot + committed WAL suffix → graph.
//!
//! Opening a storage directory means:
//!
//! 1. load `snapshot.bin` if it exists (else start from an empty graph),
//! 2. scan `wal.bin` for fully-committed units (torn tails are located,
//!    not trusted — see [`crate::wal::scan`]),
//! 3. replay, in log order, every unit whose txid is *newer* than the
//!    snapshot's `covered_txid` — the txid guard makes the checkpoint
//!    sequence (write snapshot, then truncate WAL) crash-safe: if the
//!    crash lands between those two steps, the stale WAL units are simply
//!    skipped instead of being applied twice,
//! 4. report the commit horizon so the caller can truncate the torn tail
//!    before appending.
//!
//! Replay drives the same primitive mutation APIs the live engine uses, so
//! a replayed graph is bit-for-bit the committed graph — ids, adjacency
//! order, tombstones and all.

use std::io;
use std::path::Path;

use cypher_graph::{
    DeleteNodeMode, EntityRef, NodeData, NodeId, PropertyGraph, RelData, RelId, Value,
};

use crate::fs::{RealFs, StorageFs};
use crate::record::Record;
use crate::{snapshot, wal};

pub const SNAPSHOT_FILE: &str = "snapshot.bin";
pub const WAL_FILE: &str = "wal.bin";

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Outcome of recovery.
#[derive(Debug)]
pub struct Recovered {
    /// The last committed state.
    pub graph: PropertyGraph,
    /// Highest transaction id seen (snapshot or WAL); 0 if none.
    pub last_txid: u64,
    /// Commit horizon of the WAL file — pass to
    /// [`Wal::open_append`](crate::wal::Wal::open_append). `None` when no
    /// WAL file exists yet; less than the header length when the file is a
    /// torn header (`open_append` recreates the log in that case).
    pub wal_committed_len: Option<u64>,
    /// Number of WAL units replayed (diagnostics).
    pub replayed: usize,
    /// Torn-tail diagnostic from the WAL scan, if any.
    pub torn: Option<String>,
    /// `covered_txid` of the snapshot this recovery started from (0 when
    /// there was no snapshot). Units at or below this horizon have been
    /// folded into the snapshot and their statement text is gone.
    pub covered_txid: u64,
    /// Statement texts recovered from [`Record::Stmt`] records in replayed
    /// units, as `(txid, dialect, text)`, in log order. This is the
    /// still-shippable suffix of the commit log: everything newer than the
    /// last checkpoint.
    pub statements: Vec<(u64, u8, String)>,
}

/// Recover the last committed graph from `dir` via the real filesystem.
pub fn recover(dir: &Path) -> io::Result<Recovered> {
    recover_with(&RealFs, dir)
}

/// Recover the last committed graph from `dir` through an arbitrary
/// [`StorageFs`] (fault injection drives this entry point).
pub fn recover_with(fs: &dyn StorageFs, dir: &Path) -> io::Result<Recovered> {
    let snap_path = dir.join(SNAPSHOT_FILE);
    let wal_path = dir.join(WAL_FILE);

    let (mut graph, covered_txid) = if fs.exists(&snap_path) {
        let loaded = snapshot::load(fs, &snap_path)?;
        (loaded.graph, loaded.covered_txid)
    } else {
        (PropertyGraph::new(), 0)
    };
    // Replay goes through the normal (journaled) mutation paths; taking the
    // root savepoint now lets us discard those undo entries at the end —
    // recovery is not undoable.
    let root = graph.savepoint();

    let mut last_txid = covered_txid;
    let mut replayed = 0;
    let mut wal_committed_len = None;
    let mut torn = None;
    let mut statements = Vec::new();
    if fs.exists(&wal_path) {
        let scan = wal::scan(fs, &wal_path)?;
        for (txid, ops) in &scan.units {
            if *txid <= covered_txid {
                continue; // already folded into the snapshot
            }
            replay_unit(&mut graph, *txid, ops)?;
            for op in ops {
                if let Record::Stmt { dialect, text } = op {
                    statements.push((*txid, *dialect, text.clone()));
                }
            }
            last_txid = *txid;
            replayed += 1;
        }
        wal_committed_len = Some(scan.committed_len);
        torn = scan.torn;
    }

    graph.commit(root);

    Ok(Recovered {
        graph,
        last_txid,
        wal_committed_len,
        replayed,
        torn,
        covered_txid,
        statements,
    })
}

/// Apply one committed unit. Any failure is corruption: committed units
/// replay against exactly the state they were produced in, so a mutation
/// the graph rejects means the log and snapshot disagree.
fn replay_unit(g: &mut PropertyGraph, txid: u64, ops: &[Record]) -> io::Result<()> {
    for op in ops {
        apply(g, op).map_err(|e| corrupt(format!("replaying txn {txid}: {e}")))?;
    }
    Ok(())
}

fn apply(g: &mut PropertyGraph, op: &Record) -> Result<(), String> {
    match op {
        Record::Begin { .. } | Record::Commit { .. } => {
            return Err("boundary marker inside a unit".into())
        }
        // Statement provenance, not state: the mutation records that follow
        // are authoritative for replay.
        Record::Stmt { .. } => {}
        Record::CreateNode { id, labels, props } => {
            if g.contains_node(NodeId(*id)) {
                return Err(format!("node {id} already exists"));
            }
            let mut data = NodeData::default();
            for l in labels {
                let s = g.sym(l);
                data.labels.insert(s);
            }
            for (k, v) in props {
                let s = g.sym(k);
                data.props.insert(s, v.clone());
            }
            g.restore_node(NodeId(*id), data);
        }
        Record::CreateRel {
            id,
            src,
            tgt,
            rel_type,
            props,
        } => {
            if g.contains_rel(RelId(*id)) {
                return Err(format!("relationship {id} already exists"));
            }
            let rel_type = g.sym(rel_type);
            let mut map = cypher_graph::PropertyMap::new();
            for (k, v) in props {
                let s = g.sym(k);
                map.insert(s, v.clone());
            }
            g.restore_rel(
                RelId(*id),
                RelData {
                    src: NodeId(*src),
                    tgt: NodeId(*tgt),
                    rel_type,
                    props: map,
                },
            )
            .map_err(|e| e.to_string())?;
        }
        Record::DeleteNode { id } => {
            // Force reproduces legacy mid-statement deletes; for a revised
            // log the node has no attached rels here anyway.
            g.delete_node(NodeId(*id), DeleteNodeMode::Force)
                .map_err(|e| e.to_string())?;
        }
        Record::DeleteRel { id } => {
            g.delete_rel(RelId(*id)).map_err(|e| e.to_string())?;
        }
        Record::AddLabel { node, label } => {
            let l = g.sym(label);
            g.add_label(NodeId(*node), l).map_err(|e| e.to_string())?;
        }
        Record::RemoveLabel { node, label } => {
            let l = g.sym(label);
            g.remove_label(NodeId(*node), l)
                .map_err(|e| e.to_string())?;
        }
        Record::SetProp { entity, key, value } => {
            let k = g.sym(key);
            let v = value.clone().unwrap_or(Value::Null);
            let entity = match entity {
                EntityRef::Node(n) => EntityRef::Node(*n),
                EntityRef::Rel(r) => EntityRef::Rel(*r),
            };
            g.set_prop(entity, k, v).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}
