//! Storage I/O abstraction: every byte this crate reads or writes goes
//! through a [`StorageFs`], so the whole durability stack can be driven
//! against a deterministic fault injector as well as the real filesystem.
//!
//! * [`RealFs`] delegates to `std::fs` — the production path.
//! * [`FaultFs`] wraps another `StorageFs` and injects exactly one error
//!   (fsync failure, short write, `ENOSPC`, rename failure) at a chosen
//!   operation index, SQLite-test-VFS style. Every fallible call counts as
//!   one operation, so a *counting* pass over a workload yields the exact
//!   index space a torture sweep must cover (`tests/storage_torture.rs`).
//!
//! The fault is **one-shot**: after it fires, the injector behaves like the
//! inner filesystem again. That models a transient error and lets the
//! post-fault recovery path run against healthy storage — which is exactly
//! the situation the seal/checkpoint-retry machinery has to handle.

use std::collections::HashMap;
use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

/// An open file handle behind the storage abstraction.
// `len` returns io::Result, so clippy's usual is_empty pairing is moot.
#[allow(clippy::len_without_is_empty)]
pub trait StorageFile: Debug + Send {
    /// Write the whole buffer (one logical write; short writes are faults).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush file contents to stable storage (`fsync`/`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Truncate or extend to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Current length in bytes.
    fn len(&self) -> io::Result<u64>;
    /// Move the cursor to the end of the file, returning the offset.
    fn seek_end(&mut self) -> io::Result<u64>;
    /// A second, independently-owned handle onto the same open file, able
    /// to fsync it from another thread while this handle keeps writing —
    /// the pipelined group-commit flush stage. Acquiring the handle is not
    /// a counted fault operation; syncs issued through it are.
    fn sync_handle(&self) -> io::Result<Box<dyn SyncHandle>>;
}

/// A sync-only sibling of a [`StorageFile`], safe to move to a flusher
/// thread (see [`StorageFile::sync_handle`]). An fsync through either
/// handle flushes the same underlying file.
pub trait SyncHandle: Debug + Send {
    /// Flush file contents to stable storage (`fsync`/`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
}

/// The filesystem operations the durability layer needs. Object-safe so a
/// [`DurableGraph`](crate::DurableGraph) can hold `Arc<dyn StorageFs>`.
pub trait StorageFs: Debug + Send + Sync {
    /// Create (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Open an existing file for read/write.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Read a whole file into memory.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsync a directory, making renames within it durable. Callers treat
    /// failures as best-effort (some filesystems reject directory fsync),
    /// but the operation still counts for fault injection.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Create a directory and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Does the path exist? Infallible by design (and not a counted op):
    /// existence probes steer control flow, they don't move data.
    fn exists(&self, path: &Path) -> bool;
}

// ---------------------------------------------------------------------
// RealFs
// ---------------------------------------------------------------------

/// The production [`StorageFs`]: plain `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl RealFs {
    /// Shorthand for the `Arc<dyn StorageFs>` most entry points take.
    pub fn arc() -> Arc<dyn StorageFs> {
        Arc::new(RealFs)
    }
}

#[derive(Debug)]
struct RealFile(File);

impl StorageFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn len(&self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }
    fn seek_end(&mut self) -> io::Result<u64> {
        self.0.seek(io::SeekFrom::End(0))
    }
    fn sync_handle(&self) -> io::Result<Box<dyn SyncHandle>> {
        Ok(Box::new(RealSyncHandle(self.0.try_clone()?)))
    }
}

/// A duplicated descriptor onto a [`RealFile`]; `fsync` on either flushes
/// the same inode.
#[derive(Debug)]
struct RealSyncHandle(File);

impl SyncHandle for RealSyncHandle {
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl StorageFs for RealFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        Ok(data)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_data()
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ---------------------------------------------------------------------
// FaultFs
// ---------------------------------------------------------------------

/// The kind of filesystem operation, for per-kind fault targeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    Create,
    Open,
    Read,
    Write,
    Sync,
    SetLen,
    SeekEnd,
    Rename,
    Remove,
    SyncDir,
    CreateDir,
}

/// The flavour of error a fault injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Pick a realistic flavour for the faulted operation: a short write
    /// for writes, an fsync failure for syncs, a rename failure for
    /// renames, `ENOSPC` otherwise.
    Auto,
    /// `ENOSPC` — no space left on device.
    NoSpace,
    /// The write persists only a prefix of the buffer, then errors.
    ShortWrite,
    /// `fsync` reports failure (contents may or may not be durable).
    SyncFailure,
    /// The rename does not happen.
    RenameFailure,
}

impl FaultKind {
    fn resolve(self, op: OpKind) -> FaultKind {
        match self {
            FaultKind::Auto => match op {
                OpKind::Write => FaultKind::ShortWrite,
                OpKind::Sync | OpKind::SyncDir => FaultKind::SyncFailure,
                OpKind::Rename => FaultKind::RenameFailure,
                _ => FaultKind::NoSpace,
            },
            other => other,
        }
    }

    fn to_error(self) -> io::Error {
        match self {
            FaultKind::NoSpace => io::Error::new(
                io::ErrorKind::StorageFull,
                "injected fault: no space left on device",
            ),
            FaultKind::ShortWrite => {
                io::Error::new(io::ErrorKind::WriteZero, "injected fault: short write")
            }
            FaultKind::SyncFailure => io::Error::other("injected fault: fsync failed"),
            FaultKind::RenameFailure => io::Error::other("injected fault: rename failed"),
            FaultKind::Auto => io::Error::other("injected fault"),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Trigger {
    /// Fire at the N-th fallible operation overall (0-based).
    GlobalIndex(u64),
    /// Fire at the N-th operation of a given kind (0-based).
    KindIndex(OpKind, u64),
}

#[derive(Debug, Default)]
struct FaultState {
    ops: u64,
    per_kind: HashMap<OpKind, u64>,
    plan: Option<(Trigger, FaultKind)>,
    triggered: bool,
}

impl FaultState {
    /// Count one operation; return the fault to inject, if this is the one.
    fn step(&mut self, op: OpKind) -> Option<FaultKind> {
        let global = self.ops;
        self.ops += 1;
        let kind_count = self.per_kind.entry(op).or_insert(0);
        let nth_of_kind = *kind_count;
        *kind_count += 1;

        if self.triggered {
            return None;
        }
        let (trigger, fault) = self.plan?;
        let hit = match trigger {
            Trigger::GlobalIndex(at) => global == at,
            Trigger::KindIndex(kind, at) => kind == op && nth_of_kind == at,
        };
        if hit {
            self.triggered = true;
            Some(fault.resolve(op))
        } else {
            None
        }
    }
}

/// A deterministic fault-injecting [`StorageFs`] wrapper.
///
/// Cloning shares the counter/trigger state, so keep a clone to query
/// [`ops`](FaultFs::ops)/[`triggered`](FaultFs::triggered) after handing an
/// `Arc<dyn StorageFs>` to the storage layer.
#[derive(Debug, Clone)]
pub struct FaultFs {
    inner: Arc<dyn StorageFs>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultFs {
    fn with_plan(plan: Option<(Trigger, FaultKind)>) -> FaultFs {
        FaultFs {
            inner: Arc::new(RealFs),
            state: Arc::new(Mutex::new(FaultState {
                plan,
                ..FaultState::default()
            })),
        }
    }

    /// Count operations without ever injecting a fault — the measuring pass
    /// of a torture sweep.
    pub fn counting() -> FaultFs {
        FaultFs::with_plan(None)
    }

    /// Inject one fault at the `index`-th fallible operation (0-based),
    /// with an [`FaultKind::Auto`] flavour.
    pub fn fail_at(index: u64) -> FaultFs {
        FaultFs::with_plan(Some((Trigger::GlobalIndex(index), FaultKind::Auto)))
    }

    /// Inject `fault` at the `nth` operation (0-based) of kind `op`.
    pub fn fail_on(op: OpKind, nth: u64, fault: FaultKind) -> FaultFs {
        FaultFs::with_plan(Some((Trigger::KindIndex(op, nth), fault)))
    }

    /// Wrap a specific inner filesystem instead of [`RealFs`].
    pub fn over(mut self, inner: Arc<dyn StorageFs>) -> FaultFs {
        self.inner = inner;
        self
    }

    /// This clone-shared handle as an `Arc<dyn StorageFs>`.
    pub fn arc(&self) -> Arc<dyn StorageFs> {
        Arc::new(self.clone())
    }

    /// Total fallible operations observed so far.
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Fallible operations of one kind observed so far (e.g. how many
    /// fsyncs a workload issued — the group-commit tests count these).
    pub fn ops_of(&self, op: OpKind) -> u64 {
        self.lock().per_kind.get(&op).copied().unwrap_or(0)
    }

    /// Has the planned fault fired yet?
    pub fn triggered(&self) -> bool {
        self.lock().triggered
    }

    fn lock(&self) -> MutexGuard<'_, FaultState> {
        // A panic while holding this mutex cannot leave the counters in a
        // torn state (all updates are single-field); recover the guard.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn step(&self, op: OpKind) -> Result<(), FaultKind> {
        match self.lock().step(op) {
            Some(fault) => Err(fault),
            None => Ok(()),
        }
    }
}

#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn StorageFile>,
    fs: FaultFs,
}

impl StorageFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.fs.step(OpKind::Write) {
            Ok(()) => self.inner.write_all(buf),
            Err(FaultKind::ShortWrite) => {
                // Persist a prefix, then report failure: the bytes that
                // "made it out" before the disk filled up.
                let _ = self.inner.write_all(&buf[..buf.len() / 2]);
                Err(FaultKind::ShortWrite.to_error())
            }
            Err(fault) => Err(fault.to_error()),
        }
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.fs.step(OpKind::Sync).map_err(FaultKind::to_error)?;
        self.inner.sync_data()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.fs.step(OpKind::SetLen).map_err(FaultKind::to_error)?;
        self.inner.set_len(len)
    }
    fn len(&self) -> io::Result<u64> {
        self.inner.len() // diagnostic read, not a counted op
    }
    fn seek_end(&mut self) -> io::Result<u64> {
        self.fs.step(OpKind::SeekEnd).map_err(FaultKind::to_error)?;
        self.inner.seek_end()
    }
    fn sync_handle(&self) -> io::Result<Box<dyn SyncHandle>> {
        // Shares the same fault state as the parent handle, so syncs from
        // a flusher thread land in the same `OpKind::Sync` index space —
        // `fail_on(Sync, n)` stays deterministic even when write/sync
        // interleaving across threads is not.
        Ok(Box::new(FaultSyncHandle {
            inner: self.inner.sync_handle()?,
            fs: self.fs.clone(),
        }))
    }
}

#[derive(Debug)]
struct FaultSyncHandle {
    inner: Box<dyn SyncHandle>,
    fs: FaultFs,
}

impl SyncHandle for FaultSyncHandle {
    fn sync_data(&mut self) -> io::Result<()> {
        self.fs.step(OpKind::Sync).map_err(FaultKind::to_error)?;
        self.inner.sync_data()
    }
}

impl StorageFs for FaultFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.step(OpKind::Create).map_err(FaultKind::to_error)?;
        Ok(Box::new(FaultFile {
            inner: self.inner.create(path)?,
            fs: self.clone(),
        }))
    }
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.step(OpKind::Open).map_err(FaultKind::to_error)?;
        Ok(Box::new(FaultFile {
            inner: self.inner.open_rw(path)?,
            fs: self.clone(),
        }))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.step(OpKind::Read).map_err(FaultKind::to_error)?;
        self.inner.read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.step(OpKind::Rename).map_err(FaultKind::to_error)?;
        self.inner.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.step(OpKind::Remove).map_err(FaultKind::to_error)?;
        self.inner.remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.step(OpKind::SyncDir).map_err(FaultKind::to_error)?;
        self.inner.sync_dir(dir)
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.step(OpKind::CreateDir).map_err(FaultKind::to_error)?;
        self.inner.create_dir_all(dir)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cypher-fs-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn counting_pass_is_fault_free_and_counts() {
        let dir = tmpdir("count");
        let fault = FaultFs::counting();
        let fs = fault.arc();
        let mut f = fs.create(&dir.join("a")).unwrap(); // op 0
        f.write_all(b"hello").unwrap(); // op 1
        f.sync_data().unwrap(); // op 2
        fs.rename(&dir.join("a"), &dir.join("b")).unwrap(); // op 3
        assert_eq!(fault.ops(), 4);
        assert!(!fault.triggered());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn fail_at_fires_exactly_once_at_the_index() {
        let dir = tmpdir("once");
        let fault = FaultFs::fail_at(2);
        let fs = fault.arc();
        let mut f = fs.create(&dir.join("a")).unwrap(); // op 0
        f.write_all(b"x").unwrap(); // op 1
        let err = f.sync_data().unwrap_err(); // op 2: fsync fault
        assert!(err.to_string().contains("injected fault"));
        assert!(fault.triggered());
        // One-shot: the same operation now succeeds.
        f.sync_data().unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn short_write_persists_a_prefix() {
        let dir = tmpdir("short");
        let path = dir.join("a");
        let fault = FaultFs::fail_on(OpKind::Write, 0, FaultKind::ShortWrite);
        let fs = fault.arc();
        let mut f = fs.create(&path).unwrap();
        let err = f.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"01234");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rename_fault_leaves_source_in_place() {
        let dir = tmpdir("rename");
        std::fs::write(dir.join("a"), b"data").unwrap();
        let fault = FaultFs::fail_on(OpKind::Rename, 0, FaultKind::RenameFailure);
        let fs = fault.arc();
        assert!(fs.rename(&dir.join("a"), &dir.join("b")).is_err());
        assert!(dir.join("a").exists());
        assert!(!dir.join("b").exists());
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A sync handle fsyncs the same file from another thread, and its
    /// syncs count in the shared `OpKind::Sync` index space.
    #[test]
    fn sync_handle_counts_in_shared_sync_index() {
        let dir = tmpdir("synchandle");
        // Sync 0 is the in-thread one; sync 1 — issued through the handle
        // on another thread — is the one that faults.
        let fault = FaultFs::fail_on(OpKind::Sync, 1, FaultKind::SyncFailure);
        let fs = fault.arc();
        let mut f = fs.create(&dir.join("a")).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap(); // sync 0
        let mut handle = f.sync_handle().unwrap();
        let joined = std::thread::spawn(move || {
            let err = handle.sync_data().unwrap_err(); // sync 1: faulted
            assert!(err.to_string().contains("injected fault"));
            handle.sync_data().unwrap(); // one-shot: healthy again
            handle
        })
        .join()
        .unwrap();
        drop(joined);
        assert!(fault.triggered());
        assert_eq!(fault.ops_of(OpKind::Sync), 3);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn nospace_maps_to_storage_full() {
        let dir = tmpdir("nospace");
        let fault = FaultFs::fail_on(OpKind::Create, 0, FaultKind::NoSpace);
        let fs = fault.arc();
        let err = fs.create(&dir.join("a")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
