//! Typed storage errors.

use std::fmt;
use std::io;

/// Errors surfaced by the durability layer.
///
/// [`StorageError::Sealed`] is the poisoned-state signal: a commit-unit
/// write failed, so in-memory state may be ahead of the log and the handle
/// refuses further writes until a successful checkpoint re-establishes the
/// memory-equals-disk invariant (see `DESIGN.md` §8).
#[derive(Debug)]
pub enum StorageError {
    /// The handle is sealed read-only after a failed commit unit.
    Sealed {
        /// What sealed it — the original failure, for diagnostics.
        reason: String,
    },
    /// The handle is fenced: a failover demoted this data directory and a
    /// durable marker forbids it from ever acking another write. Unlike
    /// [`StorageError::Sealed`], a checkpoint does *not* clear a fence —
    /// only wiping the data directory (rejoining as a fresh replica) does.
    Fenced {
        /// Address of the promoted primary, when the fencer supplied one.
        new_primary: Option<String>,
    },
    /// An I/O error from the underlying [`StorageFs`](crate::fs::StorageFs).
    Io(io::Error),
}

impl StorageError {
    pub fn is_sealed(&self) -> bool {
        matches!(self, StorageError::Sealed { .. })
    }

    pub fn is_fenced(&self) -> bool {
        matches!(self, StorageError::Fenced { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Sealed { reason } => write!(
                f,
                "storage handle is sealed read-only ({reason}); \
                 checkpoint to reconcile, or reopen to recover"
            ),
            StorageError::Fenced { new_primary } => match new_primary {
                Some(addr) => write!(
                    f,
                    "storage handle is fenced after failover (new primary: {addr}); \
                     wipe the data directory to rejoin as a replica"
                ),
                None => write!(
                    f,
                    "storage handle is fenced after failover; \
                     wipe the data directory to rejoin as a replica"
                ),
            },
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Sealed { .. } | StorageError::Fenced { .. } => None,
            StorageError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}
