//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! Every WAL frame and the snapshot body carry a checksum so that recovery
//! can tell a torn write (truncated or garbage tail) from valid data. The
//! standard reflected algorithm is used — the same one as `cksum -o3`, zlib
//! and gzip — so log files are checkable with external tools.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Checksum of `data` in one call.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(data);
    h.finish()
}

/// Incremental CRC-32 over multiple chunks.
#[derive(Clone, Debug)]
pub struct Hasher {
    state: u32,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    pub fn new() -> Self {
        Hasher { state: !0 }
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"begin/commit framing with per-record checksums";
        let mut h = Hasher::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_detected() {
        let data = b"CREATE (:User {id: 89})";
        let good = crc32(data);
        let mut bad = data.to_vec();
        bad[5] ^= 0x01;
        assert_ne!(crc32(&bad), good);
    }
}
