//! Durability layer for the property graph.
//!
//! This crate adds crash-safe persistence on top of `cypher-graph`'s purely
//! in-memory [`PropertyGraph`](cypher_graph::PropertyGraph), following the
//! classic snapshot + write-ahead-log design:
//!
//! * [`record`] — the logical mutation records (one per graph update) and
//!   their length-prefixed, CRC-protected binary encoding. Records are
//!   *logical*: they name labels, keys and types as strings, so a log written
//!   by one process is replayable in another with a fresh interner.
//! * [`wal`] — the append-only log file. Each committed statement becomes a
//!   `Begin{txid} … Commit{txid}` unit; the file is fsynced once per commit.
//! * [`snapshot`] — full-graph serialization (interner, nodes, relationships,
//!   tombstones, index schemas) written atomically via temp-file + rename.
//! * [`recover`] — opening a directory: load the snapshot if present, then
//!   replay only *committed* WAL units, discarding any torn or uncommitted
//!   tail without being confused by byte-level corruption.
//! * [`durable`] — [`DurableGraph`], the user-facing handle tying it all
//!   together: run mutations, capture their delta, append to the WAL, and
//!   checkpoint (snapshot + truncate) on demand.
//!
//! The crate is std-only: framing, CRC32 and serialization are hand-rolled,
//! no serde.

pub mod crc;
pub mod durable;
pub mod record;
pub mod recover;
pub mod snapshot;
pub mod wal;

pub use durable::DurableGraph;
pub use record::Record;
pub use recover::recover;
