//! Durability layer for the property graph.
//!
//! This crate adds crash-safe persistence on top of `cypher-graph`'s purely
//! in-memory [`PropertyGraph`](cypher_graph::PropertyGraph), following the
//! classic snapshot + write-ahead-log design:
//!
//! * [`record`] — the logical mutation records (one per graph update) and
//!   their length-prefixed, CRC-protected binary encoding. Records are
//!   *logical*: they name labels, keys and types as strings, so a log written
//!   by one process is replayable in another with a fresh interner.
//! * [`fs`] — the [`StorageFs`] I/O abstraction: [`RealFs`] for production,
//!   [`FaultFs`] for deterministic fault injection (fsync failures, short
//!   writes, `ENOSPC`, rename failures at the N-th operation).
//! * [`wal`] — the append-only log file. Each committed statement becomes a
//!   `Begin{txid} … Commit{txid}` unit; the file is fsynced once per commit,
//!   and the in-memory durable horizon only advances after that fsync.
//! * [`snapshot`] — full-graph serialization (interner, nodes, relationships,
//!   tombstones, index schemas) written atomically via temp-file + rename.
//! * [`recover`] — opening a directory: load the snapshot if present, then
//!   replay only *committed* WAL units, discarding any torn or uncommitted
//!   tail without being confused by byte-level corruption.
//! * [`durable`] — [`DurableGraph`], the user-facing handle tying it all
//!   together: run mutations, capture their delta, append to the WAL, seal
//!   read-only when a commit unit fails ([`StorageError::Sealed`]), and
//!   checkpoint (snapshot + truncate) on demand — which also reconciles and
//!   unseals a sealed handle.
//!
//! The crate is std-only: framing, CRC32 and serialization are hand-rolled,
//! no serde.

// Storage code must never panic on an I/O or lock result: every failure is
// either a typed error or an explicit seal. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod crc;
pub mod durable;
pub mod error;
pub mod fs;
pub mod record;
pub mod recover;
pub mod snapshot;
pub mod wal;

pub use durable::{DurableGraph, FENCE_FILE};
pub use error::StorageError;
pub use fs::{FaultFs, FaultKind, OpKind, RealFs, StorageFile, StorageFs, SyncHandle};
pub use record::Record;
pub use recover::{recover, recover_with};
pub use wal::SyncTicket;
