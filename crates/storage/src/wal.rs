//! The append-only write-ahead log file.
//!
//! ## File layout
//!
//! ```text
//! [8-byte magic "CYWALv1\n"]
//! frame*                          where frame = [len u32][crc u32][payload]
//! ```
//!
//! `len` is the payload length, `crc` its CRC-32. Each committed unit is a
//! frame sequence `Begin{txid}, op*, Commit{txid}`, written with a **single**
//! `write` call followed by one `fsync`; the commit only counts once the
//! `Commit` frame is fully on disk.
//!
//! ## Torn-tail discipline
//!
//! [`scan`] walks frames from the header until the first sign of damage —
//! a short header, a length running past EOF, a CRC mismatch, an
//! undecodable payload, or a unit that ends without its `Commit`. Everything
//! from the last good commit boundary onward is reported as garbage via
//! [`Scan::committed_len`]; [`Wal::open_append`] truncates it away before
//! appending anything new, so a crashed half-write can never be interpreted
//! as data, no matter what bytes it left behind.
//!
//! ## Durable-length discipline
//!
//! The handle tracks [`durable_len`](Wal::durable_len): the byte offset up
//! to which the file is known fsynced. It advances **only after** a
//! successful `write + sync` pair; when either step fails, the append
//! restores the file to `durable_len` (best-effort truncate + re-seek) and
//! reports the error with the in-memory horizon unmoved. The in-memory view
//! therefore can never run ahead of what is durable — the invariant
//! [`DurableGraph`](crate::DurableGraph)'s seal logic builds on.
//!
//! All I/O goes through a [`StorageFs`], so every path here is exercised
//! under deterministic fault injection (see [`crate::fs::FaultFs`]).

use std::io;
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::fs::{StorageFile, StorageFs, SyncHandle};
use crate::record::{arr, Record};

/// Magic + version. Bump the digit when the frame or record format changes.
pub const MAGIC: &[u8; 8] = b"CYWALv1\n";

/// Per-frame overhead: length prefix + CRC.
const FRAME_HEADER: usize = 8;

/// Append one framed payload to `buf`.
fn put_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// An open WAL in append mode.
#[derive(Debug)]
pub struct Wal {
    file: Box<dyn StorageFile>,
    path: PathBuf,
    /// Byte offset up to which the file is known durable (≥ header).
    durable_len: u64,
    /// Bytes written past `durable_len + inflight` but not yet fsynced —
    /// the group commit window (see
    /// [`Wal::append_commit_unit_buffered`]). Zero outside a batch.
    pending: u64,
    /// Bytes staged for an off-thread fsync (between [`Wal::stage_sync`]
    /// and [`Wal::complete_sync`]) — the in-flight half of a pipelined
    /// commit. They sit directly above `durable_len` in the file; the
    /// pending window sits above them. Zero outside a staged sync.
    inflight: u64,
}

/// A staged group-commit fsync: a second handle onto the WAL file that a
/// flush stage may sync **on another thread** while the owning [`Wal`]
/// keeps appending into a fresh pending window. Produced by
/// [`Wal::stage_sync`]; the outcome of [`SyncTicket::sync`] must be
/// reported back through [`Wal::complete_sync`] before the next stage.
#[derive(Debug)]
pub struct SyncTicket {
    handle: Box<dyn SyncHandle>,
}

impl SyncTicket {
    /// Perform the staged fsync (`SyncHandle: Send` — callable off-thread).
    pub fn sync(&mut self) -> io::Result<()> {
        self.handle.sync_data()
    }
}

impl Wal {
    /// Create a fresh log (truncating any existing file), write the header
    /// and fsync it.
    pub fn create(fs: &dyn StorageFs, path: &Path) -> io::Result<Wal> {
        let mut file = fs.create(path)?;
        file.write_all(MAGIC)?;
        file.sync_data()?;
        Ok(Wal {
            file,
            path: path.to_owned(),
            durable_len: MAGIC.len() as u64,
            pending: 0,
            inflight: 0,
        })
    }

    /// Open an existing log for appending, first truncating it to
    /// `committed_len` (as determined by [`scan`]) to drop any torn tail.
    /// The truncation is fsynced before the handle is returned.
    ///
    /// A `committed_len` below the header length means the file never got a
    /// complete header (a crash during creation); the log is recreated.
    pub fn open_append(fs: &dyn StorageFs, path: &Path, committed_len: u64) -> io::Result<Wal> {
        if committed_len < MAGIC.len() as u64 {
            return Wal::create(fs, path);
        }
        let mut file = fs.open_rw(path)?;
        if file.len()? != committed_len {
            file.set_len(committed_len)?;
            file.sync_data()?;
        }
        file.seek_end()?;
        Ok(Wal {
            file,
            path: path.to_owned(),
            durable_len: committed_len,
            pending: 0,
            inflight: 0,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte offset up to which the log is known durable.
    pub fn durable_len(&self) -> u64 {
        self.durable_len
    }

    /// Append one committed unit — `Begin{txid}`, the given operation
    /// records, `Commit{txid}` — as a single write, then fsync.
    ///
    /// On success the unit is durable and `durable_len` advances past it: a
    /// crash at any later point replays it in full. On error the in-memory
    /// horizon does **not** move; whatever partial bytes made it out are
    /// truncated away (best-effort here, and again by the next
    /// [`scan`]/[`open_append`] pair if the truncation itself fails).
    pub fn append_commit_unit(&mut self, txid: u64, ops: &[Record]) -> io::Result<()> {
        self.append_commit_unit_buffered(txid, ops)?;
        self.sync()
    }

    /// Append one committed unit **without** fsyncing — the group-commit
    /// fast path. The unit's bytes are handed to the OS in a single write
    /// but do not count as durable until the next successful
    /// [`sync`](Wal::sync); until then they sit in the `pending` window.
    ///
    /// On a write failure the file is rolled back to the durable horizon,
    /// which discards **every** pending unit of the current batch, not just
    /// this one — the caller (the durable layer) must treat the whole batch
    /// as unlogged.
    pub fn append_commit_unit_buffered(&mut self, txid: u64, ops: &[Record]) -> io::Result<()> {
        let mut unit = Vec::with_capacity(64 + ops.len() * 32);
        let mut payload = Vec::with_capacity(64);
        Record::Begin { txid }.encode(&mut payload);
        put_frame(&mut unit, &payload);
        for op in ops {
            debug_assert!(!matches!(op, Record::Begin { .. } | Record::Commit { .. }));
            payload.clear();
            op.encode(&mut payload);
            put_frame(&mut unit, &payload);
        }
        payload.clear();
        Record::Commit { txid }.encode(&mut payload);
        put_frame(&mut unit, &payload);

        match self.file.write_all(&unit) {
            Ok(()) => {
                self.pending += unit.len() as u64;
                Ok(())
            }
            Err(e) => {
                self.rollback_to_durable();
                Err(e)
            }
        }
    }

    /// Fsync the pending group-commit window. On success every buffered
    /// unit becomes durable at once — one fsync amortized over the batch —
    /// and the horizon advances past all of them. On failure the file is
    /// rolled back to the durable horizon (all pending units discarded) and
    /// the error is reported with the horizon unmoved. A no-op when nothing
    /// is pending.
    pub fn sync(&mut self) -> io::Result<()> {
        debug_assert_eq!(self.inflight, 0, "in-thread sync with a staged sync open");
        if self.pending == 0 {
            return Ok(());
        }
        match self.file.sync_data() {
            Ok(()) => {
                // Only now — after the fsync — does the horizon advance.
                self.durable_len += self.pending;
                self.pending = 0;
                Ok(())
            }
            Err(e) => {
                // Roll the file back to the durable horizon so a surviving
                // process doesn't append after garbage. If this fails too,
                // the scan-side torn-tail discipline still protects reopen.
                self.rollback_to_durable();
                Err(e)
            }
        }
    }

    /// Stage the pending window for an **off-thread** fsync: the pending
    /// bytes move into the in-flight window and a [`SyncTicket`] holding a
    /// second file handle is returned. The caller runs
    /// [`SyncTicket::sync`] (typically on a flusher thread) and reports
    /// its outcome through [`Wal::complete_sync`]; meanwhile new units may
    /// be appended into a fresh pending window. At most one staged sync
    /// may be outstanding at a time.
    pub fn stage_sync(&mut self) -> io::Result<SyncTicket> {
        debug_assert_eq!(self.inflight, 0, "one staged sync at a time");
        let handle = self.file.sync_handle()?;
        self.inflight += self.pending;
        self.pending = 0;
        Ok(SyncTicket { handle })
    }

    /// Record the outcome of a staged fsync. On `Ok` the durable horizon
    /// advances past the in-flight window. On `Err` the file rolls back to
    /// the durable horizon, which discards the failed in-flight bytes
    /// **and** every unit appended since the stage — those sit above the
    /// failed window in the file and can no longer become durable in
    /// order.
    pub fn complete_sync(&mut self, outcome: io::Result<()>) -> io::Result<()> {
        match outcome {
            Ok(()) => {
                self.durable_len += self.inflight;
                self.inflight = 0;
                Ok(())
            }
            Err(e) => {
                self.inflight = 0;
                self.rollback_to_durable();
                Err(e)
            }
        }
    }

    /// Bytes appended but not yet fsynced (the open group-commit window).
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// Bytes staged for an off-thread fsync, not yet resolved.
    pub fn inflight(&self) -> u64 {
        self.inflight
    }

    fn rollback_to_durable(&mut self) {
        // Keep any staged (in-flight) bytes: their fate is decided by
        // `complete_sync`, not by this append-side rollback.
        let _ = self.file.set_len(self.durable_len + self.inflight);
        let _ = self.file.seek_end();
        self.pending = 0;
    }

    /// Reset the log to an empty (header-only) state — the checkpoint
    /// truncation step. Fsynced before returning. The durable horizon only
    /// moves if every step succeeds. Any pending (un-synced) units are
    /// discarded with the rest of the log: the caller checkpoints the full
    /// in-memory graph, which subsumes them.
    pub fn reset(&mut self) -> io::Result<()> {
        debug_assert_eq!(self.inflight, 0, "reset with a staged sync open");
        self.file.set_len(MAGIC.len() as u64)?;
        self.file.seek_end()?;
        self.file.sync_data()?;
        self.durable_len = MAGIC.len() as u64;
        self.pending = 0;
        self.inflight = 0;
        Ok(())
    }

    /// Current file length (diagnostics / tests).
    pub fn len(&self) -> io::Result<u64> {
        self.file.len()
    }

    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? <= MAGIC.len() as u64)
    }
}

/// Result of scanning a log file.
#[derive(Debug, Default)]
pub struct Scan {
    /// Fully-committed units in log order: `(txid, ops)`.
    pub units: Vec<(u64, Vec<Record>)>,
    /// Byte offset just past the last committed unit. Normally at least the
    /// header length; **less** than the header length only when the file is
    /// a torn header (crash during log creation), in which case
    /// [`Wal::open_append`] recreates the log.
    pub committed_len: u64,
    /// Diagnostic describing why scanning stopped early, if it did.
    pub torn: Option<String>,
}

impl Scan {
    /// Highest committed txid, if any unit exists.
    pub fn last_txid(&self) -> Option<u64> {
        self.units.last().map(|(txid, _)| *txid)
    }
}

/// Scan a WAL file, collecting committed units and locating the commit
/// horizon. Corruption never errors — it just ends the scan. A file that is
/// a strict prefix of the magic (including empty) is a crash during log
/// creation and scans as an empty log with `committed_len == 0`; any other
/// garbled *header* does error, because that means the file is not a WAL at
/// all (truncating it on such evidence could destroy user data).
pub fn scan(fs: &dyn StorageFs, path: &Path) -> io::Result<Scan> {
    let data = fs.read(path)?;
    if data.len() < MAGIC.len() {
        return if data[..] == MAGIC[..data.len()] {
            Ok(Scan {
                committed_len: 0,
                torn: Some(format!(
                    "torn header ({} of {} bytes)",
                    data.len(),
                    MAGIC.len()
                )),
                ..Scan::default()
            })
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a WAL file (bad magic)", path.display()),
            ))
        };
    }
    if &data[..MAGIC.len()] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} is not a WAL file (bad magic)", path.display()),
        ));
    }

    let mut scan = Scan {
        committed_len: MAGIC.len() as u64,
        ..Scan::default()
    };
    let mut pos = MAGIC.len();
    // The unit currently being assembled: (txid, ops).
    let mut open_unit: Option<(u64, Vec<Record>)> = None;

    macro_rules! torn {
        ($($msg:tt)*) => {{
            scan.torn = Some(format!($($msg)*));
            return Ok(scan);
        }};
    }

    while pos < data.len() {
        if data.len() - pos < FRAME_HEADER {
            torn!("short frame header at offset {pos}");
        }
        let len = u32::from_le_bytes(arr(&data[pos..pos + 4])) as usize;
        let crc = u32::from_le_bytes(arr(&data[pos + 4..pos + 8]));
        let start = pos + FRAME_HEADER;
        let Some(end) = start.checked_add(len).filter(|&e| e <= data.len()) else {
            torn!("frame at offset {pos} runs past end of file");
        };
        let payload = &data[start..end];
        if crc32(payload) != crc {
            torn!("CRC mismatch at offset {pos}");
        }
        let record = match Record::decode(payload) {
            Ok(r) => r,
            Err(e) => torn!("undecodable record at offset {pos}: {e}"),
        };
        match (&mut open_unit, record) {
            (None, Record::Begin { txid }) => open_unit = Some((txid, Vec::new())),
            (None, other) => torn!("record outside Begin/Commit at offset {pos}: {other:?}"),
            (Some((txid, _)), Record::Commit { txid: c }) if *txid == c => {
                if let Some(unit) = open_unit.take() {
                    scan.units.push(unit);
                    scan.committed_len = end as u64;
                }
            }
            (Some((txid, _)), Record::Commit { txid: c }) => {
                torn!("commit txid {c} does not match begin txid {txid} at offset {pos}");
            }
            (Some(_), Record::Begin { txid }) => {
                torn!("nested Begin {{txid: {txid}}} at offset {pos}");
            }
            (Some((_, ops)), op) => ops.push(op),
        }
        pos = end;
    }
    if let Some((txid, _)) = open_unit {
        scan.torn = Some(format!("unit {txid} has no Commit (crash mid-write)"));
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{FaultFs, FaultKind, OpKind, RealFs};
    use cypher_graph::Value;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cypher-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ops() -> Vec<Record> {
        vec![
            Record::CreateNode {
                id: 0,
                labels: vec!["User".into()],
                props: vec![("id".into(), Value::Int(89))],
            },
            Record::AddLabel {
                node: 0,
                label: "Vendor".into(),
            },
        ]
    }

    #[test]
    fn append_then_scan_round_trips() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.bin");
        let mut wal = Wal::create(&RealFs, &path).unwrap();
        wal.append_commit_unit(1, &ops()).unwrap();
        wal.append_commit_unit(2, &[Record::DeleteNode { id: 0 }])
            .unwrap();
        let scan = scan(&RealFs, &path).unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(scan.units.len(), 2);
        assert_eq!(scan.units[0], (1, ops()));
        assert_eq!(scan.units[1].0, 2);
        assert_eq!(scan.committed_len, wal.len().unwrap());
        assert_eq!(scan.committed_len, wal.durable_len());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn every_truncation_point_recovers_committed_prefix() {
        let dir = tmpdir("trunc");
        let path = dir.join("wal.bin");
        let mut wal = Wal::create(&RealFs, &path).unwrap();
        wal.append_commit_unit(1, &ops()).unwrap();
        let after_first = wal.len().unwrap();
        wal.append_commit_unit(2, &[Record::DeleteNode { id: 0 }])
            .unwrap();
        let full = std::fs::read(&path).unwrap();
        drop(wal);

        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan(&RealFs, &path).unwrap();
            // Only whole committed units survive, whatever the cut point.
            let (units, horizon) = if cut == full.len() {
                (2, full.len() as u64)
            } else if (cut as u64) >= after_first {
                (1, after_first)
            } else if cut >= MAGIC.len() {
                (0, MAGIC.len() as u64)
            } else {
                (0, 0) // torn header: recreate territory
            };
            assert_eq!(scan.units.len(), units, "cut at {cut}");
            assert_eq!(scan.committed_len, horizon, "cut at {cut}");
            // A cut exactly on a commit boundary looks like a clean file;
            // anywhere else the scanner must flag the torn tail.
            let on_boundary = cut == MAGIC.len() || cut as u64 == after_first || cut == full.len();
            assert_eq!(scan.torn.is_some(), !on_boundary, "cut at {cut}");
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bit_flip_in_committed_region_stops_scan_there() {
        let dir = tmpdir("bitflip");
        let path = dir.join("wal.bin");
        let mut wal = Wal::create(&RealFs, &path).unwrap();
        wal.append_commit_unit(1, &ops()).unwrap();
        let after_first = wal.len().unwrap();
        wal.append_commit_unit(2, &[Record::DeleteNode { id: 0 }])
            .unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let i = after_first as usize + FRAME_HEADER; // first payload byte of unit 2
        bytes[i] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan(&RealFs, &path).unwrap();
        assert_eq!(scan.units.len(), 1);
        assert_eq!(scan.committed_len, after_first);
        assert!(scan.torn.unwrap().contains("CRC mismatch"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn open_append_truncates_torn_tail() {
        let dir = tmpdir("reopen");
        let path = dir.join("wal.bin");
        let mut wal = Wal::create(&RealFs, &path).unwrap();
        wal.append_commit_unit(1, &ops()).unwrap();
        let committed = wal.len().unwrap();
        drop(wal);
        // Simulate a crash mid-append: garbage after the commit horizon.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01]);
        std::fs::write(&path, &bytes).unwrap();

        let s = scan(&RealFs, &path).unwrap();
        assert_eq!(s.committed_len, committed);
        let mut wal = Wal::open_append(&RealFs, &path, s.committed_len).unwrap();
        assert_eq!(wal.len().unwrap(), committed);
        wal.append_commit_unit(2, &[Record::DeleteNode { id: 0 }])
            .unwrap();
        let s = scan(&RealFs, &path).unwrap();
        assert!(s.torn.is_none());
        assert_eq!(s.units.len(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_header_recreates_instead_of_erroring() {
        let dir = tmpdir("tornheader");
        let path = dir.join("wal.bin");
        // Crash mid-creation: only part of the magic made it out.
        std::fs::write(&path, &MAGIC[..3]).unwrap();
        let s = scan(&RealFs, &path).unwrap();
        assert_eq!(s.committed_len, 0);
        assert!(s.torn.unwrap().contains("torn header"));
        let mut wal = Wal::open_append(&RealFs, &path, 0).unwrap();
        wal.append_commit_unit(1, &ops()).unwrap();
        let s = scan(&RealFs, &path).unwrap();
        assert_eq!(s.units.len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn non_wal_file_is_an_error_not_a_truncation_candidate() {
        let dir = tmpdir("magic");
        let path = dir.join("not-a-wal");
        std::fs::write(&path, b"precious user data, definitely not a WAL").unwrap();
        assert_eq!(
            scan(&RealFs, &path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Short but non-prefix garbage is equally protected.
        std::fs::write(&path, b"hi").unwrap();
        assert_eq!(
            scan(&RealFs, &path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// The satellite regression: a failed `sync_data` after a successful
    /// `write` must not advance the durable horizon, and the partial bytes
    /// must be rolled back so a follow-up append lands at the right offset.
    #[test]
    fn failed_fsync_does_not_advance_durable_len() {
        let dir = tmpdir("fsyncfail");
        let path = dir.join("wal.bin");
        // Sync 0 is Wal::create's header sync; sync 1 is the first append's.
        let fault = FaultFs::fail_on(OpKind::Sync, 1, FaultKind::SyncFailure);
        let fs = fault.arc();
        let mut wal = Wal::create(fs.as_ref(), &path).unwrap();
        let before = wal.durable_len();
        let err = wal.append_commit_unit(1, &ops()).unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        assert!(fault.triggered());
        assert_eq!(wal.durable_len(), before, "horizon must not move");
        assert_eq!(wal.len().unwrap(), before, "partial bytes truncated");

        // The handle is still usable at the storage level (the durable
        // layer seals above; the WAL itself reconciled): a retried append
        // lands exactly at the durable horizon.
        wal.append_commit_unit(1, &ops()).unwrap();
        let s = scan(&RealFs, &path).unwrap();
        assert!(s.torn.is_none());
        assert_eq!(s.units.len(), 1);
        assert_eq!(s.units[0], (1, ops()));
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Group commit: several buffered units become durable with one fsync.
    #[test]
    fn buffered_units_become_durable_on_one_sync() {
        let dir = tmpdir("groupcommit");
        let path = dir.join("wal.bin");
        let counting = FaultFs::counting();
        let fs = counting.arc();
        let mut wal = Wal::create(fs.as_ref(), &path).unwrap();
        let syncs_after_create = counting.ops_of(OpKind::Sync);
        let before = wal.durable_len();
        wal.append_commit_unit_buffered(1, &ops()).unwrap();
        wal.append_commit_unit_buffered(2, &[Record::DeleteNode { id: 0 }])
            .unwrap();
        assert_eq!(wal.durable_len(), before, "horizon waits for the sync");
        assert!(wal.pending() > 0);
        wal.sync().unwrap();
        assert_eq!(wal.pending(), 0);
        assert_eq!(wal.durable_len(), wal.len().unwrap());
        assert_eq!(
            counting.ops_of(OpKind::Sync) - syncs_after_create,
            1,
            "exactly one fsync for the whole batch"
        );
        let s = scan(&RealFs, &path).unwrap();
        assert_eq!(s.units.len(), 2);
        assert!(s.torn.is_none());
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A failed batch fsync discards every pending unit, not a prefix.
    #[test]
    fn failed_batch_sync_discards_all_pending_units() {
        let dir = tmpdir("groupsyncfail");
        let path = dir.join("wal.bin");
        // Sync 0 is Wal::create's header sync; sync 1 is the batch sync.
        let fault = FaultFs::fail_on(OpKind::Sync, 1, FaultKind::SyncFailure);
        let fs = fault.arc();
        let mut wal = Wal::create(fs.as_ref(), &path).unwrap();
        wal.append_commit_unit_buffered(1, &ops()).unwrap();
        wal.append_commit_unit_buffered(2, &[Record::DeleteNode { id: 0 }])
            .unwrap();
        wal.sync().unwrap_err();
        assert_eq!(wal.pending(), 0);
        assert_eq!(wal.durable_len(), MAGIC.len() as u64);
        assert_eq!(wal.len().unwrap(), MAGIC.len() as u64);
        let s = scan(&RealFs, &path).unwrap();
        assert!(s.units.is_empty(), "no unit of the batch survived");
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// The pipelined path: batch N's staged fsync runs on another thread
    /// while batch N+1 is appended; completion advances the horizon past
    /// exactly batch N, and the follow-up sync covers batch N+1.
    #[test]
    fn staged_sync_overlaps_new_appends() {
        let dir = tmpdir("stagedoverlap");
        let path = dir.join("wal.bin");
        let mut wal = Wal::create(&RealFs, &path).unwrap();
        wal.append_commit_unit_buffered(1, &ops()).unwrap();
        let batch_n = wal.pending();
        let mut ticket = wal.stage_sync().unwrap();
        assert_eq!(wal.pending(), 0);
        assert_eq!(wal.inflight(), batch_n);

        // Batch N+1 lands in a fresh pending window while N is in flight.
        wal.append_commit_unit_buffered(2, &[Record::DeleteNode { id: 0 }])
            .unwrap();
        assert!(wal.pending() > 0);

        let outcome = std::thread::spawn(move || ticket.sync()).join().unwrap();
        wal.complete_sync(outcome).unwrap();
        assert_eq!(wal.inflight(), 0);
        assert_eq!(wal.durable_len(), MAGIC.len() as u64 + batch_n);

        wal.sync().unwrap();
        assert_eq!(wal.durable_len(), wal.len().unwrap());
        let s = scan(&RealFs, &path).unwrap();
        assert_eq!(s.units.len(), 2);
        assert!(s.torn.is_none());
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A failed staged fsync discards the in-flight batch AND everything
    /// appended after it — later units cannot become durable in order.
    #[test]
    fn failed_staged_sync_discards_inflight_and_later_pending() {
        let dir = tmpdir("stagedfail");
        let path = dir.join("wal.bin");
        // Sync 0 is Wal::create's header sync; sync 1 is the staged one.
        let fault = FaultFs::fail_on(OpKind::Sync, 1, FaultKind::SyncFailure);
        let fs = fault.arc();
        let mut wal = Wal::create(fs.as_ref(), &path).unwrap();
        wal.append_commit_unit_buffered(1, &ops()).unwrap();
        let mut ticket = wal.stage_sync().unwrap();
        wal.append_commit_unit_buffered(2, &[Record::DeleteNode { id: 0 }])
            .unwrap();
        let outcome = ticket.sync();
        assert!(outcome.is_err());
        wal.complete_sync(outcome).unwrap_err();
        assert_eq!(wal.pending(), 0);
        assert_eq!(wal.inflight(), 0);
        assert_eq!(wal.durable_len(), MAGIC.len() as u64);
        assert_eq!(wal.len().unwrap(), MAGIC.len() as u64);
        let s = scan(&RealFs, &path).unwrap();
        assert!(s.units.is_empty(), "neither batch survived");
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// An append failure while a staged sync is in flight must roll back
    /// only the pending window — the staged bytes' fate belongs to
    /// `complete_sync`, and here they resolve durable.
    #[test]
    fn append_failure_preserves_staged_window() {
        let dir = tmpdir("stagedappendfail");
        let path = dir.join("wal.bin");
        // Write 0 is the header; write 1 is batch N; write 2 (batch N+1)
        // fails short.
        let fault = FaultFs::fail_on(OpKind::Write, 2, FaultKind::ShortWrite);
        let fs = fault.arc();
        let mut wal = Wal::create(fs.as_ref(), &path).unwrap();
        wal.append_commit_unit_buffered(1, &ops()).unwrap();
        let batch_n = wal.pending();
        let mut ticket = wal.stage_sync().unwrap();
        wal.append_commit_unit_buffered(2, &[Record::DeleteNode { id: 0 }])
            .unwrap_err();
        assert_eq!(wal.inflight(), batch_n, "staged window untouched");
        assert_eq!(wal.len().unwrap(), MAGIC.len() as u64 + batch_n);

        wal.complete_sync(ticket.sync()).unwrap();
        assert_eq!(wal.durable_len(), MAGIC.len() as u64 + batch_n);
        let s = scan(&RealFs, &path).unwrap();
        assert_eq!(s.units.len(), 1, "batch N is durable, N+1 discarded");
        assert_eq!(s.units[0], (1, ops()));
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// `sync` with an empty window is free (no fsync issued).
    #[test]
    fn sync_without_pending_is_a_noop() {
        let dir = tmpdir("noopsync");
        let path = dir.join("wal.bin");
        let counting = FaultFs::counting();
        let fs = counting.arc();
        let mut wal = Wal::create(fs.as_ref(), &path).unwrap();
        let syncs = counting.ops_of(OpKind::Sync);
        wal.sync().unwrap();
        assert_eq!(counting.ops_of(OpKind::Sync), syncs);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Same discipline for a short write (ENOSPC mid-buffer).
    #[test]
    fn short_write_rolls_back_to_durable_horizon() {
        let dir = tmpdir("shortwrite");
        let path = dir.join("wal.bin");
        // Write 0 is the header; write 1 is the first commit unit.
        let fault = FaultFs::fail_on(OpKind::Write, 1, FaultKind::ShortWrite);
        let fs = fault.arc();
        let mut wal = Wal::create(fs.as_ref(), &path).unwrap();
        wal.append_commit_unit(1, &ops()).unwrap_err();
        assert_eq!(wal.durable_len(), MAGIC.len() as u64);
        assert_eq!(wal.len().unwrap(), MAGIC.len() as u64);
        let s = scan(&RealFs, &path).unwrap();
        assert!(s.units.is_empty());
        assert!(s.torn.is_none(), "partial unit fully rolled back");
        std::fs::remove_dir_all(dir).unwrap();
    }
}
