//! Random property graphs for matching and update benchmarks, and random
//! value generation for property tests.

use cypher_graph::{NodeId, PropertyGraph, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_graph`].
#[derive(Clone, Copy, Debug)]
pub struct RandomGraphConfig {
    pub nodes: usize,
    pub rels: usize,
    /// Number of distinct labels; each node gets one.
    pub labels: usize,
    /// Number of distinct relationship types.
    pub types: usize,
    pub seed: u64,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            nodes: 1_000,
            rels: 5_000,
            labels: 4,
            types: 3,
            seed: 42,
        }
    }
}

/// Uniform random multigraph with labelled nodes and an integer `id`
/// property per node.
pub fn random_graph(cfg: &RandomGraphConfig) -> PropertyGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = PropertyGraph::new();
    let labels: Vec<_> = (0..cfg.labels.max(1))
        .map(|i| g.sym(&format!("L{i}")))
        .collect();
    let types: Vec<_> = (0..cfg.types.max(1))
        .map(|i| g.sym(&format!("T{i}")))
        .collect();
    let id_k = g.sym("id");
    let nodes: Vec<NodeId> = (0..cfg.nodes)
        .map(|i| {
            let label = labels[rng.gen_range(0..labels.len())];
            g.create_node([label], [(id_k, Value::Int(i as i64))])
        })
        .collect();
    if !nodes.is_empty() {
        for _ in 0..cfg.rels {
            let src = nodes[rng.gen_range(0..nodes.len())];
            let tgt = nodes[rng.gen_range(0..nodes.len())];
            let ty = types[rng.gen_range(0..types.len())];
            crate::link(&mut g, src, ty, tgt);
        }
    }
    g
}

/// A chain graph `(0)-[:NEXT]->(1)-…->(n-1)`, for variable-length path
/// benchmarks.
pub fn chain_graph(len: usize) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let node_l = g.sym("Node");
    let next_t = g.sym("NEXT");
    let id_k = g.sym("id");
    let mut prev: Option<NodeId> = None;
    for i in 0..len {
        let n = g.create_node([node_l], [(id_k, Value::Int(i as i64))]);
        if let Some(p) = prev {
            crate::link(&mut g, p, next_t, n);
        }
        prev = Some(n);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_counts() {
        let g = random_graph(&RandomGraphConfig {
            nodes: 50,
            rels: 120,
            ..Default::default()
        });
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.rel_count(), 120);
        g.integrity_check().unwrap();
    }

    #[test]
    fn random_graph_deterministic() {
        let cfg = RandomGraphConfig::default();
        let a = cypher_graph::fmt::dump(&random_graph(&cfg));
        let b = cypher_graph::fmt::dump(&random_graph(&cfg));
        assert_eq!(a, b);
    }

    #[test]
    fn chain_graph_shape() {
        let g = chain_graph(10);
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.rel_count(), 9);
    }

    #[test]
    fn chain_graph_of_zero_and_one() {
        assert_eq!(chain_graph(0).node_count(), 0);
        let g = chain_graph(1);
        assert_eq!((g.node_count(), g.rel_count()), (1, 0));
    }
}
