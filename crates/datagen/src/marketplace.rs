//! The paper's marketplace schema: the exact Figure 1 graph, and a
//! scalable synthetic marketplace in the same shape.

use cypher_graph::{NodeId, PropertyGraph, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Handles to the named nodes of Figure 1 (solid lines only).
#[derive(Clone, Copy, Debug)]
pub struct Figure1Nodes {
    pub v1: NodeId,
    pub p1: NodeId,
    pub p2: NodeId,
    pub p3: NodeId,
    pub u1: NodeId,
    pub u2: NodeId,
}

/// Build the Figure 1 base graph (solid lines): one vendor, three products
/// (two sharing the dirty id 125), two users, and the six relationships.
pub fn figure1_graph() -> (PropertyGraph, Figure1Nodes) {
    let mut g = PropertyGraph::new();
    let product = g.sym("Product");
    let vendor = g.sym("Vendor");
    let user = g.sym("User");
    let offers = g.sym("OFFERS");
    let ordered = g.sym("ORDERED");
    let id_k = g.sym("id");
    let name_k = g.sym("name");

    let v1 = g.create_node(
        [vendor],
        [(id_k, Value::Int(60)), (name_k, Value::str("cStore"))],
    );
    let p1 = g.create_node(
        [product],
        [(id_k, Value::Int(125)), (name_k, Value::str("laptop"))],
    );
    let p2 = g.create_node(
        [product],
        [(id_k, Value::Int(125)), (name_k, Value::str("notebook"))],
    );
    let p3 = g.create_node(
        [product],
        [(id_k, Value::Int(85)), (name_k, Value::str("tablet"))],
    );
    let u1 = g.create_node(
        [user],
        [(id_k, Value::Int(89)), (name_k, Value::str("Bob"))],
    );
    let u2 = g.create_node(
        [user],
        [(id_k, Value::Int(99)), (name_k, Value::str("Jane"))],
    );
    crate::link(&mut g, v1, offers, p1);
    crate::link(&mut g, v1, offers, p2);
    crate::link(&mut g, u1, ordered, p1);
    crate::link(&mut g, u1, ordered, p3);
    crate::link(&mut g, u2, ordered, p3);
    crate::link(&mut g, u2, offers, p3);

    (
        g,
        Figure1Nodes {
            v1,
            p1,
            p2,
            p3,
            u1,
            u2,
        },
    )
}

/// Parameters for the scalable marketplace generator.
#[derive(Clone, Copy, Debug)]
pub struct MarketplaceConfig {
    pub users: usize,
    pub vendors: usize,
    pub products: usize,
    /// Total `:ORDERED` relationships (user → product).
    pub orders: usize,
    /// Total `:OFFERS` relationships (vendor → product).
    pub offers: usize,
    pub seed: u64,
}

impl Default for MarketplaceConfig {
    fn default() -> Self {
        MarketplaceConfig {
            users: 100,
            vendors: 10,
            products: 200,
            orders: 500,
            offers: 250,
            seed: 42,
        }
    }
}

/// Generate a marketplace graph in the Figure 1 schema. Every product is
/// offered by at least its "home" vendor so that Query (5)-style `MERGE`
/// has matches as well as misses.
pub fn marketplace_graph(cfg: &MarketplaceConfig) -> PropertyGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = PropertyGraph::new();
    let product = g.sym("Product");
    let vendor = g.sym("Vendor");
    let user = g.sym("User");
    let offers = g.sym("OFFERS");
    let ordered = g.sym("ORDERED");
    let id_k = g.sym("id");
    let name_k = g.sym("name");
    let price_k = g.sym("price");

    let users: Vec<NodeId> = (0..cfg.users)
        .map(|i| {
            g.create_node(
                [user],
                [
                    (id_k, Value::Int(i as i64)),
                    (name_k, Value::Str(format!("user-{i}"))),
                ],
            )
        })
        .collect();
    let vendors: Vec<NodeId> = (0..cfg.vendors)
        .map(|i| {
            g.create_node(
                [vendor],
                [
                    (id_k, Value::Int(1_000 + i as i64)),
                    (name_k, Value::Str(format!("vendor-{i}"))),
                ],
            )
        })
        .collect();
    let products: Vec<NodeId> = (0..cfg.products)
        .map(|i| {
            g.create_node(
                [product],
                [
                    (id_k, Value::Int(10_000 + i as i64)),
                    (name_k, Value::Str(format!("product-{i}"))),
                    (price_k, Value::Int(rng.gen_range(1..=2_000))),
                ],
            )
        })
        .collect();

    if !vendors.is_empty() {
        for (i, &p) in products.iter().enumerate() {
            let home = vendors[i % vendors.len()];
            crate::link(&mut g, home, offers, p);
        }
        for _ in products.len()..cfg.offers {
            let v = vendors[rng.gen_range(0..vendors.len())];
            let p = products[rng.gen_range(0..products.len())];
            crate::link(&mut g, v, offers, p);
        }
    }
    if !users.is_empty() && !products.is_empty() {
        for _ in 0..cfg.orders {
            let u = users[rng.gen_range(0..users.len())];
            let p = products[rng.gen_range(0..products.len())];
            crate::link(&mut g, u, ordered, p);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_graph::GraphSummary;

    #[test]
    fn figure1_shape() {
        let (g, ids) = figure1_graph();
        let s = GraphSummary::of(&g);
        assert_eq!(s.nodes, 6);
        assert_eq!(s.rels, 6);
        assert_eq!(s.labels["Product"], 3);
        assert_eq!(s.types["OFFERS"], 3);
        assert_eq!(s.types["ORDERED"], 3);
        // Dirty data: p1 and p2 share id 125.
        let id_k = g.try_sym("id").unwrap();
        assert_eq!(g.prop(ids.p1.into(), id_k), Value::Int(125));
        assert_eq!(g.prop(ids.p2.into(), id_k), Value::Int(125));
    }

    #[test]
    fn marketplace_is_deterministic_per_seed() {
        let cfg = MarketplaceConfig::default();
        let a = GraphSummary::of(&marketplace_graph(&cfg));
        let b = GraphSummary::of(&marketplace_graph(&cfg));
        assert_eq!(a, b);
        let c = GraphSummary::of(&marketplace_graph(&MarketplaceConfig { seed: 7, ..cfg }));
        assert_eq!(a.nodes, c.nodes); // same sizes…
    }

    #[test]
    fn marketplace_respects_config() {
        let cfg = MarketplaceConfig {
            users: 5,
            vendors: 2,
            products: 10,
            orders: 20,
            offers: 15,
            seed: 1,
        };
        let g = marketplace_graph(&cfg);
        let s = GraphSummary::of(&g);
        assert_eq!(s.nodes, 17);
        assert_eq!(s.types["ORDERED"], 20);
        assert_eq!(s.types["OFFERS"], 15);
        g.integrity_check().unwrap();
    }

    #[test]
    fn every_product_has_an_offer() {
        let g = marketplace_graph(&MarketplaceConfig::default());
        let product = g.try_sym("Product").unwrap();
        for p in g.nodes_with_label(product).collect::<Vec<_>>() {
            assert!(
                !g.rels_of(p, cypher_graph::Direction::Incoming).is_empty(),
                "product {p} has no offer"
            );
        }
    }
}
