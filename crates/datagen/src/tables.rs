//! Driving-table generators.
//!
//! The `MERGE` experiments of §5–§6 all start from "a table that has been
//! produced by importing from a relational database or a CSV file". A table
//! here is a `Vec` of rows; [`rows_as_value`] converts one into a
//! [`Value::List`] of maps so it can be fed to the engine as a statement
//! parameter (`UNWIND $rows AS row …`).

use std::collections::BTreeMap;

use cypher_graph::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A row: column name → value.
pub type Row = Vec<(&'static str, Value)>;

/// Convert rows into a list-of-maps parameter value.
pub fn rows_as_value(rows: &[Row]) -> Value {
    Value::List(
        rows.iter()
            .map(|row| {
                let map: BTreeMap<String, Value> = row
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), v.clone()))
                    .collect();
                Value::Map(map)
            })
            .collect(),
    )
}

/// Example 3's driving table: (user, product, vendor) over pre-existing
/// nodes identified by their `k` property.
pub fn example3_table() -> Vec<Row> {
    [("u1", "p", "v1"), ("u2", "p", "v2"), ("u1", "p", "v2")]
        .into_iter()
        .map(|(u, p, v)| {
            vec![
                ("user", Value::str(u)),
                ("product", Value::str(p)),
                ("vendor", Value::str(v)),
            ]
        })
        .collect()
}

/// Example 5's driving table: (cid, pid, date) with duplicate rows and
/// null ids, exactly as printed in the paper.
pub fn example5_table() -> Vec<Row> {
    let row = |cid: i64, pid: Option<i64>, date: Option<&str>| -> Row {
        vec![
            ("cid", Value::Int(cid)),
            ("pid", pid.map(Value::Int).unwrap_or(Value::Null)),
            ("date", date.map(Value::str).unwrap_or(Value::Null)),
        ]
    };
    vec![
        row(98, Some(125), Some("2018-06-23")),
        row(98, Some(125), Some("2018-07-06")),
        row(98, None, None),
        row(98, None, None),
        row(99, Some(125), Some("2018-03-11")),
        row(99, None, None),
    ]
}

/// Example 6's driving table: (bid, pid, sid) — sales between two users.
pub fn example6_table() -> Vec<Row> {
    vec![
        vec![
            ("bid", Value::Int(98)),
            ("pid", Value::Int(125)),
            ("sid", Value::Int(97)),
        ],
        vec![
            ("bid", Value::Int(99)),
            ("pid", Value::Int(85)),
            ("sid", Value::Int(98)),
        ],
    ]
}

/// Example 7's driving table: the single clickstream row
/// (a, b, c, d, e, tgt) = (p1, p2, p3, p1, p2, p4), as product keys.
pub fn example7_table() -> Vec<Row> {
    vec![vec![
        ("a", Value::Int(1)),
        ("b", Value::Int(2)),
        ("c", Value::Int(3)),
        ("d", Value::Int(1)),
        ("e", Value::Int(2)),
        ("tgt", Value::Int(4)),
    ]]
}

/// Parameters for the synthetic order-import table.
#[derive(Clone, Copy, Debug)]
pub struct OrderTableConfig {
    /// Number of rows to generate.
    pub rows: usize,
    /// Distinct customer ids to draw from.
    pub customers: usize,
    /// Distinct product ids to draw from.
    pub products: usize,
    /// Probability that a row repeats an already-emitted (cid, pid) pair.
    pub duplicate_ratio: f64,
    /// Probability that `pid` is null (dirty data, Example 5).
    pub null_ratio: f64,
    pub seed: u64,
}

impl Default for OrderTableConfig {
    fn default() -> Self {
        OrderTableConfig {
            rows: 1_000,
            customers: 100,
            products: 200,
            duplicate_ratio: 0.2,
            null_ratio: 0.05,
            seed: 42,
        }
    }
}

/// Generate an import table of (cid, pid, date) rows with controlled
/// duplication and null density — the §5 "populate a graph based on a
/// table" workload at benchmark scale.
pub fn order_table(cfg: &OrderTableConfig) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut emitted: Vec<(i64, Value)> = Vec::new();
    let mut out = Vec::with_capacity(cfg.rows);
    for i in 0..cfg.rows {
        let (cid, pid) = if !emitted.is_empty() && rng.gen_bool(cfg.duplicate_ratio) {
            emitted[rng.gen_range(0..emitted.len())].clone()
        } else {
            let cid = rng.gen_range(0..cfg.customers as i64);
            let pid = if rng.gen_bool(cfg.null_ratio) {
                Value::Null
            } else {
                Value::Int(rng.gen_range(0..cfg.products as i64))
            };
            emitted.push((cid, pid.clone()));
            (cid, pid)
        };
        out.push(vec![
            ("cid", Value::Int(cid)),
            ("pid", pid),
            ("date", Value::Str(format!("2018-01-{:02}", 1 + i % 28))),
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example5_table_matches_paper() {
        let t = example5_table();
        assert_eq!(t.len(), 6);
        // Rows 3 and 4 are identical null orders for customer 98.
        assert_eq!(t[2], t[3]);
        assert_eq!(t[2][1].1, Value::Null);
    }

    #[test]
    fn rows_as_value_builds_maps() {
        let v = rows_as_value(&example6_table());
        let Value::List(items) = &v else { panic!() };
        assert_eq!(items.len(), 2);
        let Value::Map(m) = &items[0] else { panic!() };
        assert_eq!(m["bid"], Value::Int(98));
        assert_eq!(m["sid"], Value::Int(97));
    }

    #[test]
    fn order_table_is_deterministic_and_sized() {
        let cfg = OrderTableConfig {
            rows: 500,
            ..Default::default()
        };
        let a = order_table(&cfg);
        let b = order_table(&cfg);
        assert_eq!(a.len(), 500);
        assert_eq!(a, b);
    }

    #[test]
    fn order_table_duplicate_ratio_has_an_effect() {
        let base = OrderTableConfig {
            rows: 2_000,
            duplicate_ratio: 0.0,
            null_ratio: 0.0,
            ..Default::default()
        };
        let unique_pairs = |rows: &[Row]| {
            let mut set = std::collections::BTreeSet::new();
            for r in rows {
                set.insert(format!("{}-{}", r[0].1, r[1].1));
            }
            set.len()
        };
        let none = unique_pairs(&order_table(&base));
        let heavy = unique_pairs(&order_table(&OrderTableConfig {
            duplicate_ratio: 0.9,
            ..base
        }));
        assert!(heavy < none / 2, "duplicates should collapse pair count");
    }

    #[test]
    fn order_table_null_ratio_has_an_effect() {
        let rows = order_table(&OrderTableConfig {
            rows: 1_000,
            null_ratio: 0.5,
            duplicate_ratio: 0.0,
            ..Default::default()
        });
        let nulls = rows.iter().filter(|r| r[1].1 == Value::Null).count();
        assert!(nulls > 300 && nulls < 700, "got {nulls} nulls");
    }
}
