//! # cypher-datagen — workloads for the reproduction experiments
//!
//! Generators for the graphs and driving tables used throughout the paper
//! and by the benchmark harness:
//!
//! * [`marketplace`] — the Figure 1 running-example graph, plus a scalable
//!   synthetic marketplace (users / vendors / products / orders) in the
//!   same schema;
//! * [`tables`] — driving tables for the `MERGE` experiments: the exact
//!   tables of Examples 3, 5, 6 and 7, and a parameterized order-table
//!   generator with tunable duplicate and null ratios (the "import from a
//!   relational database or a CSV file" workload of §5/§6);
//! * [`random`] — random property graphs for pattern-matching benchmarks;
//! * [`csv`] — a minimal CSV reader/writer so the import examples can
//!   round-trip through actual CSV text.
//!
//! All generators are deterministic given a seed.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod csv;
pub mod marketplace;
pub mod random;
pub mod tables;

pub use marketplace::{figure1_graph, marketplace_graph, Figure1Nodes, MarketplaceConfig};

/// Link two nodes a generator just created. Endpoints are always live
/// here, so failure means the generator itself is broken.
pub(crate) fn link(
    g: &mut cypher_graph::PropertyGraph,
    src: cypher_graph::NodeId,
    ty: cypher_graph::Symbol,
    tgt: cypher_graph::NodeId,
) {
    if g.create_rel(src, ty, tgt, []).is_err() {
        unreachable!("generator linked a deleted node");
    }
}
pub use tables::{
    example3_table, example5_table, example6_table, example7_table, order_table, rows_as_value,
    OrderTableConfig,
};
