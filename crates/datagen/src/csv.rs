//! Minimal CSV support for the import examples.
//!
//! §5 reports that `MERGE` "is often used to populate a graph based on a
//! table that has been produced by importing from a relational database or
//! a CSV file". The import example round-trips through real CSV text using
//! this module (quoted fields, embedded commas/quotes/newlines; empty
//! fields read back as `null`).

use std::collections::BTreeMap;

use cypher_graph::Value;

/// Serialize rows (uniform keys assumed) to CSV with a header line.
pub fn to_csv(rows: &[Vec<(&str, Value)>]) -> String {
    let Some(first) = rows.first() else {
        return String::new();
    };
    let headers: Vec<&str> = first.iter().map(|(k, _)| *k).collect();
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .map(|(_, v)| match v {
                Value::Null => String::new(),
                Value::Str(s) => escape(s),
                other => escape(&other.to_string()),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Parse CSV text into a list of maps (one per data line). Empty fields
/// become `null`; numeric-looking fields become integers or floats.
pub fn parse_csv(text: &str) -> Vec<BTreeMap<String, Value>> {
    let mut records = split_records(text).into_iter();
    let Some(header) = records.next() else {
        return vec![];
    };
    records
        .map(|fields| {
            header
                .iter()
                .enumerate()
                .map(|(i, h)| {
                    let raw = fields.get(i).map(String::as_str).unwrap_or("");
                    (h.clone(), parse_field(raw))
                })
                .collect()
        })
        .collect()
}

/// Parse CSV into a [`Value::List`] of maps, ready to pass as an engine
/// parameter for `UNWIND $rows AS row`.
pub fn csv_as_value(text: &str) -> Value {
    Value::List(parse_csv(text).into_iter().map(Value::Map).collect())
}

fn parse_field(raw: &str) -> Value {
    if raw.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Value::Float(f);
    }
    // Strip the quotes a stored string value may carry.
    Value::str(raw)
}

/// RFC-4180-ish record splitter handling quoted fields.
fn split_records(text: &str) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        saw_any = true;
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut field));
            }
            '\n' if !in_quotes => {
                fields.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut fields));
            }
            '\r' if !in_quotes => {} // tolerate CRLF
            c => field.push(c),
        }
    }
    if saw_any && (!field.is_empty() || !fields.is_empty()) {
        fields.push(field);
        records.push(fields);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let rows = vec![
            vec![("cid", Value::Int(98)), ("pid", Value::Int(125))],
            vec![("cid", Value::Int(98)), ("pid", Value::Null)],
        ];
        let text = to_csv(&rows);
        assert_eq!(text, "cid,pid\n98,125\n98,\n");
        let parsed = parse_csv(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0]["cid"], Value::Int(98));
        assert_eq!(parsed[1]["pid"], Value::Null);
    }

    #[test]
    fn quoted_fields() {
        let text = "name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\n";
        let parsed = parse_csv(text);
        assert_eq!(parsed[0]["name"], Value::str("Smith, John"));
        assert_eq!(parsed[0]["notes"], Value::str("said \"hi\""));
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let text = "a,b\n\"line1\nline2\",2\n";
        let parsed = parse_csv(text);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0]["a"], Value::str("line1\nline2"));
    }

    #[test]
    fn numeric_coercion() {
        let parsed = parse_csv("x,y,z\n1,2.5,abc\n");
        assert_eq!(parsed[0]["x"], Value::Int(1));
        assert_eq!(parsed[0]["y"], Value::Float(2.5));
        assert_eq!(parsed[0]["z"], Value::str("abc"));
    }

    #[test]
    fn empty_input() {
        assert!(parse_csv("").is_empty());
        assert_eq!(to_csv(&[]), "");
    }

    #[test]
    fn missing_trailing_newline_tolerated() {
        let parsed = parse_csv("a,b\n1,2");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0]["b"], Value::Int(2));
    }

    #[test]
    fn csv_as_value_is_unwindable() {
        let v = csv_as_value("cid,pid\n98,125\n");
        let Value::List(items) = v else { panic!() };
        assert!(matches!(items[0], Value::Map(_)));
    }

    #[test]
    fn roundtrip_with_strings_and_escapes() {
        let rows = vec![vec![
            ("name", Value::str("a,b")),
            ("note", Value::str("x\"y")),
        ]];
        let text = to_csv(&rows);
        let parsed = parse_csv(&text);
        assert_eq!(parsed[0]["name"], Value::str("a,b"));
        assert_eq!(parsed[0]["note"], Value::str("x\"y"));
    }
}
