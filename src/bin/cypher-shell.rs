//! `cypher-shell` — an interactive REPL over the reproduction engine.
//!
//! Statements end with `;`. Both dialects are available at runtime:
//!
//! ```text
//! $ cargo run --bin cypher-shell
//! cypher (legacy)> CREATE (:User {id: 1});
//! (no rows) … 1 node created
//! cypher (legacy)> :dialect revised
//! cypher (revised)> MERGE SAME (:User {id: 1})-[:ORDERED]->(:Product {id: 9});
//! ```
//!
//! Meta commands:
//!
//! | command | effect |
//! |---|---|
//! | `:help` | list commands |
//! | `:dialect legacy\|revised` | switch semantics (§3 vs §7) |
//! | `:order forward\|reverse` | legacy record processing order (Example 3) |
//! | `:match iso\|homo` | relationship-uniqueness discipline (Example 7) |
//! | `:policy atomic\|grouping\|weak\|collapse\|strong\|off` | force a §6 MERGE proposal |
//! | `:load csv <file> <param>` | load a CSV file into `$param` |
//! | `:source <file>` | run a `;`-separated Cypher script |
//! | `:save <file>` | export the graph as a Cypher CREATE script |
//! | `:open <dir>` | open a durable store (WAL + snapshot) in `<dir>` |
//! | `:checkpoint` | snapshot the open store and truncate its WAL |
//! | `:close` | checkpoint and detach from the store |
//! | `:limits [rows N] [writes N] [time MS] \| off` | per-statement execution budgets |
//! | `:lint off\|warn\|deny` | static update-hazard analysis before each statement |
//! | `:dump` | print the graph |
//! | `:stats` | print cardinality statistics and per-index hit/miss counters |
//! | `:reset` | empty the graph |
//! | `:quit` | exit |

use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use cypher_core::{
    Dialect, Engine, EngineBuilder, ExecLimits, LintMode, MatchMode, MergePolicy, ProcessingOrder,
};
use cypher_graph::{fmt::dump, CardinalityStats, GraphSummary, PropertyGraph, Value};
use cypher_storage::DurableGraph;

/// Where statements execute: a plain in-memory graph, or one bound to a
/// storage directory with every committed statement write-ahead logged.
// Both variants boxed: a graph (and even more so a durable handle) is
// hundreds of bytes inline, and the enum moves by value on :open/:close.
enum Store {
    Memory(Box<PropertyGraph>),
    Durable(Box<DurableGraph>),
}

impl Store {
    fn graph(&self) -> &PropertyGraph {
        match self {
            Store::Memory(g) => g,
            Store::Durable(d) => d.graph(),
        }
    }
}

struct Shell {
    store: Store,
    dialect: Dialect,
    order: ProcessingOrder,
    match_mode: MatchMode,
    policy: Option<MergePolicy>,
    params: Vec<(String, Value)>,
    limits: ExecLimits,
    lint: LintMode,
}

impl Shell {
    fn new() -> Self {
        Shell {
            store: Store::Memory(Box::new(PropertyGraph::new())),
            dialect: Dialect::Cypher9,
            order: ProcessingOrder::Forward,
            match_mode: MatchMode::EdgeIsomorphic,
            policy: None,
            params: Vec::new(),
            limits: ExecLimits::NONE,
            // Warn by default: hazards print with carets but never change
            // what executes (the differential suite pins this down).
            lint: LintMode::Warn,
        }
    }

    /// Lint `text` (a statement or whole script) and render diagnostics.
    /// Returns `false` when [`LintMode::Deny`] refuses execution. Parse
    /// errors are left for the engine so they are reported exactly once.
    fn lint_gate(&self, text: &str) -> bool {
        if self.lint == LintMode::Off {
            return true;
        }
        let Ok(diags) = cypher_analysis::lint_script(text, self.dialect) else {
            return true;
        };
        for d in &diags {
            println!("{}", d.render(text));
        }
        if self.lint == LintMode::Deny
            && cypher_analysis::max_severity(&diags)
                .is_some_and(|s| s >= cypher_core::LintSeverity::Warning)
        {
            println!("statement refused (:lint deny); fix the diagnostics or :lint warn");
            return false;
        }
        true
    }

    /// Run `f` against the active graph; in durable mode the statement's
    /// committed delta is WAL-appended and fsynced before this returns.
    fn exec<T>(
        &mut self,
        f: impl FnOnce(&Engine, &mut PropertyGraph) -> cypher_core::Result<T>,
    ) -> cypher_core::Result<T> {
        let engine = self.engine();
        match &mut self.store {
            Store::Memory(g) => f(&engine, g),
            Store::Durable(d) => match d.apply(|g| f(&engine, g)) {
                Ok(result) => result,
                Err(storage_err) => {
                    // Storage failure: the statement's in-memory effect may
                    // not be durable. The handle poisons itself against
                    // further writes (`StorageError::Sealed` from then on).
                    Err(cypher_core::EvalError::Storage(storage_err.to_string()))
                }
            },
        }
    }

    /// [`exec`](Self::exec) behind a panic boundary: a bug in the engine
    /// aborts the statement, not the session. The in-memory transaction is
    /// rolled back to the statement boundary; a durable handle additionally
    /// seals itself if a panic escaped after mutations were journaled.
    fn exec_caught<T>(
        &mut self,
        f: impl FnOnce(&Engine, &mut PropertyGraph) -> cypher_core::Result<T>,
    ) -> Option<cypher_core::Result<T>> {
        match catch_unwind(AssertUnwindSafe(|| self.exec(f))) {
            Ok(result) => Some(result),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                println!("statement panicked ({msg}); rolled back, session kept alive");
                match &mut self.store {
                    Store::Memory(g) => {
                        if g.journal_len() != 0 {
                            g.rollback_all();
                        }
                    }
                    Store::Durable(d) => d.reconcile_after_panic(),
                }
                None
            }
        }
    }

    fn engine(&self) -> Engine {
        let mut b = EngineBuilder::new(self.dialect)
            .processing_order(self.order)
            .match_mode(self.match_mode)
            .limits(self.limits);
        if let Some(p) = self.policy {
            b = b.merge_policy(p);
        }
        for (k, v) in &self.params {
            b = b.param(k.clone(), v.clone());
        }
        b.build()
    }

    fn prompt(&self) -> String {
        let dialect = match self.dialect {
            Dialect::Cypher9 => "legacy",
            Dialect::Revised => "revised",
        };
        format!("cypher ({dialect})> ")
    }

    fn run_statement(&mut self, text: &str) {
        // `EXPLAIN <statement>` describes the evaluation strategy instead
        // of running it.
        if text.len() >= 8 && text[..7].eq_ignore_ascii_case("EXPLAIN") {
            let engine = self.engine();
            match engine.explain(self.store.graph(), text[7..].trim()) {
                Ok(plan) => print!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
            return;
        }
        if !self.lint_gate(text) {
            return;
        }
        let Some(outcome) = self.exec_caught(|engine, g| engine.run(g, text)) else {
            return; // panic: already reported and reconciled
        };
        match outcome {
            Ok(result) => {
                if result.columns.is_empty() {
                    println!("(no rows)");
                } else {
                    print!("{}", result.render());
                    println!("({} row(s))", result.rows.len());
                }
                if result.stats.contains_updates() {
                    let s = result.stats;
                    let mut parts = Vec::new();
                    for (n, what) in [
                        (s.nodes_created, "nodes created"),
                        (s.rels_created, "rels created"),
                        (s.nodes_deleted, "nodes deleted"),
                        (s.rels_deleted, "rels deleted"),
                        (s.props_set, "props set"),
                        (s.labels_added, "labels added"),
                        (s.labels_removed, "labels removed"),
                    ] {
                        if n > 0 {
                            parts.push(format!("{n} {what}"));
                        }
                    }
                    println!("{}", parts.join(", "));
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }

    /// Returns false when the shell should exit.
    fn meta(&mut self, line: &str) -> bool {
        let mut words = line.split_whitespace();
        match words.next().unwrap_or("") {
            ":quit" | ":exit" | ":q" => return false,
            ":help" => {
                println!(
                    ":dialect legacy|revised   switch semantics (§3 vs §7)\n\
                     :order forward|reverse    legacy record order (Example 3)\n\
                     :match iso|homo           matching discipline (Example 7)\n\
                     :policy atomic|grouping|weak|collapse|strong|off\n\
                     :load csv <file> <param>  load CSV rows into $param\n\
                     :source <file>            run a Cypher script\n\
                     :save <file>              export graph as a CREATE script\n\
                     :open <dir>               open a durable store (WAL + snapshot)\n\
                     :checkpoint               snapshot the store, truncate the WAL\n\
                     :close                    checkpoint and detach from the store\n\
                     :limits [rows N] [writes N] [time MS] | off\n\
                     \x20                          per-statement execution budgets\n\
                     :lint off|warn|deny       static update-hazard analysis (W01-W05)\n\
                     :dump | :stats | :reset | :quit"
                );
            }
            ":dialect" => match words.next() {
                Some("legacy") => self.dialect = Dialect::Cypher9,
                Some("revised") => self.dialect = Dialect::Revised,
                _ => println!("usage: :dialect legacy|revised"),
            },
            ":order" => match words.next() {
                Some("forward") => self.order = ProcessingOrder::Forward,
                Some("reverse") => self.order = ProcessingOrder::Reverse,
                _ => println!("usage: :order forward|reverse"),
            },
            ":match" => match words.next() {
                Some("iso") => self.match_mode = MatchMode::EdgeIsomorphic,
                Some("homo") => self.match_mode = MatchMode::Homomorphic,
                _ => println!("usage: :match iso|homo"),
            },
            ":policy" => match words.next() {
                Some("atomic") => self.policy = Some(MergePolicy::Atomic),
                Some("grouping") => self.policy = Some(MergePolicy::Grouping),
                Some("weak") => self.policy = Some(MergePolicy::WeakCollapse),
                Some("collapse") => self.policy = Some(MergePolicy::Collapse),
                Some("strong") => self.policy = Some(MergePolicy::StrongCollapse),
                Some("off") => self.policy = None,
                _ => println!("usage: :policy atomic|grouping|weak|collapse|strong|off"),
            },
            ":load" => {
                let (Some("csv"), Some(path), Some(param)) =
                    (words.next(), words.next(), words.next())
                else {
                    println!("usage: :load csv <file> <param>");
                    return true;
                };
                match std::fs::read_to_string(path) {
                    Ok(text) => {
                        let rows = cypher_datagen::csv::csv_as_value(&text);
                        let n = match &rows {
                            Value::List(items) => items.len(),
                            _ => 0,
                        };
                        self.params.retain(|(k, _)| k != param);
                        self.params.push((param.to_owned(), rows));
                        println!("loaded {n} row(s) into ${param}");
                    }
                    Err(e) => println!("error reading {path}: {e}"),
                }
            }
            ":source" => {
                let Some(path) = words.next() else {
                    println!("usage: :source <file>");
                    return true;
                };
                match std::fs::read_to_string(path) {
                    Ok(text) => {
                        if !self.lint_gate(&text) {
                            return true;
                        }
                        match self.exec_caught(|engine, g| engine.run_script(g, &text)) {
                            Some(Ok(last)) => {
                                if !last.columns.is_empty() {
                                    print!("{}", last.render());
                                }
                                println!("script ok");
                            }
                            Some(Err(e)) => println!("error: {e}"),
                            None => {} // panic: already reported and reconciled
                        }
                    }
                    Err(e) => println!("error reading {path}: {e}"),
                }
            }
            ":save" => {
                let Some(path) = words.next() else {
                    println!("usage: :save <file>");
                    return true;
                };
                let script = cypher_core::graph_to_cypher(self.store.graph());
                match std::fs::write(path, &script) {
                    Ok(()) => println!("wrote {} byte(s) to {path}", script.len()),
                    Err(e) => println!("error writing {path}: {e}"),
                }
            }
            ":open" => {
                let Some(path) = words.next() else {
                    println!("usage: :open <dir>");
                    return true;
                };
                if matches!(self.store, Store::Durable(_)) {
                    println!("a store is already open; :close it first");
                    return true;
                }
                if self.store.graph().node_count() > 0 {
                    println!("note: replacing the in-memory graph with the store's contents");
                }
                match DurableGraph::open(std::path::Path::new(path)) {
                    Ok(d) => {
                        let g = d.graph();
                        println!(
                            "opened {path}: {} node(s), {} rel(s) recovered",
                            g.node_count(),
                            g.rel_count()
                        );
                        self.store = Store::Durable(Box::new(d));
                    }
                    Err(e) => println!("error opening {path}: {e}"),
                }
            }
            ":checkpoint" => match &mut self.store {
                // Bounded retry with backoff: a transient I/O failure (full
                // disk freed, device back) should not leave the handle
                // sealed when a fresh snapshot can reconcile it.
                Store::Durable(d) => match d.checkpoint_with_retry(3, Duration::from_millis(20)) {
                    Ok(()) => println!("checkpoint written, WAL truncated"),
                    Err(e) => println!("checkpoint failed: {e}"),
                },
                Store::Memory(_) => println!("no store open; use :open <dir>"),
            },
            ":limits" => {
                let args: Vec<&str> = words.collect();
                if args.is_empty() {
                    println!("{}", self.limits);
                    return true;
                }
                if args == ["off"] {
                    self.limits = ExecLimits::NONE;
                    println!("{}", self.limits);
                    return true;
                }
                let mut new = self.limits;
                let mut it = args.iter();
                while let Some(&key) = it.next() {
                    let Some(n) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                        println!("usage: :limits [rows N] [writes N] [time MS] | off");
                        return true;
                    };
                    match key {
                        "rows" => new.max_rows = Some(n),
                        "writes" => new.max_writes = Some(n),
                        "time" => new.timeout = Some(Duration::from_millis(n)),
                        _ => {
                            println!("usage: :limits [rows N] [writes N] [time MS] | off");
                            return true;
                        }
                    }
                }
                self.limits = new;
                println!("{}", self.limits);
            }
            ":lint" => match words.next() {
                Some("off") => self.lint = LintMode::Off,
                Some("warn") => self.lint = LintMode::Warn,
                Some("deny") => self.lint = LintMode::Deny,
                None => println!("lint: {:?}", self.lint),
                _ => println!("usage: :lint off|warn|deny"),
            },
            ":close" => {
                match std::mem::replace(
                    &mut self.store,
                    Store::Memory(Box::new(PropertyGraph::new())),
                ) {
                    Store::Durable(d) => {
                        let dir = d.dir().display().to_string();
                        match (*d).close() {
                            Ok(graph) => {
                                // Keep working on the same graph, detached.
                                self.store = Store::Memory(Box::new(graph));
                                println!("closed {dir} (graph stays in memory)");
                            }
                            Err(e) => println!("close failed: {e}"),
                        }
                    }
                    mem => {
                        self.store = mem;
                        println!("no store open");
                    }
                }
            }
            ":dump" => print!("{}", dump(self.store.graph())),
            ":stats" => {
                // Shape summary (includes dangling count) followed by the
                // planner's live cardinality stats and index hit/miss
                // counters.
                println!("{}", GraphSummary::of(self.store.graph()));
                println!("{}", CardinalityStats::of(self.store.graph()));
            }
            ":reset" => match &self.store {
                Store::Memory(_) => {
                    self.store = Store::Memory(Box::new(PropertyGraph::new()));
                    println!("graph cleared");
                }
                Store::Durable(_) => {
                    println!("a store is open; :close it before :reset");
                }
            },
            other => println!("unknown command {other}; try :help"),
        }
        true
    }
}

fn main() {
    let mut shell = Shell::new();
    let stdin = io::stdin();
    let interactive = atty_stdin();
    if interactive {
        println!(
            "cypher-shell — reproduction of \"Updating Graph Databases with Cypher\" \
             (PVLDB 2019). :help for commands."
        );
    }
    let mut buffer = String::new();
    loop {
        if interactive {
            if buffer.is_empty() {
                print!("{}", shell.prompt());
            } else {
                print!("......> ");
            }
            let _ = io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with(':') {
            if !shell.meta(trimmed) {
                break;
            }
            continue;
        }
        if trimmed.is_empty() && buffer.is_empty() {
            continue;
        }
        buffer.push_str(&line);
        // Execute every complete `;`-terminated statement in the buffer.
        while let Some(pos) = buffer.find(';') {
            let stmt: String = buffer[..pos].trim().to_owned();
            buffer.drain(..=pos);
            if !stmt.is_empty() {
                shell.run_statement(&stmt);
            }
        }
        if buffer.trim().is_empty() {
            buffer.clear();
        }
    }
}

/// Minimal TTY detection without external crates: honor `CYPHER_SHELL_BATCH`
/// and fall back to checking whether stdin is a terminal via `isatty`.
fn atty_stdin() -> bool {
    if std::env::var_os("CYPHER_SHELL_BATCH").is_some() {
        return false;
    }
    // SAFETY: isatty is safe to call with a valid fd.
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn isatty(fd: i32) -> i32;
        }
        isatty(0) == 1
    }
    #[cfg(not(unix))]
    {
        false
    }
}
