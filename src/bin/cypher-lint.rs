//! `cypher-lint` — lint `.cypher` files (or stdin) for the update hazards
//! catalogued in "Updating Graph Databases with Cypher" (PVLDB 2019), plus
//! scope and shape errors. Intended for CI: the exit code is
//!
//! * `0` — clean, or only warnings/info (without `--deny-warnings`);
//! * `1` — at least one error-severity diagnostic (or warning under
//!   `--deny-warnings`);
//! * `2` — a file failed to read or parse.
//!
//! ```text
//! $ cypher-lint examples/*.cypher
//! $ cypher-lint --dialect revised --deny-warnings migration.cypher
//! $ echo "MATCH (n) DELETE n RETURN n.name" | cypher-lint -
//! ```

use std::io::Read;
use std::process::ExitCode;

use cypher_analysis::{lint_script, max_severity, Severity};
use cypher_parser::Dialect;

struct Options {
    dialect: Dialect,
    deny_warnings: bool,
    inputs: Vec<String>,
}

const USAGE: &str =
    "usage: cypher-lint [--dialect legacy|revised] [--deny-warnings] <file.cypher>... | -";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        dialect: Dialect::Cypher9,
        deny_warnings: false,
        inputs: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dialect" => match args.next().as_deref() {
                Some("legacy") | Some("cypher9") => opts.dialect = Dialect::Cypher9,
                Some("revised") => opts.dialect = Dialect::Revised,
                _ => return Err("--dialect takes `legacy` or `revised`".to_owned()),
            },
            "--deny-warnings" => opts.deny_warnings = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            path => opts.inputs.push(path.to_owned()),
        }
    }
    if opts.inputs.is_empty() {
        return Err("no input files (use `-` for stdin)".to_owned());
    }
    Ok(opts)
}

fn read_input(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut text = String::new();
        std::io::stdin().read_to_string(&mut text)?;
        Ok(text)
    } else {
        std::fs::read_to_string(path)
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let fail_at = if opts.deny_warnings {
        Severity::Warning
    } else {
        Severity::Error
    };
    let mut failed = false;
    let mut broken = false;
    for path in &opts.inputs {
        let label = if path == "-" { "<stdin>" } else { path };
        let text = match read_input(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{label}: cannot read: {e}");
                broken = true;
                continue;
            }
        };
        match lint_script(&text, opts.dialect) {
            Ok(diags) => {
                for d in &diags {
                    eprintln!("{label}: {}", d.render(&text));
                }
                if max_severity(&diags).is_some_and(|s| s >= fail_at) {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("{label}: parse error: {}", e.render(&text));
                broken = true;
            }
        }
    }
    if broken {
        ExitCode::from(2)
    } else if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
