//! `cypher-lint` — lint `.cypher` files (or stdin) for the update hazards
//! catalogued in "Updating Graph Databases with Cypher" (PVLDB 2019), plus
//! scope and shape errors. Intended for CI: the exit code is
//!
//! * `0` — clean, or only warnings/info (without `--deny-warnings`);
//! * `1` — at least one error-severity diagnostic (or warning under
//!   `--deny-warnings`);
//! * `2` — a file failed to read or parse.
//!
//! ```text
//! $ cypher-lint examples/*.cypher
//! $ cypher-lint --dialect revised --deny-warnings migration.cypher
//! $ echo "MATCH (n) DELETE n RETURN n.name" | cypher-lint -
//! $ cypher-lint --format json hazards.cypher   # one JSON object per line
//! $ cypher-lint --format json --seed 42 repro.cypher   # tag fuzz output
//! ```
//!
//! The JSON object layout (fixed key order, byte-stable across runs) is
//! documented in the README's "Lint JSON schema" section. `--seed N`
//! fills the `seed` field so diagnostics over fuzz-generated input stay
//! traceable to the campaign that produced it.

use std::io::Read;
use std::process::ExitCode;

use cypher_analysis::{lint_script, max_severity, Severity};
use cypher_parser::Dialect;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Caret-rendered diagnostics on stderr (the default).
    Text,
    /// One JSON object per diagnostic on stdout (JSON Lines), with
    /// file, span (byte offsets + line/column), code, severity, message,
    /// note, source (the exact flagged byte range) and seed fields.
    /// Parse errors are emitted in the same shape with code `"PARSE"`.
    Json,
}

struct Options {
    dialect: Dialect,
    deny_warnings: bool,
    format: Format,
    /// Fuzz-campaign seed echoed into every JSON object's `seed` field
    /// (`null` when absent). Ignored by the text format.
    seed: Option<u64>,
    inputs: Vec<String>,
}

const USAGE: &str = "usage: cypher-lint [--dialect legacy|revised] [--deny-warnings] \
[--format text|json] [--seed N] <file.cypher>... | -";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        dialect: Dialect::Cypher9,
        deny_warnings: false,
        format: Format::Text,
        seed: None,
        inputs: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dialect" => match args.next().as_deref() {
                Some("legacy") | Some("cypher9") => opts.dialect = Dialect::Cypher9,
                Some("revised") => opts.dialect = Dialect::Revised,
                _ => return Err("--dialect takes `legacy` or `revised`".to_owned()),
            },
            "--deny-warnings" => opts.deny_warnings = true,
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => opts.seed = Some(s),
                None => return Err("--seed takes a non-negative integer".to_owned()),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                _ => return Err("--format takes `text` or `json`".to_owned()),
            },
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            path => opts.inputs.push(path.to_owned()),
        }
    }
    if opts.inputs.is_empty() {
        return Err("no input files (use `-` for stdin)".to_owned());
    }
    Ok(opts)
}

fn read_input(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut text = String::new();
        std::io::stdin().read_to_string(&mut text)?;
        Ok(text)
    } else {
        std::fs::read_to_string(path)
    }
}

/// A parse error in the same JSON-lines shape as a diagnostic, so a JSON
/// consumer needs a single parser. Severity is `error`, code `PARSE`.
fn parse_error_json(
    file: &str,
    source: &str,
    e: &cypher_parser::ParseError,
    seed: Option<u64>,
) -> String {
    let span = match e.span {
        Some(s) => {
            let (line, col) = cypher_parser::line_col(source, s.start);
            format!(
                "{{\"start\":{},\"end\":{},\"line\":{line},\"column\":{col}}}",
                s.start, s.end
            )
        }
        None => "null".to_owned(),
    };
    let escaped: String = e
        .message
        .chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect();
    let snippet = match e.span.and_then(|s| source.get(s.start..s.end)) {
        Some(text) => {
            let esc: String = text
                .chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    c => vec![c],
                })
                .collect();
            format!("\"{esc}\"")
        }
        None => "null".to_owned(),
    };
    let seed = match seed {
        Some(s) => s.to_string(),
        None => "null".to_owned(),
    };
    format!(
        "{{\"file\":\"{file}\",\"severity\":\"error\",\"code\":\"PARSE\",\
         \"span\":{span},\"message\":\"{escaped}\",\"note\":null,\
         \"source\":{snippet},\"seed\":{seed}}}"
    )
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let fail_at = if opts.deny_warnings {
        Severity::Warning
    } else {
        Severity::Error
    };
    let mut failed = false;
    let mut broken = false;
    for path in &opts.inputs {
        let label = if path == "-" { "<stdin>" } else { path };
        let text = match read_input(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{label}: cannot read: {e}");
                broken = true;
                continue;
            }
        };
        match lint_script(&text, opts.dialect) {
            Ok(diags) => {
                for d in &diags {
                    match opts.format {
                        Format::Text => eprintln!("{label}: {}", d.render(&text)),
                        Format::Json => {
                            println!("{}", d.render_json_tagged(label, &text, opts.seed))
                        }
                    }
                }
                if max_severity(&diags).is_some_and(|s| s >= fail_at) {
                    failed = true;
                }
            }
            Err(e) => {
                match opts.format {
                    Format::Text => eprintln!("{label}: parse error: {}", e.render(&text)),
                    Format::Json => {
                        println!("{}", parse_error_json(label, &text, &e, opts.seed))
                    }
                }
                broken = true;
            }
        }
    }
    if broken {
        ExitCode::from(2)
    } else if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
