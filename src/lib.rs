pub use cypher_core;
pub use cypher_datagen;
pub use cypher_graph;
pub use cypher_parser;
