# Task runner recipes (https://just.systems). Everything is offline; the
# same steps work as plain shell commands if `just` is not installed.

# Full local gate: build, tests, torture sweep, fmt, clippy.
default: verify

verify:
    ./scripts/verify.sh

# Fault-injection torture sweep: the storage workload re-run with a
# deterministic fault at every fallible filesystem operation index.
torture:
    cargo test -q --offline --test storage_torture -- --nocapture

# Execution-budget property tests (ExecLimits / ResourceExhausted).
guards:
    cargo test -q --offline --test exec_guard_props

# Planner performance harness: full run over the ≥10k-node marketplace,
# asserts the ≥5x W1 speedup and rewrites BENCH_3.json.
bench:
    cargo run -p cypher-bench --bin bench --release --offline -q

# Fast smoke mode of the harness (tiny graph, assertions only, no JSON).
bench-check:
    cargo run -p cypher-bench --bin bench --offline -q -- --check

# Parallel-execution sweep: read scaling curves (graph sizes × read
# worker counts, every run byte-identical to serial) plus pipelined
# write throughput vs the BENCH_5 baseline; rewrites BENCH_8.json.
bench-sweep:
    cargo run -p cypher-bench --bin bench --release --offline -q -- --sweep

# Fast smoke mode of the sweep (tiny graph, identity assertions, no JSON).
bench-sweep-check:
    cargo run -p cypher-bench --bin bench --offline -q -- --sweep --check

# Serve a durable graph over the wire protocol (Ctrl-C to stop, or pass
# --allow-shutdown and send a Shutdown frame from cypher-client).
serve data="./graphdb" addr="127.0.0.1:7878":
    cargo run -p cypher-server --bin cypher-serve --release --offline -q -- \
        --data {{data}} --addr {{addr}} --allow-shutdown

# Load-test a running server: N statements per session over T concurrent
# sessions, writing throughput/latency percentiles to BENCH_5.json.
loadtest addr="127.0.0.1:7878" n="500" threads="8":
    cargo run -p cypher-server --bin cypher-client --release --offline -q -- \
        --addr {{addr}} --load {{n}} --threads {{threads}} --out BENCH_5.json

# Serve a read replica tailing a running primary: catches up (backlog or
# snapshot bootstrap), applies the live stream, answers reads wait-free
# and refuses writes with a redirect. `--allow-admin` so a later
# `cypher-client --addr {{addr}} --promote` can fail it over.
replicate primary="127.0.0.1:7878" data="./replicadb" addr="127.0.0.1:7879":
    cargo run -p cypher-server --bin cypher-serve --release --offline -q -- \
        --data {{data}} --addr {{addr}} --replica-of {{primary}} --allow-admin

# Replication load test against a running primary+replica pair: writes to
# the primary, reads against the replica, maximum replication lag and
# convergence time recorded to BENCH_6.json.
loadtest-replica addr="127.0.0.1:7878" read="127.0.0.1:7879" n="500" threads="8":
    cargo run -p cypher-server --bin cypher-client --release --offline -q -- \
        --addr {{addr}} --read-addr {{read}} --load {{n}} --threads {{threads}} \
        --out BENCH_6.json

# Subscribe to a live view on a running server: stream row-level
# add/remove deltas for the query after every committed statement
# (Ctrl-C to stop; add --deltas N to exit after N batches, --watch for
# a repainted table instead of raw deltas).
subscribe query="MATCH (n) RETURN count(*)" addr="127.0.0.1:7878":
    cargo run -p cypher-server --bin cypher-client --release --offline -q -- \
        --addr {{addr}} --subscribe-query "{{query}}" --watch

# Notification-latency + maintenance-cost benchmark: views at 1/16/128
# over the 10k marketplace graph under a write stream; rewrites
# BENCH_10.json.
bench-views:
    cargo run -p cypher-bench --bin bench --release --offline -q -- --views

# Quorum pair: a primary that withholds client acks until 1 replica has
# durably applied each write (`just serve-sync`), and a replica with a
# liveness lease — if the primary goes silent past the lease it elects
# itself, self-promotes into a fresh epoch and fences the zombie.
serve-sync data="./graphdb" addr="127.0.0.1:7878":
    cargo run -p cypher-server --bin cypher-serve --release --offline -q -- \
        --data {{data}} --addr {{addr}} --allow-shutdown --allow-admin \
        --sync-replicas 1 --sync-timeout-ms 2000 --sync-policy strict

replicate-sync primary="127.0.0.1:7878" data="./replicadb" addr="127.0.0.1:7879":
    cargo run -p cypher-server --bin cypher-serve --release --offline -q -- \
        --data {{data}} --addr {{addr}} --replica-of {{primary}} --allow-admin \
        --lease-ms 3000

# The replica-pair load test re-run under quorum acknowledgement, so the
# durable-ack round trip's latency cost is measured against BENCH_6.
loadtest-quorum addr="127.0.0.1:7878" read="127.0.0.1:7879" n="500" threads="8":
    cargo run -p cypher-server --bin cypher-client --release --offline -q -- \
        --addr {{addr}} --read-addr {{read}} --load {{n}} --threads {{threads}} \
        --label quorum_load --out BENCH_7.json

# Scoped lint: the storage crate bans unwrap()/expect() outside tests.
clippy-storage:
    cargo clippy -p cypher-storage --offline -- -D warnings

# Static analysis: clippy over the whole workspace, then the update-hazard
# linter (W01-W05) over every shipped .cypher example (legacy dialect).
lint:
    cargo clippy --workspace --all-targets --offline -- -D warnings
    cargo run --bin cypher-lint --offline -q -- --dialect cypher9 examples/*.cypher

# Deterministic differential + metamorphic fuzz campaign: generated
# read/update scripts through every oracle pair (planner/naive, lint
# on/off, serial/parallel, WAL recovery, replica replay) plus the
# rewrite-pass equivalences. Findings are minimized and written to
# target/fuzz-findings/. Same seed => byte-identical output.
fuzz seed="42" budget="500":
    cargo run -p cypher-fuzz --bin cypher-fuzz --release --offline -q -- \
        run --seed {{seed}} --budget {{budget}} 2>/dev/null

test:
    cargo test -q --offline

build:
    cargo build --release --offline
