//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched. This shim provides the exact API subset the
//! workspace uses — `Rng::{gen_range, gen_bool}`, `SeedableRng::seed_from_u64`
//! and `rngs::StdRng` — backed by xoshiro256** seeded via splitmix64.
//! Streams are deterministic per seed, which is all the workload generators
//! and tests rely on; statistical quality is more than sufficient for
//! benchmark data generation.

use std::ops::{Range, RangeInclusive};

/// Core of every generator: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds. Only `seed_from_u64` is provided; the workspace
/// never uses byte-array seeding.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open or inclusive integer range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Uniform sample from the range. Panics on empty ranges, matching the
    /// real crate's contract.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` via rejection sampling (`span > 0`, and the
/// workspace only uses spans that fit in a u64).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        // Full-width span: a raw draw is already uniform enough for the
        // (never exercised) 2^64-wide case.
        return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
    }
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return (v % span) as u128;
        }
    }
}

/// User-facing convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw. `p` outside `[0, 1]` saturates.
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random bits → uniform float in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the shim's stand-in for the
    /// real crate's ChaCha-based `StdRng`; same trait surface, different —
    /// but still seed-stable — stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3i64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u64..=2_000);
            assert!((1..=2_000).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1_000_000) == b.gen_range(0u64..1_000_000))
            .count();
        assert!(same < 8);
    }
}
