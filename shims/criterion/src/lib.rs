//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the real
//! `criterion` cannot be fetched. This shim keeps the workspace's benches
//! compiling and runnable: each registered routine is warmed up once and
//! then timed over a small fixed number of iterations, with mean wall-clock
//! time printed to stdout. There are no statistics, outlier analyses or
//! reports — for publishable numbers, build against the real crate.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; accepted and ignored.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation; accepted and echoed in output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A `function_id/parameter` pair naming one series point.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to routines; `iter`/`iter_batched` time the closure.
pub struct Bencher {
    iterations: u32,
    /// Mean time per iteration, recorded for the caller to print.
    pub(crate) elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed() / self.iterations;
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total / self.iterations;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    iterations: u32,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// The real crate's statistical sample count; reused here as a (capped)
    /// iteration count so heavyweight benches stay quick.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iterations = (n as u32).clamp(1, 20);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<R>(&mut self, id: impl fmt::Display, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.iterations,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        self.report(&id.to_string(), b.elapsed);
        self
    }

    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iterations: self.iterations,
            elapsed: Duration::ZERO,
        };
        routine(&mut b, input);
        self.report(&id.to_string(), b.elapsed);
        self
    }

    fn report(&self, id: &str, mean: Duration) {
        match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
                println!("{}/{id}: {mean:?}/iter ({rate:.1} MiB/s)", self.name);
            }
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / mean.as_secs_f64();
                println!("{}/{id}: {mean:?}/iter ({rate:.0} elem/s)", self.name);
            }
            None => println!("{}/{id}: {mean:?}/iter", self.name),
        }
    }

    pub fn finish(&mut self) {}
}

/// The harness entry object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iterations: 5,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<R>(&mut self, id: &str, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.to_owned())
            .bench_function("run", routine);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
