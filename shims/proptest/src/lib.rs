//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` cannot be fetched. This shim is a miniature property-testing
//! framework covering exactly the API surface the workspace's tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_filter`, `prop_recursive`
//!   and `boxed`,
//! * strategies for integer ranges, tuples, [`Just`], `any::<T>()`, and
//!   string-from-regex (`"[a-z]{1,3}"` — a small regex subset),
//! * `prop::collection::{vec, btree_map, btree_set}`, `prop::sample::select`,
//!   `prop::option::{of, weighted}`,
//! * the `proptest!` macro with `#![proptest_config(..)]`, and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_oneof!`
//!   macro family.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   `Debug`-printed; minimization is manual.
//! * **Deterministic seeding.** Each test derives its RNG seed from its full
//!   module path, so runs are reproducible; set `PROPTEST_SEED=<u64>` to
//!   perturb all streams at once. `*.proptest-regressions` files are ignored.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Entry point macro: an optional `#![proptest_config(..)]` inner attribute
/// followed by `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);
                    )+
                    let __inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(&::std::format!(
                                "\n  {} = {:?}",
                                stringify!($arg),
                                $arg
                            ));
                        )+
                        s
                    };
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = result {
                        ::core::panic!(
                            "proptest case {} of {} failed: {}\ninputs:{}",
                            case, config.cases, e, __inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args..)` — early-return
/// a [`test_runner::TestCaseError`] instead of panicking, so the harness can
/// attach the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+), left, right,
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}\n  both: {:?}",
            ::std::format!($($fmt)+), left,
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
