//! Configuration, RNG, and failure plumbing for the `proptest!` harness.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore as _, SeedableRng as _};

/// Number-of-cases knob; mirrors the field the workspace's tests set.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failing property, carrying the assertion message.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Seeded generator handed to strategies.
///
/// Each test's stream is derived from its fully qualified name, so runs are
/// reproducible run-to-run; setting `PROPTEST_SEED=<u64>` perturbs every
/// stream at once for exploratory fuzzing.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let extra = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng(StdRng::seed_from_u64(h ^ extra))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform index in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }

    pub fn range<T, S: rand::SampleRange<T>>(&mut self, r: S) -> T {
        self.0.gen_range(r)
    }

    pub fn range_inclusive<T, S: rand::SampleRange<T>>(&mut self, r: S) -> T {
        self.0.gen_range(r)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.0.gen_bool(p)
    }
}
