//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Element-count specification, convertible from `usize` and `Range<usize>`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.range(self.min..self.max)
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Clone> Clone for VecStrategy<S> {
    fn clone(&self) -> Self {
        VecStrategy {
            element: self.element.clone(),
            size: self.size.clone(),
        }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// `Vec` of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut out = BTreeMap::new();
        // Colliding keys shrink the result; retry a bounded number of times
        // to respect the minimum where the key domain allows it.
        let mut attempts = 0;
        while out.len() < target && attempts < target * 50 + 100 {
            out.insert(self.key.gen_value(rng), self.value.gen_value(rng));
            attempts += 1;
        }
        out
    }
}

/// `BTreeMap` with keys and values drawn from the given strategies.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target * 50 + 100 {
            out.insert(self.element.gen_value(rng));
            attempts += 1;
        }
        out
    }
}

/// `BTreeSet` of elements drawn from `element`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
