//! `option::{of, weighted}` — strategies for `Option<T>`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
    some_probability: f64,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        if rng.chance(self.some_probability) {
            Some(self.inner.gen_value(rng))
        } else {
            None
        }
    }
}

/// `Some` half the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    weighted(0.5, inner)
}

/// `Some` with the given probability.
pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> OptionStrategy<S> {
    OptionStrategy {
        inner,
        some_probability,
    }
}
