//! `any::<T>()` — full-domain strategies for primitives.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally any scalar value.
        if rng.chance(0.9) {
            (0x20 + rng.below(0x5f) as u32) as u8 as char
        } else {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(8) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

/// The strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn gen_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Full-domain strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}
