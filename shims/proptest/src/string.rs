//! String strategies from a small regex subset.
//!
//! A `&'static str` is itself a strategy (as in the real crate); the
//! supported pattern language is what the workspace's tests use: a sequence
//! of atoms — a literal character, an escape (`\n`, `\t`, `\\`), or a
//! character class `[..]` of literals, ranges (`a-z`) and escapes — each
//! optionally followed by a `{n}` or `{m,n}` repetition.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
enum Atom {
    /// Candidate characters (singleton for a literal).
    Class(Vec<char>),
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other, // \\, \-, \], \. …
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated character class");
        match c {
            ']' => break,
            '\\' => {
                let e = unescape(chars.next().expect("dangling escape in class"));
                out.push(e);
                prev = Some(e);
            }
            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let start = prev.take().expect("range start");
                let mut end = chars.next().expect("range end");
                if end == '\\' {
                    end = unescape(chars.next().expect("dangling escape in class"));
                }
                assert!(start <= end, "inverted class range {start}-{end}");
                // `start` was already pushed as a literal; extend with the rest.
                out.extend(((start as u32 + 1)..=(end as u32)).filter_map(char::from_u32));
            }
            other => {
                out.push(other);
                prev = Some(other);
            }
        }
    }
    assert!(!out.is_empty(), "empty character class");
    out
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut body = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        body.push(c);
    }
    match body.split_once(',') {
        Some((m, n)) => (
            m.trim().parse().expect("bad repeat lower bound"),
            n.trim().parse().expect("bad repeat upper bound"),
        ),
        None => {
            let n = body.trim().parse().expect("bad repeat count");
            (n, n)
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => Atom::Class(vec![unescape(chars.next().expect("dangling escape"))]),
            other => Atom::Class(vec![other]),
        };
        let (min, max) = parse_repeat(&mut chars);
        assert!(min <= max, "inverted repeat {{{min},{max}}} in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = rng.range(piece.min..piece.max + 1);
            let Atom::Class(ref candidates) = piece.atom;
            for _ in 0..n {
                out.push(candidates[rng.below(candidates.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_test("string::tests")
    }

    #[test]
    fn class_with_range_and_repeat() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z]{1,3}".gen_value(&mut r);
            assert!((1..=3).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_ascii_class() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[ -~]{0,8}".gen_value(&mut r);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn escapes_in_class() {
        let mut r = rng();
        let mut saw_newline = false;
        for _ in 0..500 {
            let s = "[ -~\\n\\t]{0,20}".gen_value(&mut r);
            saw_newline |= s.contains('\n') || s.contains('\t');
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
        assert!(saw_newline);
    }

    #[test]
    fn concatenated_atoms() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-w][a-z0-9_]{0,6}".gen_value(&mut r);
            assert!(!s.is_empty() && s.len() <= 7);
            let first = s.chars().next().unwrap();
            assert!(('a'..='w').contains(&first), "{s:?}");
        }
    }

    #[test]
    fn literal_atoms() {
        let mut r = rng();
        assert_eq!("abc".gen_value(&mut r), "abc");
    }
}
