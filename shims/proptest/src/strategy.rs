//! The [`Strategy`] trait and its combinators.

use std::sync::Arc;

use crate::test_runner::TestRng;

/// A generator of values of type `Self::Value`.
///
/// Unlike the real crate there is no value tree / shrinking machinery: a
/// strategy is just a seeded sampler.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f`. The reason string is reported if the
    /// filter rejects too many candidates in a row.
    fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: ToString,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.to_string(),
            f,
        }
    }

    /// Build a recursive strategy: `self` is the leaf case, and `recurse`
    /// wraps an inner strategy into a composite one. `depth` bounds the
    /// nesting level; the size-tuning parameters of the real crate are
    /// accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // At each level the generator picks the leaf half the time, so
            // expected sizes stay small; structural depth is hard-capped.
            let expanded = recurse(current).boxed();
            current = Union::new(vec![leaf.clone(), expanded]).boxed();
        }
        current
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.inner.gen_value(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len());
        self.0[i].gen_value(rng)
    }
}

// ---------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.range_inclusive(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
