//! `sample::select` — uniform choice from a fixed pool of values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0[rng.below(self.0.len())].clone()
    }
}

/// Uniformly select one of `options` (must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select(options)
}
