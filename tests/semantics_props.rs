//! Property-based tests for the update semantics: the determinism and
//! atomicity theorems the paper's revision is meant to establish, checked
//! on randomized inputs.

use proptest::prelude::*;

use cypher_core::{Dialect, Engine, MergePolicy, ProcessingOrder};
use cypher_graph::{fmt::dump, isomorphic, GraphSummary, PropertyGraph, Value};

/// A random import table: (cid, pid) pairs over a small domain so that
/// duplicates and nulls occur organically.
fn table_strategy() -> impl Strategy<Value = Vec<(i64, Option<i64>)>> {
    prop::collection::vec((0i64..5, prop::option::weighted(0.8, 0i64..5)), 0..12)
}

fn rows_value(rows: &[(i64, Option<i64>)]) -> Value {
    Value::List(
        rows.iter()
            .map(|(c, p)| {
                let mut m = std::collections::BTreeMap::new();
                m.insert("cid".to_owned(), Value::Int(*c));
                m.insert("pid".to_owned(), p.map(Value::Int).unwrap_or(Value::Null));
                Value::Map(m)
            })
            .collect(),
    )
}

const IMPORT: &str = "UNWIND $rows AS row \
    WITH row.cid AS cid, row.pid AS pid \
    MERGE ALL (:User {id: cid})-[:ORDERED]->(:Product {id: pid})";

fn run_policy(
    policy: MergePolicy,
    rows: &[(i64, Option<i64>)],
    order: ProcessingOrder,
) -> PropertyGraph {
    let engine = Engine::builder(Dialect::Revised)
        .merge_policy(policy)
        .processing_order(order)
        .param("rows", rows_value(rows))
        .build();
    let mut g = PropertyGraph::new();
    engine.run(&mut g, IMPORT).expect("import statement");
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Revised MERGE is deterministic: permuting the driving table (here:
    /// reversing it — an arbitrary permutation composed of the generated
    /// order and its reverse) cannot change the output graph.
    #[test]
    fn revised_merge_is_order_insensitive(rows in table_strategy()) {
        let mut reversed = rows.clone();
        reversed.reverse();
        for policy in MergePolicy::PROPOSALS {
            let a = run_policy(policy, &rows, ProcessingOrder::Forward);
            let b = run_policy(policy, &reversed, ProcessingOrder::Forward);
            let c = run_policy(policy, &rows, ProcessingOrder::Reverse);
            prop_assert!(isomorphic(&a, &b), "{policy} differs under row permutation");
            prop_assert!(isomorphic(&a, &c), "{policy} differs under processing order");
        }
    }

    /// MERGE SAME is idempotent on null-free tables: the second run of the
    /// same statement finds everything and changes nothing. Null-valued
    /// pattern properties never match (`null = null` is unknown, Example 5),
    /// so rows with null pids re-create on every run: for those, re-running
    /// grows the graph by exactly one collapsed pair per distinct null
    /// group.
    #[test]
    fn merge_same_is_idempotent(rows in table_strategy()) {
        let engine = Engine::builder(Dialect::Revised)
            .param("rows", rows_value(&rows))
            .build();
        let statement = IMPORT.replace("MERGE ALL", "MERGE SAME");
        let mut g = PropertyGraph::new();
        engine.run(&mut g, &statement).expect("first run");
        let before = dump(&g);
        let before_summary = GraphSummary::of(&g);
        let second = engine.run(&mut g, &statement).expect("second run");
        let null_groups: std::collections::BTreeSet<i64> = rows
            .iter()
            .filter(|(_, p)| p.is_none())
            .map(|(c, _)| *c)
            .collect();
        if null_groups.is_empty() {
            prop_assert_eq!(dump(&g), before);
            prop_assert!(!second.stats.contains_updates());
        } else {
            // Old nodes never collapse with new ones (Def. 1(iii)): each
            // distinct (cid, null) group re-creates its user node, and all
            // the fresh property-less products collapse into a single new
            // null-product (Fig. 7c's "non-product" node).
            let after = GraphSummary::of(&g);
            prop_assert_eq!(after.nodes, before_summary.nodes + null_groups.len() + 1);
            prop_assert_eq!(after.rels, before_summary.rels + null_groups.len());
        }
    }

    /// The §6 proposals form a collapse chain: each step can only shrink
    /// the created graph. (Atomic ≥ Grouping ≥ Weak ≥ Collapse ≥ Strong in
    /// both node and relationship counts.)
    #[test]
    fn merge_policies_form_a_collapse_chain(rows in table_strategy()) {
        let summaries: Vec<GraphSummary> = MergePolicy::PROPOSALS
            .iter()
            .map(|&p| GraphSummary::of(&run_policy(p, &rows, ProcessingOrder::Forward)))
            .collect();
        for w in summaries.windows(2) {
            prop_assert!(w[0].nodes >= w[1].nodes, "node chain violated: {summaries:?}");
            prop_assert!(w[0].rels >= w[1].rels, "rel chain violated: {summaries:?}");
        }
        // And Strong Collapse node count equals Collapse node count (they
        // differ only in relationship collapsing).
        prop_assert_eq!(summaries[3].nodes, summaries[4].nodes);
    }

    /// Every successful statement leaves a legal graph (no dangling
    /// relationships) and an empty journal; a failing statement leaves the
    /// graph exactly as it was.
    #[test]
    fn statements_are_atomic(rows in table_strategy(), detach in any::<bool>()) {
        for engine in [Engine::legacy(), Engine::revised()] {
            let mut g = PropertyGraph::new();
            let e = Engine::builder(engine.dialect)
                .param("rows", rows_value(&rows))
                .build();
            e.run(&mut g, "UNWIND $rows AS row CREATE (:T {id: row.cid})")
                .expect("create");
            prop_assert!(g.integrity_check().is_ok());
            prop_assert_eq!(g.journal_len(), 0);

            let before = dump(&g);
            // This statement always fails at the end: DELETE of an integer.
            let stmt = if detach {
                "MATCH (n:T) WITH count(n) AS c DETACH DELETE c"
            } else {
                "MATCH (n:T) WITH count(n) AS c DELETE c"
            };
            let err = e.run(&mut g, stmt);
            prop_assert!(err.is_err());
            prop_assert_eq!(dump(&g), before);
        }
    }

    /// Revised DELETE can never leave a dangling relationship behind, no
    /// matter which label subset it targets.
    #[test]
    fn revised_delete_preserves_integrity(
        rows in table_strategy(),
        target_users in any::<bool>(),
    ) {
        let g = run_policy(MergePolicy::StrongCollapse, &rows, ProcessingOrder::Forward);
        let mut g = g;
        let label = if target_users { "User" } else { "Product" };
        let res = Engine::revised().run(
            &mut g,
            &format!("MATCH (n:{label}) DETACH DELETE n"),
        );
        prop_assert!(res.is_ok());
        prop_assert!(g.integrity_check().is_ok());
        let s = GraphSummary::of(&g);
        prop_assert_eq!(s.rels, 0); // every rel touches both labels
    }

    /// On clean data (unique target per key) legacy and revised SET agree.
    #[test]
    fn set_semantics_agree_on_clean_data(ids in prop::collection::btree_set(0i64..50, 1..10)) {
        let ids: Vec<i64> = ids.into_iter().collect();
        let rows = Value::List(ids.iter().map(|&i| Value::Int(i)).collect());
        let mut outcomes = Vec::new();
        for dialect in [Dialect::Cypher9, Dialect::Revised] {
            let e = Engine::builder(dialect).param("ids", rows.clone()).build();
            let mut g = PropertyGraph::new();
            e.run(&mut g, "UNWIND $ids AS i CREATE (:T {id: i})").expect("setup");
            e.run(&mut g, "MATCH (n:T) SET n.sq = n.id * n.id").expect("set");
            outcomes.push(dump(&g));
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1]);
    }

    /// Grouping MERGE ignores columns that do not appear in the pattern
    /// (§6: "irrelevant entries are disregarded").
    #[test]
    fn grouping_ignores_irrelevant_columns(
        rows in prop::collection::vec((0i64..4, 0i64..4, 0i64..1000), 1..10),
    ) {
        let with_extra = Value::List(
            rows.iter()
                .map(|(c, p, extra)| {
                    let mut m = std::collections::BTreeMap::new();
                    m.insert("cid".to_owned(), Value::Int(*c));
                    m.insert("pid".to_owned(), Value::Int(*p));
                    m.insert("extra".to_owned(), Value::Int(*extra));
                    Value::Map(m)
                })
                .collect(),
        );
        let without_extra = Value::List(
            rows.iter()
                .map(|(c, p, _)| {
                    let mut m = std::collections::BTreeMap::new();
                    m.insert("cid".to_owned(), Value::Int(*c));
                    m.insert("pid".to_owned(), Value::Int(*p));
                    m.insert("extra".to_owned(), Value::Int(0));
                    Value::Map(m)
                })
                .collect(),
        );
        let run = |rows: Value| {
            let e = Engine::builder(Dialect::Revised)
                .merge_policy(MergePolicy::Grouping)
                .param("rows", rows)
                .build();
            let mut g = PropertyGraph::new();
            e.run(
                &mut g,
                "UNWIND $rows AS row \
                 WITH row.cid AS cid, row.pid AS pid, row.extra AS extra \
                 MERGE ALL (:User {id: cid})-[:ORDERED]->(:Product {id: pid})",
            )
            .expect("grouping import");
            g
        };
        prop_assert!(isomorphic(&run(with_extra), &run(without_extra)));
    }

    /// The legacy engine, by contrast, is genuinely order-sensitive: there
    /// exists some table (found by the fixed Example 3 test) where orders
    /// disagree — but on *match-free* tables with unique rows it agrees
    /// with MERGE ALL.
    #[test]
    fn legacy_merge_equals_atomic_on_unique_nonmatching_rows(
        ids in prop::collection::btree_set((0i64..8, 0i64..8), 1..8),
    ) {
        let rows: Vec<(i64, Option<i64>)> =
            ids.into_iter().map(|(c, p)| (c, Some(p))).collect();
        // Legacy: each record creates the whole pattern; since (cid, pid)
        // pairs are unique and nodes carry distinct ids, cross-record
        // matching can still occur! Restrict to rows with unique cid AND
        // unique pid to rule that out.
        let mut seen_c = std::collections::BTreeSet::new();
        let mut seen_p = std::collections::BTreeSet::new();
        let rows: Vec<_> = rows
            .into_iter()
            .filter(|(c, p)| seen_c.insert(*c) && seen_p.insert(p.expect("some")))
            .collect();
        let legacy = Engine::builder(Dialect::Cypher9)
            .param("rows", rows_value(&rows))
            .build();
        let mut g_legacy = PropertyGraph::new();
        legacy
            .run(&mut g_legacy, &IMPORT.replace("MERGE ALL", "MERGE"))
            .expect("legacy import");
        let g_atomic = run_policy(MergePolicy::Atomic, &rows, ProcessingOrder::Forward);
        prop_assert!(isomorphic(&g_legacy, &g_atomic));
    }
}
