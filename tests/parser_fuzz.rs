//! Parser robustness: arbitrary input must never panic — it either parses
//! or returns a positioned error. (The lexer and parser are hand-written;
//! this is the cheap insurance that recursive descent didn't leave an
//! `unwrap` on a user-controlled path.)

use proptest::prelude::*;

use cypher_parser::{parse, parse_script, validate, Dialect};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Arbitrary printable soup.
    #[test]
    fn arbitrary_text_never_panics(input in "[ -~\\n\\t]{0,120}") {
        let _ = parse(&input);
        let _ = parse_script(&input);
    }

    /// Token-shaped soup: concatenations of plausible Cypher fragments are
    /// far more likely to reach deep parser states.
    #[test]
    fn fragment_soup_never_panics(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "MATCH", "OPTIONAL", "RETURN", "WITH", "WHERE", "CREATE", "MERGE",
                "ALL", "SAME", "DELETE", "DETACH", "SET", "REMOVE", "UNWIND",
                "FOREACH", "UNION", "ORDER", "BY", "SKIP", "LIMIT", "AS", "IN",
                "ON", "INDEX", "DROP", "CASE", "WHEN", "THEN", "ELSE", "END",
                "(n)", "(n:L)", "(:L {a: 1})", "-[:T]->", "<-[r:T]-", "-[*1..2]->",
                "--", "-->", "n", "n.x", "$p", "1", "2.5", "'s'", "[1, 2]",
                "{a: 1}", "+", "-", "*", "/", "=", "<>", "<", ">=", "+=", ",",
                "AND", "OR", "NOT", "XOR", "IS", "NULL", "true", "false",
                "count(*)", "collect(x)", "reduce(a = 0, x IN xs | a + x)",
                "[x IN xs WHERE x | x]", "all(x IN xs WHERE x)", "|", ";",
                "(", ")", "[", "]", "{", "}", ":", ".", "..",
            ]),
            0..24,
        )
    ) {
        let input = parts.join(" ");
        if let Ok(ast) = parse(&input) {
            // Whatever parses must also survive validation (no panics) and
            // pretty-printing, and the printed form must re-parse.
            let _ = validate(&ast, Dialect::Cypher9);
            let _ = validate(&ast, Dialect::Revised);
            let printed = cypher_parser::print_query(&ast);
            parse(&printed).unwrap_or_else(|e| {
                panic!("printed form of {input:?} failed to re-parse: {printed:?}: {e}")
            });
        }
    }

    /// Errors point inside the input (or carry no span for structural
    /// errors).
    #[test]
    fn error_spans_are_in_bounds(input in "[ -~]{0,80}") {
        if let Err(e) = parse(&input) {
            if let Some(span) = e.span {
                prop_assert!(span.start <= input.len() + 1, "span {span:?} vs len {}", input.len());
                prop_assert!(span.start <= span.end);
            }
            // Rendering the error against the source must not panic.
            let _ = e.render(&input);
        }
    }
}
