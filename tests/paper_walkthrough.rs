//! Workspace integration test: the paper's §2–§3 narrative, executed
//! verbatim across all crates (datagen graph builders, parser, both
//! engines, stats, isomorphism).

use cypher_core::{Engine, MatchMode};
use cypher_datagen::figure1_graph;
use cypher_graph::{isomorphic, GraphSummary, PropertyGraph, Value};

#[test]
fn figure1_built_by_cypher_equals_figure1_built_by_api() {
    // datagen builds Figure 1 through the store API; the same graph built
    // through the engine must be isomorphic.
    let (api_graph, _) = figure1_graph();
    let mut cy_graph = PropertyGraph::new();
    Engine::legacy()
        .run(
            &mut cy_graph,
            "CREATE (v1:Vendor {id: 60, name: 'cStore'}), \
                    (p1:Product {id: 125, name: 'laptop'}), \
                    (p2:Product {id: 125, name: 'notebook'}), \
                    (p3:Product {id: 85, name: 'tablet'}), \
                    (u1:User {id: 89, name: 'Bob'}), \
                    (u2:User {id: 99, name: 'Jane'}), \
                    (v1)-[:OFFERS]->(p1), (v1)-[:OFFERS]->(p2), \
                    (u1)-[:ORDERED]->(p1), (u1)-[:ORDERED]->(p3), \
                    (u2)-[:ORDERED]->(p3), (u2)-[:OFFERS]->(p3)",
        )
        .unwrap();
    assert!(isomorphic(&api_graph, &cy_graph));
}

#[test]
fn section2_driving_table_narrative() {
    // §2 describes the intermediate driving tables of Query (1) in detail.
    let (mut g, ids) = figure1_graph();
    let e = Engine::legacy();

    // "the first MATCH clause populates [the table] with two records".
    let no_where = e
        .run(
            &mut g,
            "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) \
             RETURN id(p) AS p, id(v) AS v, id(q) AS q",
        )
        .unwrap();
    assert_eq!(no_where.rows.len(), 2);
    let as_ints = |row: &Vec<Value>| -> (i64, i64, i64) {
        match (&row[0], &row[1], &row[2]) {
            (Value::Int(a), Value::Int(b), Value::Int(c)) => (*a, *b, *c),
            _ => panic!("expected ints"),
        }
    };
    let rows: Vec<_> = no_where.rows.iter().map(as_ints).collect();
    let (p1, p2, v1) = (
        ids.p1.raw() as i64,
        ids.p2.raw() as i64,
        ids.v1.raw() as i64,
    );
    assert!(rows.contains(&(p1, v1, p2)));
    assert!(rows.contains(&(p2, v1, p1)));

    // "the WHERE clause … would remove the record (p:p2, v:v1, q:p1)".
    let with_where = e
        .run(
            &mut g,
            "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) \
             WHERE p.name = \"laptop\" RETURN id(v) AS v",
        )
        .unwrap();
    assert_eq!(with_where.rows.len(), 1);
    assert_eq!(with_where.rows[0][0], Value::Int(v1));

    // "without the WHERE clause … the final table would have contained two
    // copies of the record (v:v1)" — bag semantics.
    let bag = e
        .run(
            &mut g,
            "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) \
             RETURN id(v) AS v",
        )
        .unwrap();
    assert_eq!(bag.rows.len(), 2);
    assert_eq!(bag.rows[0], bag.rows[1]);
}

#[test]
fn section2_same_node_cannot_bind_p_and_q() {
    // "Readers experienced in SQL may wonder why the variables p and q
    // cannot be matched to the same node … distinct relationship patterns
    // … have to be mapped to distinct relationships".
    let (mut g, _) = figure1_graph();
    let iso = Engine::legacy()
        .run(
            &mut g,
            "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(p) RETURN v",
        )
        .unwrap();
    assert_eq!(iso.rows.len(), 0);
    // Under homomorphic matching the reflexive binding exists.
    let homo = Engine::builder(cypher_core::Dialect::Cypher9)
        .match_mode(MatchMode::Homomorphic)
        .build()
        .run(
            &mut g,
            "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(p) RETURN v",
        )
        .unwrap();
    assert_eq!(homo.rows.len(), 2);
}

#[test]
fn section3_full_update_walkthrough() {
    let (mut g, _) = figure1_graph();
    let e = Engine::legacy();
    let base = GraphSummary::of(&g);

    // Query (2).
    e.run(
        &mut g,
        "MATCH (u:User{id:89}) CREATE (u)-[:ORDERED]->(:New_Product{id:0})",
    )
    .unwrap();
    // Query (3).
    e.run(
        &mut g,
        "MATCH (p:New_Product{id:0}) SET p:Product, p.id=120, p.name=\"smartphone\" \
         REMOVE p:New_Product",
    )
    .unwrap();
    // Deleting via explicit relationship match (§3's first alternative).
    e.run(&mut g, "MATCH ()-[r]->(p:Product{id:120}) DELETE r, p")
        .unwrap();
    assert_eq!(GraphSummary::of(&g), base);

    // The combined illustrative statement of §3 (create, mutate, delete in
    // one query) leaves the graph unchanged.
    e.run(
        &mut g,
        "MATCH (u:User{id:89}) \
         CREATE (u)-[:ORDERED]->(p:New_Product{id:0}) \
         SET p:Product, p.id=120, p.name=\"phone\" \
         REMOVE p:New_Product \
         DETACH DELETE p",
    )
    .unwrap();
    assert_eq!(GraphSummary::of(&g), base);
}

#[test]
fn query5_merge_returns_matched_and_created_pairs() {
    let (mut g, ids) = figure1_graph();
    let e = Engine::legacy();
    let r = e
        .run(
            &mut g,
            "MATCH (p:Product) MERGE (p)<-[:OFFERS]-(v:Vendor) \
             RETURN id(p) AS p, id(v) AS v",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    let v1 = Value::Int(ids.v1.raw() as i64);
    // p1 and p2 pair with v1; p3 pairs with a node that is not v1.
    let paired_with_v1 = r.rows.iter().filter(|row| row[1] == v1).count();
    assert_eq!(paired_with_v1, 2);
    let s = GraphSummary::of(&g);
    assert_eq!(s.labels["Vendor"], 2);
    assert_eq!(s.rels, 7);
}

#[test]
fn whole_pipeline_parse_print_reparse_execute() {
    // Cross-crate round trip: parse → pretty-print → re-parse → execute;
    // both texts must produce isomorphic graphs.
    let text = "UNWIND [1, 2, 3] AS x \
                MERGE SAME (:User {id: x})-[:ORDERED]->(:Product {id: x % 2})";
    let ast = cypher_parser::parse(text).unwrap();
    let printed = cypher_parser::print_query(&ast);
    let e = Engine::revised();
    let mut g1 = PropertyGraph::new();
    e.run(&mut g1, text).unwrap();
    let mut g2 = PropertyGraph::new();
    e.run(&mut g2, &printed).unwrap();
    assert!(isomorphic(&g1, &g2));
    let s = GraphSummary::of(&g1);
    assert_eq!((s.nodes, s.rels), (5, 3)); // 3 users + 2 products
}
