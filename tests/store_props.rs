//! Property-based tests for the substrate: value ordering laws, the
//! journal/rollback machinery, and graph isomorphism.

use proptest::prelude::*;

use cypher_graph::{fmt::dump, isomorphic, DeleteNodeMode, NodeId, PropertyGraph, Ternary, Value};

// ---------------------------------------------------------------------
// Value laws
// ---------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        prop_oneof![
            any::<i32>().prop_map(|i| Value::Float(f64::from(i) / 16.0)),
            Just(Value::Float(f64::NAN)),
            Just(Value::Float(f64::INFINITY)),
        ],
        "[ -~]{0,8}".prop_map(Value::Str),
        (0u64..100).prop_map(|i| Value::Node(NodeId(i))),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            prop::collection::btree_map("[a-z]{1,3}", inner, 0..3).prop_map(Value::Map),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `global_cmp` is a total order: reflexive-equal, antisymmetric,
    /// transitive.
    #[test]
    fn global_cmp_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.global_cmp(&a), Ordering::Equal);
        prop_assert_eq!(a.global_cmp(&b), b.global_cmp(&a).reverse());
        if a.global_cmp(&b) != Ordering::Greater && b.global_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.global_cmp(&c), Ordering::Greater);
        }
    }

    /// Equivalence is reflexive and symmetric, and ternary-true equality
    /// implies equivalence.
    #[test]
    fn equivalence_laws(a in arb_value(), b in arb_value()) {
        prop_assert!(a.equivalent(&a));
        prop_assert_eq!(a.equivalent(&b), b.equivalent(&a));
        if a.cypher_eq(&b) == Ternary::True {
            prop_assert!(a.equivalent(&b));
        }
    }

    /// Equality involving null is always unknown.
    #[test]
    fn null_equality_is_unknown(a in arb_value()) {
        prop_assert_eq!(Value::Null.cypher_eq(&a), Ternary::Unknown);
        prop_assert_eq!(a.cypher_eq(&Value::Null), Ternary::Unknown);
    }

    /// Equivalent values are global_cmp-equal (grouping and ordering agree).
    #[test]
    fn equivalence_agrees_with_global_order(a in arb_value(), b in arb_value()) {
        if a.equivalent(&b) {
            prop_assert_eq!(a.global_cmp(&b), std::cmp::Ordering::Equal);
        }
    }
}

// ---------------------------------------------------------------------
// Journal / rollback
// ---------------------------------------------------------------------

/// A random mutation script against the store.
#[derive(Clone, Debug)]
enum Op {
    CreateNode { label: u8, id: i64 },
    CreateRel { src: usize, tgt: usize, ty: u8 },
    SetProp { node: usize, value: i64 },
    AddLabel { node: usize, label: u8 },
    RemoveLabel { node: usize, label: u8 },
    DeleteRel { rel: usize },
    DeleteNodeDetach { node: usize },
    DeleteNodeForce { node: usize },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..3, 0i64..50).prop_map(|(label, id)| Op::CreateNode { label, id }),
            (0usize..64, 0usize..64, 0u8..2).prop_map(|(src, tgt, ty)| Op::CreateRel {
                src,
                tgt,
                ty
            }),
            (0usize..64, 0i64..100).prop_map(|(node, value)| Op::SetProp { node, value }),
            (0usize..64, 0u8..3).prop_map(|(node, label)| Op::AddLabel { node, label }),
            (0usize..64, 0u8..3).prop_map(|(node, label)| Op::RemoveLabel { node, label }),
            (0usize..64).prop_map(|rel| Op::DeleteRel { rel }),
            (0usize..64).prop_map(|node| Op::DeleteNodeDetach { node }),
            (0usize..64).prop_map(|node| Op::DeleteNodeForce { node }),
        ],
        0..40,
    )
}

fn apply_ops(g: &mut PropertyGraph, ops: &[Op]) {
    let k = g.sym("v");
    for op in ops {
        let nodes: Vec<NodeId> = g.node_ids().collect();
        let rels: Vec<_> = g.rel_ids().collect();
        let pick_node = |i: usize| nodes.get(i % nodes.len().max(1)).copied();
        match op {
            Op::CreateNode { label, id } => {
                let l = g.sym(&format!("L{label}"));
                g.create_node([l], [(k, Value::Int(*id))]);
            }
            Op::CreateRel { src, tgt, ty } => {
                if let (Some(s), Some(t)) = (pick_node(*src), pick_node(*tgt)) {
                    let ty = g.sym(&format!("T{ty}"));
                    let _ = g.create_rel(s, ty, t, []);
                }
            }
            Op::SetProp { node, value } => {
                if let Some(n) = pick_node(*node) {
                    let _ = g.set_prop(n.into(), k, Value::Int(*value));
                }
            }
            Op::AddLabel { node, label } => {
                if let Some(n) = pick_node(*node) {
                    let l = g.sym(&format!("L{label}"));
                    let _ = g.add_label(n, l);
                }
            }
            Op::RemoveLabel { node, label } => {
                if let Some(n) = pick_node(*node) {
                    let l = g.sym(&format!("L{label}"));
                    let _ = g.remove_label(n, l);
                }
            }
            Op::DeleteRel { rel } => {
                if let Some(&r) = rels.get(rel % rels.len().max(1)) {
                    let _ = g.delete_rel(r);
                }
            }
            Op::DeleteNodeDetach { node } => {
                if let Some(n) = pick_node(*node) {
                    let _ = g.delete_node(n, DeleteNodeMode::Detach);
                }
            }
            Op::DeleteNodeForce { node } => {
                if let Some(n) = pick_node(*node) {
                    let _ = g.delete_node(n, DeleteNodeMode::Force);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Rolling back to a savepoint restores the exact pre-savepoint state,
    /// for arbitrary mutation scripts (including force-deletes that leave
    /// dangling relationships).
    #[test]
    fn rollback_restores_exactly(setup in arb_ops(), mutation in arb_ops()) {
        let mut g = PropertyGraph::new();
        apply_ops(&mut g, &setup);
        g.commit(g.savepoint()); // not a root commit; just exercise the API
        let before = dump(&g);
        let sp = g.savepoint();
        apply_ops(&mut g, &mutation);
        g.rollback_to(sp);
        prop_assert_eq!(dump(&g), before);
    }

    /// Detach-deleting every node leaves no nodes; the only relationships
    /// that can survive the sweep are ones that were already *dangling*
    /// (a force-delete in the setup removed both endpoints, so no node's
    /// adjacency reaches them). Removing those too leaves an empty, legal
    /// graph.
    #[test]
    fn detach_delete_everything_is_always_legal(setup in arb_ops()) {
        let mut g = PropertyGraph::new();
        apply_ops(&mut g, &setup);
        let pre_dangling: std::collections::BTreeSet<_> =
            g.dangling_rels().into_iter().collect();
        let nodes: Vec<NodeId> = g.node_ids().collect();
        for n in nodes {
            let _ = g.delete_node(n, DeleteNodeMode::Detach);
        }
        prop_assert_eq!(g.node_count(), 0);
        let survivors: Vec<_> = g.rel_ids().collect();
        for r in &survivors {
            prop_assert!(
                pre_dangling.contains(r),
                "rel {r} survived the sweep but was not dangling beforehand"
            );
            g.delete_rel(*r).expect("delete dangling survivor");
        }
        prop_assert_eq!(g.rel_count(), 0);
        prop_assert!(g.integrity_check().is_ok());
    }

    /// A graph is isomorphic to a structurally identical copy built in a
    /// different id order.
    #[test]
    fn isomorphism_survives_id_permutation(ids in prop::collection::vec(0i64..10, 1..6)) {
        let build = |order: &[i64]| {
            let mut g = PropertyGraph::new();
            let l = g.sym("N");
            let k = g.sym("id");
            let t = g.sym("E");
            let nodes: Vec<NodeId> = order
                .iter()
                .map(|&i| g.create_node([l], [(k, Value::Int(i))]))
                .collect();
            // Ring topology keyed by sorted position so both builds create
            // the same logical graph.
            let mut sorted: Vec<(i64, NodeId)> =
                order.iter().copied().zip(nodes.iter().copied()).collect();
            sorted.sort_by_key(|(v, _)| *v);
            for w in 0..sorted.len() {
                let (_, a) = sorted[w];
                let (_, b) = sorted[(w + 1) % sorted.len()];
                g.create_rel(a, t, b, []).expect("live");
            }
            g
        };
        let forward = build(&ids);
        let mut reversed_ids = ids.clone();
        reversed_ids.reverse();
        let backward = build(&reversed_ids);
        prop_assert!(isomorphic(&forward, &backward));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Export/import round trip: any legal graph serialized to a Cypher
    /// CREATE script and re-run produces an isomorphic graph.
    #[test]
    fn cypher_export_roundtrips(setup in arb_ops()) {
        let mut g = PropertyGraph::new();
        apply_ops(&mut g, &setup);
        // The exporter only represents legal graphs faithfully; drop any
        // dangling relationships a force-delete left behind.
        for r in g.dangling_rels() {
            g.delete_rel(r).expect("delete dangling");
        }
        let script = cypher_core::graph_to_cypher(&g);
        let mut restored = PropertyGraph::new();
        if !script.trim().is_empty() {
            cypher_core::Engine::revised()
                .run_script(&mut restored, &script)
                .expect("restore script runs");
        }
        prop_assert!(isomorphic(&g, &restored));
    }
}
