//! E11 — the §8.1/§8.2 semantics laws, tested through the clause-level API:
//!
//! * **Compositionality**: `[[C S]](G, T) = [[S]]([[C]](G, T))` — splitting
//!   a clause sequence at any point and running the halves sequentially
//!   gives the same graph and table as running it whole.
//! * **Read-only clauses leave the graph unchanged**:
//!   `[[C]](G, T) = (G, [[C]]^ro_G(T))`.
//! * **Query evaluation starts from `T()`**, the table with one empty
//!   record — not from the empty table.

use proptest::prelude::*;

use cypher_core::{Engine, Table};
use cypher_graph::{fmt::dump, PropertyGraph, Value};
use cypher_parser::parse;

/// Build a non-trivial start graph.
fn start_graph() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    Engine::revised()
        .run(
            &mut g,
            "UNWIND range(0, 9) AS i \
             CREATE (:User {id: i})-[:ORDERED {qty: i % 3}]->(:Product {id: i % 4})",
        )
        .expect("setup");
    g
}

/// A pool of statements whose clause sequences we split.
fn statements() -> Vec<&'static str> {
    vec![
        // reads only
        "MATCH (u:User) WHERE u.id > 3 WITH u.id AS i RETURN i ORDER BY i",
        // read → write → read (revised dialect allows free mixing)
        "MATCH (u:User {id: 1}) SET u.vip = true MATCH (v:User {id: 2}) \
         SET v.vip = false RETURN u.vip AS a, v.vip AS b",
        // unwind → create → merge
        "UNWIND [10, 11] AS i CREATE (:User {id: i}) \
         MERGE ALL (:Tag {name: 'new'}) RETURN i",
        // delete with substitution
        "MATCH (u:User {id: 0})-[r:ORDERED]->(p) DELETE r, u RETURN u, id(p) AS pid",
        // aggregation pipeline
        "MATCH (u:User)-[o:ORDERED]->(p:Product) WITH p, count(o) AS orders \
         WHERE orders > 1 SET p.popular = true RETURN p.id AS id, orders ORDER BY id",
        // merge same with on-the-fly table
        "UNWIND [1, 1, 2] AS x MERGE SAME (:Bucket {v: x % 2}) RETURN x",
        // foreach + remove
        "MATCH (u:User {id: 3}) FOREACH (i IN [1, 2] | SET u.touched = i) \
         REMOVE u.touched RETURN u.touched AS t",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Split each statement's clause list at a random point; running the
    /// two halves through `apply_clauses` sequentially equals running the
    /// whole list.
    #[test]
    fn clause_sequences_compose(
        stmt_idx in 0usize..7,
        split_seed in 0usize..8,
    ) {
        let text = statements()[stmt_idx];
        let query = parse(text).expect("statement parses");
        let clauses = &query.first.clauses;
        let split = split_seed % (clauses.len() + 1);
        let engine = Engine::revised();

        let mut g_whole = start_graph();
        let t_whole = engine
            .apply_clauses(&mut g_whole, Table::unit(), clauses)
            .expect("whole run");

        let mut g_split = start_graph();
        let t_mid = engine
            .apply_clauses(&mut g_split, Table::unit(), &clauses[..split])
            .expect("first half");
        let t_split = engine
            .apply_clauses(&mut g_split, t_mid, &clauses[split..])
            .expect("second half");

        prop_assert_eq!(dump(&g_whole), dump(&g_split), "graphs diverge for {}", text);
        prop_assert_eq!(t_whole, t_split, "tables diverge for {}", text);
    }

    /// Read-only clauses never change the graph.
    #[test]
    fn read_only_clauses_leave_graph_unchanged(stmt_idx in 0usize..3) {
        let reads = [
            "MATCH (u:User)-[o:ORDERED]->(p) RETURN u, o, p",
            "MATCH (u:User) WITH u.id AS i WHERE i > 2 RETURN i ORDER BY i DESC LIMIT 3",
            "UNWIND range(0, 5) AS x WITH x WHERE x % 2 = 0 RETURN collect(x) AS xs",
        ];
        let query = parse(reads[stmt_idx]).expect("parses");
        let mut g = start_graph();
        let before = dump(&g);
        let engine = Engine::revised();
        engine
            .apply_clauses(&mut g, Table::unit(), &query.first.clauses)
            .expect("read run");
        prop_assert_eq!(dump(&g), before);
    }
}

#[test]
fn evaluation_starts_from_unit_table_not_empty() {
    // §8.1: output(Q, G) feeds T(), the table containing one empty tuple.
    // A clause applied to the *empty* table does nothing.
    let engine = Engine::revised();
    let query = parse("CREATE (:X)").unwrap();

    let mut g = PropertyGraph::new();
    engine
        .apply_clauses(&mut g, Table::unit(), &query.first.clauses)
        .unwrap();
    assert_eq!(g.node_count(), 1);

    let mut g = PropertyGraph::new();
    engine
        .apply_clauses(&mut g, Table::empty(), &query.first.clauses)
        .unwrap();
    assert_eq!(
        g.node_count(),
        0,
        "empty table means zero records to process"
    );
}

#[test]
fn union_is_left_to_right_side_effects() {
    // §8.2: "updates are treated as side-effects in a left-to-right
    // fashion" — the second arm sees the first arm's writes.
    let mut g = PropertyGraph::new();
    let engine = Engine::revised();
    let res = engine
        .run(
            &mut g,
            "CREATE (:A {v: 1}) RETURN 1 AS x \
             UNION ALL MATCH (a:A) RETURN a.v AS x",
        )
        .unwrap();
    assert_eq!(res.rows.len(), 2);
    assert_eq!(
        res.rows[1][0],
        Value::Int(1),
        "second arm observed the :A node"
    );
}
