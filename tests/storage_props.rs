//! Property-based tests for the durability layer.
//!
//! Two invariants, on randomized inputs:
//!
//! 1. **Snapshot round-trip**: any reachable graph — random labels,
//!    mixed-type properties (including nulls and lists), parallel edges,
//!    self-loops, tombstones — survives `snapshot::write` → `snapshot::load`
//!    isomorphically (in fact id-for-id).
//! 2. **Replay fidelity**: executing a random statement sequence through
//!    [`DurableGraph`] and then recovering from disk (snapshot + WAL
//!    replay) yields the same graph as executing the sequence purely in
//!    memory — under both the legacy and the revised engine.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use cypher_core::{Dialect, Engine};
use cypher_graph::{isomorphic, DeleteNodeMode, PropertyGraph, Value};
use cypher_storage::{recover, snapshot, DurableGraph, RealFs};

/// Fresh scratch directory per case (cases run sequentially, but a counter
/// keeps reruns from tripping over leftovers of a crashed process).
fn scratch(tag: &str) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cypher-storage-props-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------
// Random graphs, built directly against the store API
// ---------------------------------------------------------------------

fn scalar_strategy() -> BoxedStrategy<Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-16i64..16).prop_map(|n| Value::Float(n as f64 / 4.0)),
        "[ -~]{0,8}".prop_map(Value::Str),
    ]
    .boxed()
}

/// Storable property values: scalars and lists of scalars — plus `null`,
/// which the store must treat as "remove the key".
fn prop_value_strategy() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        scalar_strategy(),
        prop::collection::vec(scalar_strategy(), 0..4).prop_map(Value::List),
    ]
    .boxed()
}

#[derive(Clone, Debug)]
struct NodeSpec {
    labels: Vec<String>,
    props: Vec<(String, Value)>,
    /// Delete this node again after the edges are in (tombstone +
    /// cascaded edge deletions).
    delete_after: bool,
}

/// (src index, tgt index, type, props) — indices taken modulo the node
/// count, so parallel edges and self-loops occur organically.
type RelSpec = (usize, usize, String, Vec<(String, Value)>);

#[derive(Clone, Debug)]
struct GraphSpec {
    nodes: Vec<NodeSpec>,
    rels: Vec<RelSpec>,
}

fn label_pool() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "User".to_owned(),
        "Product".to_owned(),
        "Vendor".to_owned(),
    ])
}

fn key_pool() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "id".to_owned(),
        "name".to_owned(),
        "score".to_owned(),
        "tags".to_owned(),
    ])
}

fn node_spec_strategy() -> impl Strategy<Value = NodeSpec> {
    (
        prop::collection::vec(label_pool(), 0..3),
        prop::collection::vec((key_pool(), prop_value_strategy()), 0..4),
        prop::option::weighted(0.15, Just(())),
    )
        .prop_map(|(labels, props, del)| NodeSpec {
            labels,
            props,
            delete_after: del.is_some(),
        })
}

fn graph_spec_strategy() -> impl Strategy<Value = GraphSpec> {
    (
        prop::collection::vec(node_spec_strategy(), 0..8),
        prop::collection::vec(
            (
                0usize..8,
                0usize..8,
                prop::sample::select(vec!["ORDERED".to_owned(), "KNOWS".to_owned()]),
                prop::collection::vec((key_pool(), prop_value_strategy()), 0..3),
            ),
            0..12,
        ),
    )
        .prop_map(|(nodes, rels)| GraphSpec { nodes, rels })
}

fn build(spec: &GraphSpec) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let mut ids = Vec::new();
    for n in &spec.nodes {
        let labels: Vec<_> = n.labels.iter().map(|l| g.sym(l)).collect();
        let props: Vec<_> = n.props.iter().map(|(k, v)| (g.sym(k), v.clone())).collect();
        ids.push(g.create_node(labels, props));
    }
    if !ids.is_empty() {
        for (s, t, ty, props) in &spec.rels {
            let ty = g.sym(ty);
            let props: Vec<_> = props.iter().map(|(k, v)| (g.sym(k), v.clone())).collect();
            g.create_rel(ids[s % ids.len()], ty, ids[t % ids.len()], props)
                .unwrap();
        }
    }
    for (i, n) in spec.nodes.iter().enumerate() {
        if n.delete_after {
            g.delete_node(ids[i], DeleteNodeMode::Detach).unwrap();
        }
    }
    g
}

// ---------------------------------------------------------------------
// Random statement workloads, run through the engine
// ---------------------------------------------------------------------

fn statement_strategy() -> BoxedStrategy<String> {
    let label = || prop::sample::select(vec!["A".to_owned(), "B".to_owned(), "C".to_owned()]);
    prop_oneof![
        (label(), 0i64..30, 0i64..30)
            .prop_map(|(l, i, n)| format!("CREATE (:{l} {{id: {i}, name: 'n{n}'}})")),
        (label(), label(), 0i64..9).prop_map(|(a, b, w)| format!(
            "MATCH (a:{a}) MATCH (b:{b}) CREATE (a)-[:R {{w: {w}}}]->(b)"
        )),
        (label(), -5i64..100).prop_map(|(l, v)| format!("MATCH (n:{l}) SET n.score = {v}")),
        label().prop_map(|l| format!("MATCH (n:{l}) SET n:Extra REMOVE n.name")),
        (label(), 0i64..30)
            .prop_map(|(l, i)| format!("MATCH (n:{l}) WHERE n.id = {i} DETACH DELETE n")),
        (label(), 0i64..9)
            .prop_map(|(l, x)| format!("MATCH (n:{l}) SET n.tags = ['a', {x}, true]")),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Snapshot round-trip: write → load reproduces the graph exactly.
    #[test]
    fn snapshot_round_trip_is_lossless(spec in graph_spec_strategy()) {
        let g = build(&spec);
        let dir = scratch("roundtrip");
        let path = dir.join("snapshot.bin");
        snapshot::write(&RealFs, &g, &path, 0).unwrap();
        let h = snapshot::load(&RealFs, &path).unwrap().graph;
        prop_assert!(isomorphic(&g, &h), "loaded snapshot not isomorphic");
        // Id-exact, allocator-exact, tombstone-exact.
        prop_assert_eq!(g.node_ids().collect::<Vec<_>>(), h.node_ids().collect::<Vec<_>>());
        prop_assert_eq!(g.rel_ids().collect::<Vec<_>>(), h.rel_ids().collect::<Vec<_>>());
        prop_assert_eq!(g.next_ids(), h.next_ids());
        prop_assert_eq!(
            g.tomb_node_ids().collect::<Vec<_>>(),
            h.tomb_node_ids().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            g.tomb_rel_ids().collect::<Vec<_>>(),
            h.tomb_rel_ids().collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Durable execution + recovery ≡ in-memory execution, both dialects.
    /// A mid-sequence checkpoint must not change the outcome either.
    #[test]
    fn recovery_matches_in_memory_execution(
        stmts in prop::collection::vec(statement_strategy(), 1..10),
        checkpoint_at in prop::option::of(0usize..10),
    ) {
        for dialect in [Dialect::Cypher9, Dialect::Revised] {
            let engine = Engine::builder(dialect).build();

            // Reference: pure in-memory execution.
            let mut mem = PropertyGraph::new();
            for s in &stmts {
                engine.run(&mut mem, s).unwrap();
            }

            // Durable execution with an optional checkpoint in the middle,
            // then crash (drop without close) and recover.
            let dir = scratch("replay");
            let mut d = DurableGraph::open(&dir).unwrap();
            for (i, s) in stmts.iter().enumerate() {
                d.apply(|g| engine.run(g, s)).unwrap().unwrap();
                if checkpoint_at == Some(i) {
                    d.checkpoint().unwrap();
                }
            }
            let committed = d.graph().clone();
            drop(d);

            let rec = recover(&dir).unwrap();
            prop_assert!(
                isomorphic(&rec.graph, &committed),
                "{dialect:?}: recovered != committed"
            );
            prop_assert!(
                isomorphic(&rec.graph, &mem),
                "{dialect:?}: recovered != in-memory reference"
            );
            prop_assert_eq!(
                rec.graph.node_ids().collect::<Vec<_>>(),
                mem.node_ids().collect::<Vec<_>>()
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
