//! The repository's headline check: every figure/example reproduction in
//! the experiment harness must pass. `cargo run -p cypher-bench --bin repro`
//! prints the same reports interactively.

use cypher_bench::run_all;

#[test]
fn all_paper_experiments_pass() {
    let reports = run_all();
    assert_eq!(reports.len(), 10, "the DESIGN.md index lists E1–E10");
    let mut failures = Vec::new();
    for r in &reports {
        println!("{r}");
        if !r.pass {
            failures.push(r.id);
        }
    }
    assert!(failures.is_empty(), "failing experiments: {failures:?}");
}

#[test]
fn experiment_reports_carry_expectations() {
    for r in run_all() {
        assert!(!r.expected.is_empty(), "{} lacks a paper expectation", r.id);
        assert!(!r.measured.is_empty(), "{} lacks a measurement", r.id);
        assert!(!r.details.is_empty(), "{} ran no checks", r.id);
    }
}
