//! Grammar coverage: one accepting example for every production of the
//! paper's grammar figures, and one rejecting example for every rule the
//! figures exclude.
//!
//! * Figure 2 — queries and clause sequences (incl. `UNION [ALL]`);
//! * Figure 3 — update clauses (`SET`, `REMOVE`, `CREATE`, `DELETE`,
//!   `MERGE`, `FOREACH`);
//! * Figure 4 — `SET`/`REMOVE` items and label lists;
//! * Figure 5 — update patterns (directed and undirected);
//! * Figure 10 — the revised clause sequence and `MERGE ALL`/`MERGE SAME`.

use cypher_parser::{parse, validate, Dialect};

fn accepts(dialect: Dialect, q: &str) {
    let ast = parse(q).unwrap_or_else(|e| panic!("{q:?} failed to parse: {e}"));
    validate(&ast, dialect).unwrap_or_else(|e| panic!("{q:?} failed {dialect:?} validation: {e}"));
}

fn rejects(dialect: Dialect, q: &str) {
    if let Ok(ast) = parse(q) {
        assert!(
            validate(&ast, dialect).is_err(),
            "{q:?} should be rejected under {dialect:?}"
        );
    }
}

// -------------------------------------------------------------- Figure 2

#[test]
fn fig2_query_shapes() {
    // ⟨clause sequence⟩ ::= ⟨reading clause⟩* ⟨return⟩
    accepts(Dialect::Cypher9, "RETURN 1 AS one");
    accepts(Dialect::Cypher9, "MATCH (n) RETURN n");
    accepts(
        Dialect::Cypher9,
        "MATCH (n) MATCH (m) WHERE n.x = m.x RETURN n, m",
    );
    // | ⟨reading clause⟩* ⟨update clause⟩+ [⟨with⟩ ⟨clause sequence⟩]?
    accepts(Dialect::Cypher9, "CREATE (:A)");
    accepts(
        Dialect::Cypher9,
        "MATCH (n) SET n.x = 1 REMOVE n.y DELETE n",
    );
    accepts(
        Dialect::Cypher9,
        "MATCH (n) CREATE (:A) WITH n MATCH (m) RETURN n, m",
    );
    // UNION [ALL]
    accepts(
        Dialect::Cypher9,
        "MATCH (n) RETURN n.x AS x UNION MATCH (m) RETURN m.x AS x",
    );
    accepts(
        Dialect::Cypher9,
        "MATCH (n) RETURN n.x AS x UNION ALL MATCH (m) RETURN m.x AS x",
    );
    // Reading after updates without WITH is NOT derivable from Figure 2.
    rejects(Dialect::Cypher9, "CREATE (:A) MATCH (n) RETURN n");
    rejects(
        Dialect::Cypher9,
        "MATCH (n) SET n.x = 1 UNWIND [1] AS i RETURN i",
    );
}

// -------------------------------------------------------------- Figure 3

#[test]
fn fig3_update_clauses() {
    // ⟨set⟩ ::= SET ⟨set item⟩ [, ⟨set item⟩]*
    accepts(Dialect::Cypher9, "MATCH (n) SET n.a = 1, n.b = 2, n:L");
    // ⟨remove⟩
    accepts(Dialect::Cypher9, "MATCH (n) REMOVE n.a, n:L1:L2");
    // ⟨create⟩ ::= CREATE ⟨dir. upd. pat.⟩ [, ⟨dir. upd. pat.⟩]*
    accepts(Dialect::Cypher9, "CREATE (:A)-[:T]->(:B), (:C)");
    // ⟨delete⟩ ::= DELETE ⟨expr⟩ [, ⟨expr⟩]*
    accepts(Dialect::Cypher9, "MATCH (n)-[r]->(m) DELETE r, n, m");
    accepts(Dialect::Cypher9, "MATCH (n) DETACH DELETE n");
    // ⟨merge⟩ ::= MERGE ⟨upd. pat.⟩ — exactly one pattern in Cypher 9.
    accepts(Dialect::Cypher9, "MERGE (:A)-[:T]-(:B)");
    rejects(Dialect::Cypher9, "MERGE (:A), (:B)");
    // ⟨for each⟩ ::= FOREACH (⟨name⟩ IN ⟨expr⟩ | ⟨update clause⟩)
    accepts(
        Dialect::Cypher9,
        "FOREACH (x IN [1, 2] | CREATE (:A {v: x}) SET x.y = 1)",
    );
    // FOREACH body cannot contain reading clauses.
    rejects(Dialect::Cypher9, "FOREACH (x IN [1] | MATCH (n) RETURN n)");
}

// -------------------------------------------------------------- Figure 4

#[test]
fn fig4_set_and_remove_items() {
    // ⟨set item⟩ ::= ⟨expr⟩ = ⟨expr⟩ | ⟨expr⟩ += ⟨expr⟩ | ⟨expr⟩ ⟨label list⟩
    accepts(Dialect::Cypher9, "MATCH (n) SET n.key = n.other + 1");
    accepts(Dialect::Cypher9, "MATCH (n) SET n = {a: 1}");
    accepts(Dialect::Cypher9, "MATCH (n) SET n += {a: 1}");
    accepts(Dialect::Cypher9, "MATCH (n) SET n:L1:L2:L3");
    // ⟨rem. item⟩ ::= ⟨expr⟩.⟨key⟩ | ⟨expr⟩ ⟨label list⟩
    accepts(Dialect::Cypher9, "MATCH (n) REMOVE n.key");
    accepts(Dialect::Cypher9, "MATCH (n) REMOVE n:L1:L2");
}

// -------------------------------------------------------------- Figure 5

#[test]
fn fig5_update_patterns() {
    // ⟨upd. pat.⟩ with optional name and undirected relationships
    // (legacy MERGE only).
    accepts(Dialect::Cypher9, "MERGE p = (a)-[r:T]-(b)");
    accepts(Dialect::Cypher9, "MERGE (a)<-[:T]-(b)");
    // ⟨dir. upd. pat.⟩ — CREATE needs directions and single types.
    accepts(
        Dialect::Cypher9,
        "CREATE q = (a:A {x: 1})-[r:T {w: 2}]->(b)",
    );
    rejects(Dialect::Cypher9, "CREATE (a)-[:T]-(b)");
    rejects(Dialect::Cypher9, "CREATE (a)-[:T|U]->(b)");
    rejects(Dialect::Cypher9, "CREATE (a)-[r]->(b)");
    // Node patterns: name?, label list?, map?
    accepts(
        Dialect::Cypher9,
        "CREATE (), (x), (:L), (x:L), (x:L1:L2 {a: 1, b: 'c'})",
    );
}

// ------------------------------------------------------------- Figure 10

#[test]
fn fig10_revised_grammar() {
    // ⟨clause sequence⟩ ::= ⟨clause⟩* [⟨return⟩ | ⟨update clause⟩]:
    // clauses mix freely.
    accepts(Dialect::Revised, "MATCH (n) SET n.x = 1 MATCH (m) DELETE m");
    accepts(
        Dialect::Revised,
        "CREATE (:A) UNWIND [1] AS i MERGE ALL (:B {v: i}) RETURN i",
    );
    // ⟨merge⟩ ::= MERGE ALL ⟨dir. upd. pat.⟩ [, …] | MERGE SAME …
    accepts(
        Dialect::Revised,
        "MERGE ALL (:A)-[:T]->(:B), (:C)-[:U]->(:D)",
    );
    accepts(Dialect::Revised, "MERGE SAME (:A)-[:T]->(:B)");
    // Bare MERGE removed; undirected rels removed from MERGE.
    rejects(Dialect::Revised, "MERGE (:A)-[:T]->(:B)");
    rejects(Dialect::Revised, "MERGE ALL (:A)-[:T]-(:B)");
    // The paper notes ⟨upd. pat.⟩/⟨rel. upd. pat.⟩ are no longer required:
    // MERGE ALL patterns are exactly CREATE patterns.
    rejects(Dialect::Revised, "MERGE SAME (:A)-[:T|U]->(:B)");
    // RETURN stays final.
    rejects(Dialect::Revised, "RETURN 1 AS x MATCH (n) RETURN n");
}

// ------------------------------------------------- paper queries verbatim

#[test]
fn every_numbered_paper_query_parses_in_its_dialect() {
    // (1)–(5) and the §4 anomaly queries are Cypher 9 …
    for q in [
        "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) \
         WHERE p.name = \"laptop\" RETURN v",
        "MATCH (u:User{id:89}) CREATE (u)-[:ORDERED]->(:New_Product{id:0})",
        "MATCH (p:New_Product{id:0}) SET p:Product, p.id=120,p.name=\"smartphone\" \
         REMOVE p:New_Product",
        "MATCH (p:Product{id:120}) DELETE p",
        "MATCH ()-[r]->(p:Product{id:120}) DELETE r,p",
        "MATCH (p:Product{id:120}) DETACH DELETE p",
        "MATCH (u:User{id:89}) CREATE (u)-[:ORDERED]->(p:New_Product{id:0}) \
         SET p:Product,p.id=120,p.name=\"phone\" REMOVE p:New_Product DETACH DELETE p",
        "MATCH (p:Product) MERGE (p)<-[:OFFERS]-(v:Vendor) RETURN p,v",
        "MATCH (p1:Product{name:\"laptop\"}), (p2:Product{name:\"tablet\"}) \
         SET p1.id = p2.id, p2.id = p1.id",
        "MATCH (p1:Product{id:85}),(p2:Product{id:125}) SET p1.name = p2.name",
        "MATCH (user)-[order:ORDERED]->(product) DELETE user SET user.id = 999 \
         DELETE order RETURN user",
        "MERGE (user)-[:ORDERED]->(product)<-[:OFFERS]-(vendor)",
        "MERGE (:User{id:cid})-[:ORDERED]->(:Product{id:pid})",
        "MERGE (:User{id:bid})-[:ORDERED]->(:Product{id:pid})<-[:OFFERS]-(:User{id:sid})",
        "MERGE (a)-[:TO]->(b)-[:TO]->(c)-[:TO]->(d)-[:TO]->(e)-[:BOUGHT]->(tgt)",
        "MATCH (a)-[:TO]->(b)-[:TO]->(c)-[:TO]->(d)-[:TO]->(e)-[:BOUGHT]->(tgt)",
        "MATCH (v) -[*]-> (v) RETURN v",
    ] {
        accepts(Dialect::Cypher9, q);
    }
    // … and the §7 forms are revised Cypher.
    for q in [
        "MERGE ALL (:User{id:cid})-[:ORDERED]->(:Product{id:pid})",
        "MERGE SAME (:User{id:cid})-[:ORDERED]->(:Product{id:pid})",
    ] {
        accepts(Dialect::Revised, q);
    }
}
