//! Property-based parser tests: pretty-printing is parse-stable, on
//! randomly generated expressions and update clauses.
//!
//! Exact AST round-tripping is too strict — `-3` prints from `Lit::Int(-3)`
//! but re-parses as unary negation — so the property tested is *print
//! stability*: `print(parse(print(x))) == print(x)`, which pins down a
//! canonical form.

use proptest::prelude::*;

use cypher_parser::ast::*;
use cypher_parser::pretty::{print_clause, print_expr};
use cypher_parser::{parse, print_query};

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop::sample::select(vec![
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::Pow,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::StartsWith,
        BinOp::EndsWith,
        BinOp::Contains,
        BinOp::In,
    ])
}

fn arb_ident() -> impl Strategy<Value = String> {
    // Avoid reserved-looking spellings that change parse position meaning
    // (none are truly reserved, but `AS`, `IN`, … in item position would
    // change structure).
    "[a-w][a-z0-9_]{0,6}".prop_filter("avoid keyword-like identifiers", |s| {
        !matches!(
            s.to_ascii_uppercase().as_str(),
            "IS" | "IN"
                | "AS"
                | "AND"
                | "OR"
                | "XOR"
                | "NOT"
                | "NULL"
                | "TRUE"
                | "FALSE"
                | "CASE"
                | "WHEN"
                | "THEN"
                | "ELSE"
                | "END"
                | "STARTS"
                | "ENDS"
                | "CONTAINS"
                | "WHERE"
                | "ORDER"
                | "SKIP"
                | "LIMIT"
                | "UNION"
                | "MATCH"
                | "RETURN"
                | "WITH"
                | "CREATE"
                | "DELETE"
                | "DETACH"
                | "MERGE"
                | "SET"
                | "REMOVE"
                | "FOREACH"
                | "UNWIND"
                | "OPTIONAL"
                | "DISTINCT"
                | "ALL"
                | "SAME"
                | "COUNT"
        )
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::Literal(Lit::Null)),
        any::<bool>().prop_map(|b| Expr::Literal(Lit::Bool(b))),
        (0i64..10_000).prop_map(|i| Expr::Literal(Lit::Int(i))),
        (0u32..1000).prop_map(|i| Expr::Literal(Lit::Float(f64::from(i) / 8.0))),
        "[a-z]{0,8}".prop_map(|s| Expr::Literal(Lit::Str(s))),
        arb_ident().prop_map(Expr::Variable),
        arb_ident().prop_map(Expr::Parameter),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::Binary(
                op,
                Box::new(l),
                Box::new(r)
            )),
            (inner.clone()).prop_map(|e| Expr::Unary(UnaryOp::Not, Box::new(e))),
            (inner.clone()).prop_map(|e| Expr::Unary(UnaryOp::Neg, Box::new(e))),
            (inner.clone(), any::<bool>()).prop_map(|(e, n)| Expr::IsNull {
                expr: Box::new(e),
                negated: n
            }),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::List),
            prop::collection::vec((arb_ident(), inner.clone()), 0..3).prop_map(|entries| {
                // Duplicate map keys are legal to print but normalize when
                // evaluated; keep keys unique for stability.
                let mut seen = std::collections::BTreeSet::new();
                Expr::Map(
                    entries
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
            (inner.clone(), arb_ident()).prop_map(|(e, k)| Expr::Property(Box::new(e), k)),
            (inner.clone(), inner.clone()).prop_map(|(b, i)| Expr::Index(Box::new(b), Box::new(i))),
            (arb_ident(), prop::collection::vec(inner.clone(), 0..3)).prop_map(|(name, args)| {
                Expr::FnCall {
                    name,
                    distinct: false,
                    args,
                }
            }),
            Just(Expr::CountStar),
        ]
    })
}

fn arb_node_pattern() -> impl Strategy<Value = NodePattern> {
    (
        prop::option::of(arb_ident()),
        prop::collection::vec(arb_ident(), 0..2),
        prop::collection::vec((arb_ident(), arb_expr()), 0..2),
    )
        .prop_map(|(var, labels, props)| {
            let mut seen = std::collections::BTreeSet::new();
            NodePattern {
                var,
                labels,
                props: props
                    .into_iter()
                    .filter(|(k, _)| seen.insert(k.clone()))
                    .collect(),
            }
        })
}

fn arb_path_pattern() -> impl Strategy<Value = PathPattern> {
    (
        arb_node_pattern(),
        prop::collection::vec(
            (
                prop::option::of(arb_ident()),
                arb_ident(),
                prop::sample::select(vec![RelDirection::Outgoing, RelDirection::Incoming]),
                arb_node_pattern(),
            ),
            0..3,
        ),
    )
        .prop_map(|(start, steps)| PathPattern {
            var: None,
            shortest: None,
            start,
            steps: steps
                .into_iter()
                .map(|(var, ty, direction, node)| {
                    (
                        RelPattern {
                            var,
                            types: vec![ty],
                            props: vec![],
                            direction,
                            length: None,
                        },
                        node,
                    )
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print(parse(print(expr))) == print(expr).
    #[test]
    fn expression_print_is_parse_stable(expr in arb_expr()) {
        let printed = print_expr(&expr);
        let query_text = format!("RETURN {printed} AS out");
        let ast = parse(&query_text)
            .unwrap_or_else(|e| panic!("printed expr failed to parse: {printed:?}: {e}"));
        let reprinted = print_query(&ast);
        prop_assert_eq!(reprinted, format!("RETURN {printed} AS out"));
    }

    /// CREATE clauses built from random patterns round-trip.
    #[test]
    fn create_clause_print_is_parse_stable(
        patterns in prop::collection::vec(arb_path_pattern(), 1..3),
    ) {
        let clause = Clause::Create { patterns };
        let printed = print_clause(&clause);
        let ast = parse(&printed)
            .unwrap_or_else(|e| panic!("printed clause failed to parse: {printed:?}: {e}"));
        let reprinted = print_query(&ast);
        prop_assert_eq!(reprinted, printed);
    }

    /// MERGE ALL / MERGE SAME clauses round-trip likewise.
    #[test]
    fn merge_clause_print_is_parse_stable(
        patterns in prop::collection::vec(arb_path_pattern(), 1..3),
        same in any::<bool>(),
    ) {
        let clause = Clause::Merge {
            kind: if same { MergeKind::Same } else { MergeKind::All },
            patterns,
            on_create: vec![],
            on_match: vec![],
        };
        let printed = print_clause(&clause);
        let ast = parse(&printed)
            .unwrap_or_else(|e| panic!("printed clause failed to parse: {printed:?}: {e}"));
        prop_assert_eq!(print_query(&ast), printed);
    }

    /// The lexer handles arbitrary string literal contents via escaping.
    #[test]
    fn string_literals_roundtrip(s in "[ -~]{0,20}") {
        let expr = Expr::Literal(Lit::Str(s));
        let printed = print_expr(&expr);
        let ast = parse(&format!("RETURN {printed} AS out")).unwrap();
        let Clause::Return(p) = &ast.first.clauses[0] else { panic!() };
        let ProjectionItems::Items(items) = &p.items else { panic!() };
        prop_assert_eq!(&items[0].expr, &expr);
    }
}
