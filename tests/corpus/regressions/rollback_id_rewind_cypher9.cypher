// cypher-fuzz reproducer (minimized)
// seed: 42
// script: 93
// dialect: cypher9
// oracle: replica
// detail: replayed replica graph differs from primary
//
// The first statement fails (CREATE through the null binding produced by
// the empty OPTIONAL MATCH) and rolls back — but before the fix the node
// ids it allocated stayed consumed. The replica, which only replays
// committed statements, allocated different ids for the MERGE below and
// the canonical dumps diverged.
OPTIONAL MATCH (n0 {id: $uid}) CREATE (n3:C {k: 9})-[:U]->({name: 6}) CREATE (n0)<-[r4:R]-(n2);
MERGE (n1:B {id: 8});
