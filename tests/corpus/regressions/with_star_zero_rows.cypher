// cypher-fuzz reproducer (minimized)
// seed: 42
// script: 0
// dialect: revised
// oracle: metamorphic:insert-with
// detail: statement failed only under rewrite: dialect error: RETURN *
//         with no variables in scope
//
// `WITH *` / `RETURN *` used to expand against the runtime table's
// columns, which an empty table does not have: a MATCH with zero matches
// made the very next `WITH *` error out instead of flowing zero rows
// through. The star expansion must only reject a *populated* table with
// no columns (the unit table of a query with no bindings in scope).
MATCH (n {id: -1}) WITH * RETURN n.id AS id;
CREATE (:Hit {id: 1});
MATCH (n:Miss) WITH * RETURN count(*) AS c;
MATCH (n:Hit) WITH * RETURN n.id AS id;
