// cypher-fuzz reproducer (minimized)
// seed: 42
// script: 122
// dialect: revised
// oracle: replica
// detail: replayed replica graph differs from primary
//
// Revised-dialect twin of rollback_id_rewind_cypher9: a savepoint
// rollback along the way left speculatively allocated ids consumed on
// the primary, so the replica's MERGE ALL below allocated different ids
// and the canonical dumps diverged.
CREATE (n0 {w: 'yy', k: 9})-[:U]->(n1:User) SET n0.id = n1.id, n0 = {id: 7, name: 8};
MERGE ALL (n0:Product {id: 7})-[:U]->(n1:B {id: 4});
