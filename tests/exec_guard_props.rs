//! Property-based tests for the execution budgets ([`ExecLimits`]).
//!
//! Two invariants, checked over randomized workload sizes and budgets:
//!
//! * **abort is side-effect free** — a statement that trips any budget
//!   fails with `ResourceExhausted` and leaves the graph exactly as it
//!   was (the transaction layer rolls back to the statement boundary);
//! * **budgets are transparent** — with budgets generously above what the
//!   statement needs, the result is identical to running unguarded.

use proptest::prelude::*;

use cypher_core::{Dialect, Engine, EvalError, ExecLimits};
use cypher_graph::{isomorphic, PropertyGraph};

fn engine(limits: ExecLimits) -> Engine {
    Engine::builder(Dialect::Revised).limits(limits).build()
}

/// `n` nodes created via UNWIND — `n` rows materialized, `3n` write ops
/// (node + label + property each).
fn create_n(n: i64) -> String {
    format!("UNWIND range(1, {n}) AS i CREATE (:N {{v: i}})")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// An over-budget write statement fails with `ResourceExhausted` and
    /// the graph is unchanged — whichever of the two budgets trips first.
    #[test]
    fn over_budget_write_fails_and_rolls_back(
        n in 2i64..40,
        rows_budget in any::<bool>(),
    ) {
        let limits = if rows_budget {
            // Strictly fewer rows than UNWIND materializes.
            ExecLimits { max_rows: Some((n - 1) as u64), ..ExecLimits::NONE }
        } else {
            // CREATE per row costs 3 write ops; allow less than the total.
            ExecLimits { max_writes: Some((n - 1) as u64), ..ExecLimits::NONE }
        };
        let mut g = PropertyGraph::new();
        let before = g.clone();
        let err = engine(limits).run(&mut g, &create_n(n)).unwrap_err();
        prop_assert!(
            matches!(err, EvalError::ResourceExhausted { .. }),
            "expected ResourceExhausted, got {err}"
        );
        prop_assert!(isomorphic(&g, &before), "budget abort left side effects");
        prop_assert_eq!(g.node_count(), 0);
    }

    /// With budgets comfortably above the statement's needs, guarded
    /// execution produces exactly the unguarded result.
    #[test]
    fn sufficient_budget_matches_unguarded(n in 1i64..40) {
        let generous = ExecLimits {
            max_rows: Some(10 * n as u64 + 100),
            max_writes: Some(10 * n as u64 + 100),
            timeout: Some(std::time::Duration::from_secs(60)),
        };
        let stmt = create_n(n);
        let mut unguarded = PropertyGraph::new();
        let free = engine(ExecLimits::NONE)
            .run(&mut unguarded, &stmt)
            .expect("unguarded run");
        let mut guarded = PropertyGraph::new();
        let bounded = engine(generous).run(&mut guarded, &stmt).expect("guarded run");
        prop_assert!(isomorphic(&unguarded, &guarded));
        prop_assert_eq!(free.stats, bounded.stats);
    }

    /// The row budget also bounds pure reads: a RETURN over more rows than
    /// allowed is refused (and trivially leaves the graph unchanged).
    #[test]
    fn row_budget_bounds_reads(n in 2i64..60) {
        let limits = ExecLimits {
            max_rows: Some((n - 1) as u64),
            ..ExecLimits::NONE
        };
        let mut g = PropertyGraph::new();
        let err = engine(limits)
            .run(&mut g, &format!("UNWIND range(1, {n}) AS i RETURN i"))
            .unwrap_err();
        prop_assert!(matches!(err, EvalError::ResourceExhausted { resource: "rows", .. }));
        prop_assert_eq!(g.node_count(), 0);
    }
}

/// A zero wall-clock budget trips on the first cooperative check, for any
/// statement shape.
#[test]
fn zero_timeout_always_trips() {
    let limits = ExecLimits {
        timeout: Some(std::time::Duration::ZERO),
        ..ExecLimits::NONE
    };
    for stmt in [
        "CREATE (:A)",
        "UNWIND range(1, 10) AS i RETURN i",
        "FOREACH (i IN range(1, 3) | CREATE (:B {v: i}))",
    ] {
        let mut g = PropertyGraph::new();
        let err = engine(limits).run(&mut g, stmt).unwrap_err();
        assert!(
            matches!(
                err,
                EvalError::ResourceExhausted {
                    resource: "time (ms)",
                    ..
                }
            ),
            "statement {stmt:?}: expected time budget trip, got {err}"
        );
        assert_eq!(g.node_count(), 0, "statement {stmt:?} left side effects");
    }
}
