//! Fault-injection torture sweep for the durability layer.
//!
//! A fixed revised-dialect workload is committed through [`DurableGraph`]
//! over a [`FaultFs`], SQLite-test-VFS style: a counting pass first
//! measures how many fallible filesystem operations the workload performs,
//! then the workload is re-run once per operation index `k` with a
//! deterministic fault injected at exactly the `k`-th operation (short
//! write, fsync failure, ENOSPC or rename failure, by operation kind).
//!
//! Invariants checked at every `k`:
//!
//! * an `apply` that reports an I/O error seals the handle — the very next
//!   `apply` is refused with [`StorageError::Sealed`] without touching disk;
//! * whatever the fault hit, `recover` over the real filesystem lands on
//!   exactly the last state whose commit was acknowledged (isomorphic and
//!   with identical physical ids) — never a torn or partially-applied one;
//! * the store reopens cleanly afterwards and accepts new commits.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use cypher_core::{Dialect, Engine};
use cypher_graph::{isomorphic, PropertyGraph};
use cypher_storage::{recover, DurableGraph, FaultFs, StorageFs};

/// Deterministic workload exercising every write shape the engine has:
/// plain and pattern `CREATE`, `UNWIND`-driven creation, atomic `SET`,
/// `MERGE ALL`, `FOREACH`, `REMOVE` and `DETACH DELETE`. Every statement
/// is valid in any state (MATCH-guarded updates no-op on empty graphs).
const STATEMENTS: &[&str] = &[
    "CREATE (:User {id: 1, name: 'ada'})",
    "CREATE (:User {id: 2, name: 'bob'})-[:KNOWS {w: 1}]->(:User {id: 3, name: 'cyd'})",
    "UNWIND range(1, 4) AS i CREATE (:Item {id: i})",
    "MATCH (u:User) SET u.active = true",
    "MERGE ALL (:User {id: 2})-[:OWNS]->(:Item {id: 99})",
    "MATCH (a:User {id: 1}) MATCH (b:User {id: 3}) CREATE (a)-[:KNOWS {w: 2}]->(b)",
    "FOREACH (i IN range(10, 12) | CREATE (:Tag {id: i}))",
    "MATCH (n:Item) WHERE n.id > 2 DETACH DELETE n",
    "MATCH (u:User {id: 2}) REMOVE u.name SET u:Vip",
    "MATCH (t:Tag {id: 11}) DETACH DELETE t",
];

/// Checkpoint after this statement index (mid-workload, so the sweep also
/// hits snapshot writes, the rename and the WAL reset).
const CHECKPOINT_AFTER: usize = 4;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cypher-torture-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run the workload over `fs`, tolerating storage failures. Returns the
/// last graph state whose durability was acknowledged (`apply` or
/// `checkpoint` returned `Ok`): the state recovery must reproduce.
fn run_workload(fs: Arc<dyn StorageFs>, dir: &Path) -> PropertyGraph {
    let engine = Engine::builder(Dialect::Revised).build();
    let mut d = match DurableGraph::open_with(fs, dir) {
        Ok(d) => d,
        // The fault hit while creating/recovering the store: nothing was
        // ever acknowledged, so recovery must land on the recovered state
        // of whatever files already existed — for a fresh dir, empty.
        Err(_) => return PropertyGraph::new(),
    };
    let mut acknowledged = d.graph().clone();
    for (i, stmt) in STATEMENTS.iter().enumerate() {
        match d.apply(|g| engine.run(g, stmt)) {
            Ok(result) => {
                result.unwrap_or_else(|e| panic!("statement {stmt:?} failed: {e}"));
                acknowledged = d.graph().clone();
            }
            Err(e) => {
                // Any apply-path I/O failure must seal the handle, and the
                // seal must be sticky: the next apply is refused with the
                // typed Sealed error before touching the filesystem.
                assert!(
                    d.is_sealed(),
                    "apply failed ({e}) but the handle is not sealed"
                );
                let refused = d
                    .apply(|g| engine.run(g, "CREATE (:Refused)"))
                    .expect_err("sealed handle accepted a write");
                assert!(
                    refused.is_sealed(),
                    "follow-up apply failed with {refused}, expected Sealed"
                );
            }
        }
        if i == CHECKPOINT_AFTER {
            // A successful checkpoint makes the *current memory state*
            // durable (and unseals); a failed one changes nothing durable.
            if d.checkpoint().is_ok() {
                acknowledged = d.graph().clone();
            }
        }
    }
    acknowledged
}

fn assert_recovers_to(dir: &Path, expected: &PropertyGraph, context: &str) {
    let rec = recover(dir).unwrap_or_else(|e| panic!("{context}: recovery errored: {e}"));
    assert!(
        isomorphic(&rec.graph, expected),
        "{context}: recovered graph differs from last acknowledged state \
         (recovered {}n/{}r, expected {}n/{}r)",
        rec.graph.node_count(),
        rec.graph.rel_count(),
        expected.node_count(),
        expected.rel_count(),
    );
    assert_eq!(
        rec.graph.node_ids().collect::<Vec<_>>(),
        expected.node_ids().collect::<Vec<_>>(),
        "{context}: node ids differ"
    );
    assert_eq!(
        rec.graph.rel_ids().collect::<Vec<_>>(),
        expected.rel_ids().collect::<Vec<_>>(),
        "{context}: rel ids differ"
    );
}

#[test]
fn fault_at_every_operation_recovers_last_acknowledged_state() {
    // Measuring pass: how many fallible fs operations does the clean
    // workload perform? (Reopen/recovery is deterministic, so the fault
    // pass replays an identical operation prefix up to the fault index.)
    let counting = FaultFs::counting();
    let dir = tmpdir("count");
    let clean = run_workload(counting.arc(), &dir);
    let total = counting.ops();
    assert!(total > 20, "workload unexpectedly cheap: {total} ops");
    assert!(clean.node_count() > 0);
    std::fs::remove_dir_all(&dir).unwrap();

    for k in 0..total {
        let fault = FaultFs::fail_at(k);
        let dir = tmpdir(&format!("k{k}"));
        let acknowledged = run_workload(fault.arc(), &dir);
        assert!(
            fault.triggered(),
            "fault at op {k} never fired (total was {total})"
        );

        // Recovery over the *real* filesystem: exactly the acknowledged
        // state, whatever the fault tore (WAL tail, snapshot temp, header).
        let context = format!("fault at op {k}/{total}");
        assert_recovers_to(&dir, &acknowledged, &context);

        // The store must reopen cleanly and accept new commits.
        let engine = Engine::builder(Dialect::Revised).build();
        let mut d =
            DurableGraph::open(&dir).unwrap_or_else(|e| panic!("{context}: reopen errored: {e}"));
        assert!(!d.is_sealed(), "{context}: fresh handle is sealed");
        d.apply(|g| engine.run(g, "CREATE (:AfterFault {id: 1000})"))
            .unwrap_or_else(|e| panic!("{context}: post-fault apply errored: {e}"))
            .unwrap();
        let after = d.graph().clone();
        drop(d);
        assert_recovers_to(&dir, &after, &format!("{context}, post-fault append"));

        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A sealed handle unseals when a later checkpoint succeeds, and the
/// checkpoint folds the retained memory state (including the statement
/// whose WAL append failed) into the snapshot.
#[test]
fn checkpoint_after_seal_reconciles_memory_state() {
    let engine = Engine::builder(Dialect::Revised).build();
    let dir = tmpdir("reconcile");

    // Counting pass over the same prefix to find the op index of the WAL
    // append for statement 2.
    let counting = FaultFs::counting();
    {
        let mut d = DurableGraph::open_with(counting.arc(), &dir).unwrap();
        d.apply(|g| engine.run(g, STATEMENTS[0])).unwrap().unwrap();
    }
    let prefix = counting.ops();
    std::fs::remove_dir_all(&dir).unwrap();
    let dir = tmpdir("reconcile");

    let fault = FaultFs::fail_at(prefix); // first op of the second apply
    let mut d = DurableGraph::open_with(fault.arc(), &dir).unwrap();
    d.apply(|g| engine.run(g, STATEMENTS[0])).unwrap().unwrap();
    let err = d
        .apply(|g| engine.run(g, STATEMENTS[1]))
        .expect_err("injected fault did not surface");
    assert!(!err.is_sealed(), "first failure should be the I/O error");
    assert!(d.is_sealed());

    // Memory kept the statement; checkpoint folds it in and unseals.
    d.checkpoint().unwrap();
    assert!(!d.is_sealed());
    let expected = d.graph().clone();
    assert_eq!(expected.node_count(), 3); // :User ada + bob-KNOWS->cyd
    drop(d);

    assert_recovers_to(&dir, &expected, "checkpoint reconciled a sealed handle");
    std::fs::remove_dir_all(&dir).unwrap();
}
