//! Crash-injection tests for the durability layer.
//!
//! A random workload of Cypher statements is committed through
//! [`DurableGraph`]; then the WAL is truncated at **every byte boundary**
//! inside the final commit unit, simulating a crash at each possible
//! point of the last append. Recovery must always produce exactly the
//! last committed state: the full workload when the final `Commit` frame
//! survived, the state one statement earlier for every shorter prefix —
//! never an error, never a partially-applied statement.

use std::path::{Path, PathBuf};

use cypher_core::{Dialect, Engine};
use cypher_graph::{isomorphic, PropertyGraph};
use cypher_storage::{recover, DurableGraph};
use rand::{rngs::StdRng, Rng, SeedableRng};

const WAL: &str = "wal.bin";

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cypher-recovery-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One random, always-parseable statement over a small label vocabulary.
/// `MATCH`-driven templates are no-ops when nothing matches, so any
/// sequence is a valid workload.
fn random_statement(rng: &mut StdRng) -> String {
    let label = |rng: &mut StdRng| format!("L{}", rng.gen_range(0..4u32));
    match rng.gen_range(0..7u32) {
        0 | 1 => format!(
            "CREATE (:{} {{id: {}, name: 'n{}'}})",
            label(rng),
            rng.gen_range(0..50i64),
            rng.gen_range(0..50i64),
        ),
        2 => format!(
            "MATCH (a:{}) MATCH (b:{}) CREATE (a)-[:R {{w: {}}}]->(b)",
            label(rng),
            label(rng),
            rng.gen_range(0..9i64),
        ),
        3 => format!(
            "MATCH (n:{}) SET n.score = {}",
            label(rng),
            rng.gen_range(-5..100i64),
        ),
        4 => format!("MATCH (n:{}) SET n:Extra REMOVE n.name", label(rng)),
        5 => format!(
            "MATCH (n:{}) WHERE n.id = {} DETACH DELETE n",
            label(rng),
            rng.gen_range(0..50i64),
        ),
        _ => format!(
            "MATCH (n:{}) SET n.tags = ['a', {}, true]",
            label(rng),
            rng.gen_range(0..9i64),
        ),
    }
}

/// Commit random statements until the *last* one actually mutates the
/// graph (so the final WAL unit exists), tracking the committed state
/// before and after it plus the WAL length at that boundary.
struct Workload {
    dir: PathBuf,
    state_before_last: PropertyGraph,
    state_final: PropertyGraph,
    wal_len_before_last: u64,
    wal_bytes: Vec<u8>,
}

fn build_workload(seed: u64, dialect: Dialect, statements: usize) -> Workload {
    let dir = tmpdir(&format!("wl-{seed}-{dialect:?}"));
    let mut rng = StdRng::seed_from_u64(seed);
    let engine = Engine::builder(dialect).build();
    let mut d = DurableGraph::open(&dir).unwrap();

    let mut prev_state = d.graph().clone();
    let mut prev_len = std::fs::metadata(dir.join(WAL)).unwrap().len();
    let mut committed = 0;
    // Keep going until `statements` commits, the last of which grew the WAL.
    while committed < statements || std::fs::metadata(dir.join(WAL)).unwrap().len() == prev_len {
        prev_state = d.graph().clone();
        prev_len = std::fs::metadata(dir.join(WAL)).unwrap().len();
        let stmt = random_statement(&mut rng);
        d.apply(|g| engine.run(g, &stmt))
            .expect("storage io")
            .unwrap_or_else(|e| panic!("statement {stmt:?} failed: {e}"));
        committed += 1;
        assert!(committed < statements * 50, "workload failed to converge");
    }
    let state_final = d.graph().clone();
    drop(d);
    let wal_bytes = std::fs::read(dir.join(WAL)).unwrap();
    Workload {
        dir,
        state_before_last: prev_state,
        state_final,
        wal_len_before_last: prev_len,
        wal_bytes,
    }
}

fn assert_recovers_to(dir: &Path, expected: &PropertyGraph, context: &str) {
    let rec = recover(dir).unwrap_or_else(|e| panic!("{context}: recovery errored: {e}"));
    assert!(
        isomorphic(&rec.graph, expected),
        "{context}: recovered graph differs from last committed state"
    );
    // Stronger than isomorphism: recovery reproduces physical ids.
    assert_eq!(
        rec.graph.node_ids().collect::<Vec<_>>(),
        expected.node_ids().collect::<Vec<_>>(),
        "{context}: node ids differ"
    );
    assert_eq!(
        rec.graph.rel_ids().collect::<Vec<_>>(),
        expected.rel_ids().collect::<Vec<_>>(),
        "{context}: rel ids differ"
    );
}

fn crash_inject(seed: u64, dialect: Dialect) {
    let wl = build_workload(seed, dialect, 10);
    let wal_path = wl.dir.join(WAL);

    // Crash at every byte boundary inside the final commit unit.
    for cut in wl.wal_len_before_last as usize..wl.wal_bytes.len() {
        std::fs::write(&wal_path, &wl.wal_bytes[..cut]).unwrap();
        assert_recovers_to(
            &wl.dir,
            &wl.state_before_last,
            &format!("seed {seed}, cut at byte {cut}"),
        );
    }

    // The untouched log recovers the full workload.
    std::fs::write(&wal_path, &wl.wal_bytes).unwrap();
    assert_recovers_to(&wl.dir, &wl.state_final, &format!("seed {seed}, no cut"));

    // A truncated store must also *reopen* cleanly and accept new commits.
    let cut = wl.wal_len_before_last as usize
        + (wl.wal_bytes.len() - wl.wal_len_before_last as usize) / 2;
    std::fs::write(&wal_path, &wl.wal_bytes[..cut]).unwrap();
    let mut d = DurableGraph::open(&wl.dir).unwrap();
    assert!(isomorphic(d.graph(), &wl.state_before_last));
    let engine = Engine::builder(dialect).build();
    d.apply(|g| engine.run(g, "CREATE (:AfterCrash {id: 1})"))
        .unwrap()
        .unwrap();
    let after = d.graph().clone();
    drop(d);
    assert_recovers_to(&wl.dir, &after, &format!("seed {seed}, post-crash append"));

    std::fs::remove_dir_all(&wl.dir).unwrap();
}

#[test]
fn every_byte_truncation_recovers_last_committed_state_revised() {
    for seed in [7, 1989] {
        crash_inject(seed, Dialect::Revised);
    }
}

#[test]
fn every_byte_truncation_recovers_last_committed_state_legacy() {
    crash_inject(42, Dialect::Cypher9);
}

/// A checkpoint mid-workload must not change what recovery produces.
#[test]
fn crash_after_checkpoint_recovers_from_snapshot_plus_wal() {
    let dir = tmpdir("ckpt");
    let engine = Engine::builder(Dialect::Revised).build();
    let mut rng = StdRng::seed_from_u64(5);
    let mut d = DurableGraph::open(&dir).unwrap();
    for _ in 0..6 {
        let stmt = random_statement(&mut rng);
        d.apply(|g| engine.run(g, &stmt)).unwrap().unwrap();
    }
    d.checkpoint().unwrap();
    for _ in 0..4 {
        let stmt = random_statement(&mut rng);
        d.apply(|g| engine.run(g, &stmt)).unwrap().unwrap();
    }
    let expected = d.graph().clone();
    drop(d); // crash: no close, WAL tail intact

    assert_recovers_to(&dir, &expected, "checkpoint + wal suffix");
    std::fs::remove_dir_all(&dir).unwrap();
}
