#!/usr/bin/env sh
# Local verification gate: build, test, format check, lint.
#
# Runs everything the CI tier-1 gate runs, plus fmt/clippy when the
# toolchain has them (each is skipped with a notice otherwise). Exits
# non-zero iff a step that *ran* failed. Fully offline.
#
# Usage: ./scripts/verify.sh            # from the repo root
set -u

cd "$(dirname "$0")/.." || exit 1

failed=0

run() {
    name=$1
    shift
    printf '==> %s: %s\n' "$name" "$*"
    if "$@"; then
        printf '==> %s: OK\n\n' "$name"
    else
        printf '==> %s: FAILED\n\n' "$name"
        failed=1
    fi
}

skip() {
    printf '==> %s: skipped (%s)\n\n' "$1" "$2"
}

if ! command -v cargo >/dev/null 2>&1; then
    echo "cargo not found on PATH" >&2
    exit 1
fi

# Tier-1: the gate the repo must always pass.
run "build (release)" cargo build --release --offline
run "test" cargo test -q --offline

# Robustness: the fault-injection torture sweep (one run per fallible
# filesystem operation of the workload; see tests/storage_torture.rs).
run "torture" cargo test -q --offline --test storage_torture

# Bench crate is excluded from default-members; make sure it still compiles.
run "build (workspace incl. bench)" cargo build --workspace --offline

# Planner bench smoke: tiny graph, asserts the planner picks the index
# probe and agrees byte-for-byte with force_naive (full run: `just bench`).
run "bench smoke" cargo run -p cypher-bench --bin bench --offline -q -- --check

# Static-analysis self-check: every shipped .cypher example must lint
# clean (warnings allowed, error-severity diagnostics fail the build).
run "cypher-lint (examples)" cargo run --bin cypher-lint --offline -q -- examples/*.cypher

# Server round trip: start cypher-serve on an ephemeral port, drive it
# with a scripted cypher-client session (create/match/merge/delete plus a
# deliberately budget-tripped statement that must come back as a typed
# error), then shut it down over the wire and check a clean exit.
server_roundtrip() {
    data_dir=$(mktemp -d) || return 1
    log="$data_dir/serve.log"
    cargo build -q --offline -p cypher-server || return 1
    ./target/debug/cypher-serve --data "$data_dir/db" --addr 127.0.0.1:0 \
        --allow-shutdown >"$log" 2>&1 &
    serve_pid=$!
    addr=""
    tries=0
    while [ -z "$addr" ] && [ "$tries" -lt 100 ]; do
        addr=$(sed -n 's/^listening on //p' "$log" 2>/dev/null | head -n 1)
        [ -z "$addr" ] && { tries=$((tries + 1)); sleep 0.1; }
    done
    if [ -z "$addr" ]; then
        echo "cypher-serve never reported its address" >&2
        kill "$serve_pid" 2>/dev/null
        rm -rf "$data_dir"
        return 1
    fi
    ./target/debug/cypher-client --addr "$addr" --rows 100 \
        --run "CREATE (a:User {name: 'Ann'})-[:KNOWS]->(:User {name: 'Bob'})" \
        --run "MATCH (u:User) RETURN u.name ORDER BY u.name" \
        --run "MERGE ALL (:User {name: 'Ann'})" \
        --expect-error "UNWIND range(1, 100000) AS x RETURN x" \
        --run "MATCH (u:User {name: 'Bob'}) DETACH DELETE u" \
        --dump --checkpoint --shutdown
    client_status=$?
    wait "$serve_pid"
    serve_status=$?
    rm -rf "$data_dir"
    [ "$client_status" -eq 0 ] && [ "$serve_status" -eq 0 ]
}
run "server round trip" server_roundtrip

if cargo fmt --version >/dev/null 2>&1; then
    run "fmt" cargo fmt --all --check
else
    skip "fmt" "rustfmt not installed"
fi

if cargo clippy --version >/dev/null 2>&1; then
    run "clippy" cargo clippy --workspace --all-targets --offline -- -D warnings
    # These crates additionally deny unwrap/expect in non-test code
    # (scoped #![deny] in their lib.rs); lint them on their own so a
    # workspace-level allow can never mask a regression.
    run "clippy (unwrap ban)" cargo clippy -p cypher-storage -p cypher-parser -p cypher-graph -p cypher-core -p cypher-analysis -p cypher-server -p cypher-bench -p cypher-datagen --offline -- -D warnings
else
    skip "clippy" "clippy not installed"
fi

if [ "$failed" -ne 0 ]; then
    echo "verify: FAILED"
    exit 1
fi
echo "verify: all checks passed"
