#!/usr/bin/env sh
# Local verification gate: build, test, format check, lint.
#
# Runs everything the CI tier-1 gate runs, plus fmt/clippy when the
# toolchain has them (each is skipped with a notice otherwise). Exits
# non-zero iff a step that *ran* failed. Fully offline.
#
# Usage: ./scripts/verify.sh            # from the repo root
set -u

cd "$(dirname "$0")/.." || exit 1

failed=0

run() {
    name=$1
    shift
    printf '==> %s: %s\n' "$name" "$*"
    if "$@"; then
        printf '==> %s: OK\n\n' "$name"
    else
        printf '==> %s: FAILED\n\n' "$name"
        failed=1
    fi
}

skip() {
    printf '==> %s: skipped (%s)\n\n' "$1" "$2"
}

if ! command -v cargo >/dev/null 2>&1; then
    echo "cargo not found on PATH" >&2
    exit 1
fi

# Tier-1: the gate the repo must always pass.
run "build (release)" cargo build --release --offline
run "test" cargo test -q --offline

# Robustness: the fault-injection torture sweep (one run per fallible
# filesystem operation of the workload; see tests/storage_torture.rs).
run "torture" cargo test -q --offline --test storage_torture

# Bench crate is excluded from default-members; make sure it still compiles.
run "build (workspace incl. bench)" cargo build --workspace --offline

# Planner bench smoke: tiny graph, asserts the planner picks the index
# probe and agrees byte-for-byte with force_naive (full run: `just bench`).
run "bench smoke" cargo run -p cypher-bench --bin bench --offline -q -- --check

# Parallel-read smoke: one small sweep asserting the morsel-driven
# executor's output is byte-identical to serial, plus a quick pipelined
# write load through an in-process server (full run: `just bench-sweep`).
run "sweep smoke" cargo run -p cypher-bench --bin bench --offline -q -- --sweep --check

# Static-analysis self-check: every shipped .cypher example must lint
# clean (warnings allowed, error-severity diagnostics fail the build).
# The examples demonstrate the paper's *legacy* hazards, so they lint
# under the Cypher 9 dialect.
run "cypher-lint (examples)" cargo run --bin cypher-lint --offline -q -- --dialect cypher9 examples/*.cypher

# Fuzz smoke: a fixed-seed, time-bounded differential campaign across all
# oracle pairs (planner/naive, lint on/off, serial/parallel, WAL
# recovery, replica replay, atomicity, panics) plus the metamorphic
# rewrite pass. Zero findings expected; stderr is the Warn-engine's lint
# noise. Full campaigns: `just fuzz [seed]`.
fuzz_smoke() {
    cargo run -p cypher-fuzz --bin cypher-fuzz --release --offline -q -- \
        run --seed 42 --budget 60 2>/dev/null
}
run "fuzz smoke" fuzz_smoke

# Server round trip: start cypher-serve on an ephemeral port, drive it
# with a scripted cypher-client session (create/match/merge/delete plus a
# deliberately budget-tripped statement that must come back as a typed
# error), then shut it down over the wire and check a clean exit.
server_roundtrip() {
    data_dir=$(mktemp -d) || return 1
    log="$data_dir/serve.log"
    cargo build -q --offline -p cypher-server || return 1
    ./target/debug/cypher-serve --data "$data_dir/db" --addr 127.0.0.1:0 \
        --allow-shutdown >"$log" 2>&1 &
    serve_pid=$!
    addr=""
    tries=0
    while [ -z "$addr" ] && [ "$tries" -lt 100 ]; do
        addr=$(sed -n 's/^listening on //p' "$log" 2>/dev/null | head -n 1)
        [ -z "$addr" ] && { tries=$((tries + 1)); sleep 0.1; }
    done
    if [ -z "$addr" ]; then
        echo "cypher-serve never reported its address" >&2
        kill "$serve_pid" 2>/dev/null
        rm -rf "$data_dir"
        return 1
    fi
    ./target/debug/cypher-client --addr "$addr" --rows 100 \
        --run "CREATE (a:User {name: 'Ann'})-[:KNOWS]->(:User {name: 'Bob'})" \
        --run "MATCH (u:User) RETURN u.name ORDER BY u.name" \
        --run "MERGE ALL (:User {name: 'Ann'})" \
        --expect-error "UNWIND range(1, 100000) AS x RETURN x" \
        --run "MATCH (u:User {name: 'Bob'}) DETACH DELETE u" \
        --dump --checkpoint --shutdown
    client_status=$?
    wait "$serve_pid"
    serve_status=$?
    rm -rf "$data_dir"
    [ "$client_status" -eq 0 ] && [ "$serve_status" -eq 0 ]
}
run "server round trip" server_roundtrip

# Wait for a cypher-serve log to report its bound address; prints it.
serve_addr() {
    _log=$1
    _addr=""
    _tries=0
    while [ -z "$_addr" ] && [ "$_tries" -lt 100 ]; do
        _addr=$(sed -n 's/^listening on //p' "$_log" 2>/dev/null | head -n 1)
        [ -z "$_addr" ] && { _tries=$((_tries + 1)); sleep 0.1; }
    done
    [ -n "$_addr" ] && printf '%s\n' "$_addr"
}

# Replication round trip: primary + replica over real sockets, writes
# through the primary, byte-identical dumps after catch-up, failover by
# promotion, and a durable fence on the restarted old primary. Also
# exercises SIGTERM as a clean shutdown (both kills below expect exit 0).
replication_roundtrip() {
    work=$(mktemp -d) || return 1
    cargo build -q --offline -p cypher-server || return 1
    status=1
    a_pid=""
    b_pid=""
    while :; do # single-pass loop so failures can `break` to cleanup
        ./target/debug/cypher-serve --data "$work/a" --addr 127.0.0.1:0 \
            --allow-admin >"$work/a.log" 2>&1 &
        a_pid=$!
        a_addr=$(serve_addr "$work/a.log") || break
        ./target/debug/cypher-serve --data "$work/b" --addr 127.0.0.1:0 \
            --replica-of "$a_addr" --allow-admin >"$work/b.log" 2>&1 &
        b_pid=$!
        b_addr=$(serve_addr "$work/b.log") || break

        ./target/debug/cypher-client --addr "$a_addr" \
            --run "CREATE (a:City {name: 'Malmo'})-[:IN]->(:Country {name: 'Sweden'})" \
            --run "MERGE ALL (:City {name: 'Berlin'})" \
            --run "MATCH (c:City {name: 'Berlin'}) SET c.pop = 3700000" \
            >/dev/null || break
        target=$(./target/debug/cypher-client --addr "$a_addr" --stats \
            | sed -n 's/^commit-seq: //p') || break

        # Catch-up: poll the replica's commit sequence up to 10s.
        caught=""
        tries=0
        while [ -z "$caught" ] && [ "$tries" -lt 100 ]; do
            seq=$(./target/debug/cypher-client --addr "$b_addr" --stats 2>/dev/null \
                | sed -n 's/^commit-seq: //p')
            [ "${seq:-0}" -ge "$target" ] 2>/dev/null && caught=yes
            [ -z "$caught" ] && { tries=$((tries + 1)); sleep 0.1; }
        done
        [ -n "$caught" ] || { echo "replica never caught up" >&2; break; }

        ./target/debug/cypher-client --addr "$a_addr" --dump >"$work/a.dump" || break
        ./target/debug/cypher-client --addr "$b_addr" --dump >"$work/b.dump" || break
        cmp -s "$work/a.dump" "$work/b.dump" \
            || { echo "primary and replica dumps differ" >&2; break; }

        # Failover: kill the primary (SIGTERM must exit cleanly), promote
        # the replica, and prove it now takes writes.
        kill "$a_pid" && wait "$a_pid" || { echo "primary SIGTERM exit != 0" >&2; a_pid=""; break; }
        a_pid=""
        ./target/debug/cypher-client --addr "$b_addr" --promote >/dev/null || break
        ./target/debug/cypher-client --addr "$b_addr" \
            --run "CREATE (:AfterFailover {ok: true})" >/dev/null || break

        # The restarted old primary is fenced by the operator runbook step
        # and must refuse every write with the typed redirect, durably.
        ./target/debug/cypher-serve --data "$work/a" --addr 127.0.0.1:0 \
            --allow-admin >"$work/a2.log" 2>&1 &
        a_pid=$!
        a2_addr=$(serve_addr "$work/a2.log") || break
        ./target/debug/cypher-client --addr "$a2_addr" --fence "$b_addr" >/dev/null || break
        ./target/debug/cypher-client --addr "$a2_addr" \
            --expect-error "CREATE (:Zombie)" >/dev/null \
            || { echo "fenced old primary accepted a write" >&2; break; }
        ./target/debug/cypher-client --addr "$a2_addr" --stats \
            | grep -q '^role: fenced$' || { echo "old primary not fenced" >&2; break; }

        status=0
        break
    done
    [ -n "$a_pid" ] && { kill "$a_pid" 2>/dev/null; wait "$a_pid" || status=1; }
    [ -n "$b_pid" ] && { kill "$b_pid" 2>/dev/null; wait "$b_pid" || status=1; }
    rm -rf "$work"
    return "$status"
}
run "replication round trip" replication_roundtrip

# Quorum round trip: a primary that withholds client acks until the
# replica has durably applied each write, killed with SIGKILL mid-reign.
# Every acknowledged write must survive on the self-promoted replica
# (zero acked loss), and the restarted zombie must end up fenced
# automatically — no operator step — refusing writes in the new epoch.
quorum_roundtrip() {
    work=$(mktemp -d) || return 1
    cargo build -q --offline -p cypher-server || return 1
    status=1
    p_pid=""
    r_pid=""
    z_pid=""
    while :; do # single-pass loop so failures can `break` to cleanup
        ./target/debug/cypher-serve --data "$work/p" --addr 127.0.0.1:0 \
            --allow-admin --sync-replicas 1 --sync-timeout-ms 4000 \
            >"$work/p.log" 2>&1 &
        p_pid=$!
        p_addr=$(serve_addr "$work/p.log") || break
        ./target/debug/cypher-serve --data "$work/r" --addr 127.0.0.1:0 \
            --replica-of "$p_addr" --allow-admin --lease-ms 500 \
            >"$work/r.log" 2>&1 &
        r_pid=$!
        r_addr=$(serve_addr "$work/r.log") || break

        # Wait for the replica to subscribe; only then can quorum be met.
        sub=""
        tries=0
        while [ -z "$sub" ] && [ "$tries" -lt 100 ]; do
            ./target/debug/cypher-client --addr "$p_addr" --stats 2>/dev/null \
                | grep -q '^replica ' && sub=yes
            [ -z "$sub" ] && { tries=$((tries + 1)); sleep 0.1; }
        done
        [ -n "$sub" ] || { echo "replica never subscribed" >&2; break; }
        # Each successful exit below is a quorum ack: the write is fsynced
        # on BOTH sides before the client hears OK.
        ./target/debug/cypher-client --addr "$p_addr" \
            --run "CREATE (:Paid {id: 1})" \
            --run "CREATE (:Paid {id: 2})" >/dev/null || break

        # SIGKILL: no clean shutdown, no flush, no goodbye. The replica's
        # lease expires, it elects itself and self-promotes.
        kill -9 "$p_pid" 2>/dev/null
        wait "$p_pid" 2>/dev/null
        p_pid=""
        promoted=""
        tries=0
        while [ -z "$promoted" ] && [ "$tries" -lt 150 ]; do
            ./target/debug/cypher-client --addr "$r_addr" --stats 2>/dev/null \
                | grep -q '^role: primary$' && promoted=yes
            [ -z "$promoted" ] && { tries=$((tries + 1)); sleep 0.1; }
        done
        [ -n "$promoted" ] || { echo "replica never self-promoted" >&2; break; }

        # Zero acked loss: both quorum-acknowledged writes survived.
        ./target/debug/cypher-client --addr "$r_addr" --dump >"$work/r.dump" || break
        grep -q 'id: 1' "$work/r.dump" && grep -q 'id: 2' "$work/r.dump" \
            || { echo "acked write lost after quorum failover" >&2; break; }
        ./target/debug/cypher-client --addr "$r_addr" \
            --run "CREATE (:Paid {id: 3})" >/dev/null || break

        # The zombie restarts on its old address inside the fence-retry
        # window: the new primary's retry fence must land, durably.
        ./target/debug/cypher-serve --data "$work/p" --addr "$p_addr" \
            --allow-admin >"$work/z.log" 2>&1 &
        z_pid=$!
        fenced=""
        tries=0
        while [ -z "$fenced" ] && [ "$tries" -lt 150 ]; do
            ./target/debug/cypher-client --addr "$p_addr" --stats 2>/dev/null \
                | grep -q '^role: fenced$' && fenced=yes
            [ -z "$fenced" ] && { tries=$((tries + 1)); sleep 0.1; }
        done
        [ -n "$fenced" ] || { echo "zombie never fenced automatically" >&2; break; }
        ./target/debug/cypher-client --addr "$p_addr" \
            --expect-error "CREATE (:Zombie)" >/dev/null \
            || { echo "fenced zombie accepted a write" >&2; break; }

        status=0
        break
    done
    [ -n "$p_pid" ] && { kill "$p_pid" 2>/dev/null; wait "$p_pid" 2>/dev/null; }
    [ -n "$z_pid" ] && { kill "$z_pid" 2>/dev/null; wait "$z_pid" 2>/dev/null; }
    [ -n "$r_pid" ] && { kill "$r_pid" 2>/dev/null; wait "$r_pid" 2>/dev/null; }
    rm -rf "$work"
    return "$status"
}
run "quorum round trip" quorum_roundtrip

# Live view round trip: a subscriber registers a query over the wire, a
# writer commits statements (create / update / create), and the
# subscriber's replayed rows at exit must be byte-identical to a fresh
# evaluation of the same query — the differential contract of
# DESIGN.md Â§15, end to end over real sockets.
live_view_roundtrip() {
    work=$(mktemp -d) || return 1
    cargo build -q --offline -p cypher-server || return 1
    status=1
    s_pid=""
    sub_pid=""
    while :; do # single-pass loop so failures can `break` to cleanup
        ./target/debug/cypher-serve --data "$work/db" --addr 127.0.0.1:0 \
            >"$work/serve.log" 2>&1 &
        s_pid=$!
        addr=$(serve_addr "$work/serve.log") || break

        ./target/debug/cypher-client --addr "$addr" \
            --run "CREATE (:Task {name: 'seed', done: false})" >/dev/null || break

        query="MATCH (t:Task) RETURN t.name, t.done"
        ./target/debug/cypher-client --addr "$addr" \
            --subscribe-query "$query" --deltas 3 >"$work/sub.out" &
        sub_pid=$!

        # The first line is flushed on registration; write only after it.
        tries=0
        while ! grep -q '^subscribed ' "$work/sub.out" 2>/dev/null; do
            tries=$((tries + 1))
            [ "$tries" -ge 100 ] && break
            sleep 0.1
        done
        grep -q '^subscribed view=1 epoch=[0-9]* mode=incremental ' "$work/sub.out" \
            || { echo "subscriber never registered incrementally" >&2; break; }

        ./target/debug/cypher-client --addr "$addr" \
            --run "CREATE (:Task {name: 'ship', done: false})" \
            --run "MATCH (t:Task {name: 'seed'}) SET t.done = true" \
            --run "CREATE (:Task {name: 'later', done: true})" >/dev/null || break

        # --deltas 3 exits after the three data batches above.
        wait "$sub_pid" || { sub_pid=""; echo "subscriber exited nonzero" >&2; break; }
        sub_pid=""
        grep -q '^unsubscribed (bye)$' "$work/sub.out" \
            || { echo "subscriber did not close cleanly" >&2; break; }

        sed -n 's/^final: //p' "$work/sub.out" | sort >"$work/view.rows"
        ./target/debug/cypher-client --addr "$addr" --run "$query" \
            | sed -n 's/^  //p' | sort >"$work/fresh.rows"
        [ -s "$work/view.rows" ] || { echo "subscriber replayed no rows" >&2; break; }
        cmp -s "$work/view.rows" "$work/fresh.rows" \
            || { echo "maintained view diverged from fresh evaluation" >&2; \
                 diff "$work/view.rows" "$work/fresh.rows" >&2; break; }

        # The stats surface must agree the view is gone after the bye.
        ./target/debug/cypher-client --addr "$addr" --stats --format json \
            | grep -q '"view_count": 0' \
            || { echo "view survived its unsubscribe" >&2; break; }

        status=0
        break
    done
    [ -n "$sub_pid" ] && { kill "$sub_pid" 2>/dev/null; wait "$sub_pid" 2>/dev/null; }
    [ -n "$s_pid" ] && { kill "$s_pid" 2>/dev/null; wait "$s_pid" || status=1; }
    rm -rf "$work"
    return "$status"
}
run "live view round trip" live_view_roundtrip

if cargo fmt --version >/dev/null 2>&1; then
    run "fmt" cargo fmt --all --check
else
    skip "fmt" "rustfmt not installed"
fi

if cargo clippy --version >/dev/null 2>&1; then
    run "clippy" cargo clippy --workspace --all-targets --offline -- -D warnings
    # These crates additionally deny unwrap/expect in non-test code
    # (scoped #![deny] in their lib.rs); lint them on their own so a
    # workspace-level allow can never mask a regression.
    run "clippy (unwrap ban)" cargo clippy -p cypher-storage -p cypher-parser -p cypher-graph -p cypher-core -p cypher-analysis -p cypher-server -p cypher-replication -p cypher-bench -p cypher-datagen -p cypher-fuzz -p cypher-ivm --offline -- -D warnings
else
    skip "clippy" "clippy not installed"
fi

if [ "$failed" -ne 0 ]; then
    echo "verify: FAILED"
    exit 1
fi
echo "verify: all checks passed"
